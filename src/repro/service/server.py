"""The analysis service core: queue, coalescing, workers, drain.

:class:`AnalysisService` is the transport-agnostic heart of ``ats
serve``: submissions come in (from the HTTP layer, the CLI, or tests
calling :meth:`submit` directly), become :class:`~.jobs.Job` records
on a FIFO queue, and execute on the process-global pooled workers via
:func:`repro.simkernel.submit_host_task` -- the same threads that run
simulations and batch analysis, so the service adds no thread pool of
its own.  At most ``max_workers`` jobs run concurrently; the rest
wait in queue, with their wait time recorded into the
``ats_service_queue_wait_seconds`` histogram.

Three policies sit on the submission path:

* **rate limiting** -- a per-tenant token bucket
  (:mod:`~repro.service.ratelimit`); over-budget tenants get a
  :class:`RateLimited` carrying the retry-after hint;
* **coalescing** -- a submission whose
  :meth:`~repro.service.jobs.Job.coalesce_key` matches an in-flight
  job joins that job instead of queueing a duplicate computation
  (analyze keys are the archive cache's own ``(trace digest,
  detector fingerprint)`` pair, so coalesced responses are identical
  by construction);
* **drain** -- :meth:`drain` stops intake (:class:`ServiceDraining`,
  surfaced as 503) and waits for the queue and in-flight jobs to
  empty, the graceful half of shutdown.

Simulation-running jobs (``run``, ``campaign``, ``synth``) serialize
on one internal lock: the simulator's worker-pool handoff protocol assumes
one simulation at a time per process.  Pure host-side jobs (analyze,
diff, history) run fully concurrently.

Request tracing: every job carries its submission's request id, and
the service records ``queue-wait`` / ``execute`` / ``archive-cache``
obs spans tagged with it, completing the HTTP-accept span the HTTP
layer records.  One Chrome-trace export shows a request's whole life.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import OrderedDict, deque
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ..archive import Archive, ArchiveError, CacheStats
from ..archive.fingerprint import detector_set_fingerprint
from ..obs.instruments import service_metrics
from ..obs.spans import span_log, spans_enabled
from ..simkernel.process import submit_host_task
from .breaker import BreakerOpen, CircuitBreaker
from .jobs import CampaignProgress, Job, advance_job_ids
from .journal import ServiceJournal, ServiceJournalError
from .ratelimit import RateLimiter

__all__ = [
    "AnalysisService",
    "BreakerOpen",
    "JobError",
    "RateLimited",
    "ServiceDraining",
]


def _chaos_injector():
    """The installed chaos injector, or None (see chaos.inject)."""
    mod = sys.modules.get("repro.chaos.inject")
    return None if mod is None else mod.active()


class JobError(Exception):
    """A submission the service cannot accept (bad params, unknown run)."""


class RateLimited(Exception):
    """Tenant over budget; ``retry_after`` is the seconds-until-token."""

    def __init__(self, tenant: str, retry_after: float):
        super().__init__(
            f"tenant {tenant!r} over rate budget; "
            f"retry in {retry_after:.2f}s"
        )
        self.tenant = tenant
        self.retry_after = retry_after


class ServiceDraining(Exception):
    """The service is draining; no new submissions are accepted."""


def _span(name: str, t0: float, t1: float, **args: Any) -> None:
    if spans_enabled():
        span_log().record(name, "service", t0, t1, args)


class AnalysisService:
    """Async job server over one trace archive (see module doc)."""

    #: resolved jobs kept for ``GET /jobs/<id>`` before eviction.
    MAX_FINISHED_JOBS = 4096

    def __init__(
        self,
        archive: Archive,
        max_workers: int = 8,
        rate: float = 200.0,
        burst: int = 400,
        default_detection_threshold: float = 0.01,
        state_dir: Optional[Union[str, Path]] = None,
        recover: bool = False,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.archive = archive
        self.max_workers = max_workers
        self.limiter = RateLimiter(rate=rate, burst=burst)
        self.threshold = default_detection_threshold
        self.started_at = time.monotonic()

        self._lock = threading.Lock()
        self._queue: deque = deque()
        self._inflight = 0
        self._accepting = True
        self._idle = threading.Condition(self._lock)
        #: coalesce_key -> unresolved primary job.
        self._active_keys: Dict[Tuple, Job] = {}
        #: job id -> job, submission order (bounded).
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        #: campaign job id -> live progress (bounded with _jobs).
        self._campaigns: Dict[str, CampaignProgress] = {}
        #: one simulation at a time (worker-pool handoff invariant).
        self._sim_lock = threading.Lock()
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold,
            cooldown=breaker_cooldown,
            on_transition=self._on_breaker_transition,
        )

        #: plain counters so ``/status`` works with obs disabled.
        self.counts = {
            "submitted": 0,
            "executed": 0,
            "coalesced": 0,
            "done": 0,
            "failed": 0,
            "rate_limited": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "expired": 0,
            "evicted": 0,
            "recovered": 0,
            "requeued": 0,
            "orphaned": 0,
        }

        #: durable mode: the job journal + per-job checkpoint files.
        self.state_dir = None if state_dir is None else Path(state_dir)
        self.journal: Optional[ServiceJournal] = None
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            (self.state_dir / "checkpoints").mkdir(exist_ok=True)
            self.journal = ServiceJournal(self.state_dir / "jobs.jsonl")
            if recover:
                self._recover()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(
        self,
        kind: str,
        params: Optional[Dict[str, Any]] = None,
        tenant: str = "default",
        request_id: str = "",
        deadline: Optional[float] = None,
    ) -> Tuple[Job, bool]:
        """Queue one job; returns ``(job, coalesced)``.

        ``coalesced`` is True when the submission joined an identical
        in-flight job -- the returned job is then the shared primary,
        and its eventual result answers every coalesced submitter.
        ``deadline`` (seconds) bounds how long the *client* cares: a
        job still queued past its deadline is cancelled (``expired``)
        instead of burning a worker.  Raises :class:`RateLimited`,
        :class:`ServiceDraining`, :class:`BreakerOpen` or
        :class:`JobError`.  In durable mode the job is journaled
        (fsync'd) before this returns -- a journal write failure rolls
        the submission back, so an acknowledged job is always a
        recoverable one.
        """
        params = dict(params or {})
        if not self._accepting:
            raise ServiceDraining("service is draining")
        retry_after = self.limiter.check(tenant)
        if retry_after > 0.0:
            self._count("rate_limited")
            metrics = service_metrics()
            if metrics is not None:
                metrics.rate_limited.labels(tenant=tenant).inc()
            raise RateLimited(tenant, retry_after)
        try:
            self.breaker.check(self._cell_key(kind, params))
        except BreakerOpen:
            self._count("evicted")
            raise

        key = self._coalesce_key(kind, params)
        with self._lock:
            if not self._accepting:
                raise ServiceDraining("service is draining")
            self._count_locked("submitted")
            if key is not None:
                primary = self._active_keys.get(key)
                if primary is not None and not primary.done:
                    primary.coalesced += 1
                    self._count_locked("coalesced")
                    metrics = service_metrics()
                    if metrics is not None:
                        metrics.coalesced.inc()
                    return primary, True
            job = Job(
                kind,
                params,
                tenant=tenant,
                request_id=request_id,
                coalesce_key=key,
                deadline=deadline,
            )
            self._enqueue_locked(job)
            self._pump_locked()
        return job, False

    def _enqueue_locked(self, job: Job) -> None:
        """Register, journal and queue one accepted job (lock held).

        The journal write is the acknowledgment point: if it fails,
        every registration is rolled back and the error propagates, so
        the client never holds an id a restart would not recognize.
        """
        if job.coalesce_key is not None:
            self._active_keys[job.coalesce_key] = job
        self._remember(job)
        if job.kind in ("campaign", "synth"):
            total = (
                job.params["_campaign"].scenarios
                if job.kind == "synth"
                else len(job.params.get("_specs", ()))
            )
            progress = CampaignProgress(job.id, total=total)
            self._campaigns[job.id] = progress
            job.params["_progress"] = progress
        self._queue.append(job)
        try:
            self._journal_state(job)
        except BaseException:
            self._queue.remove(job)
            self._jobs.pop(job.id, None)
            self._campaigns.pop(job.id, None)
            if self._active_keys.get(job.coalesce_key) is job:
                del self._active_keys[job.coalesce_key]
            raise
        metrics = service_metrics()
        if metrics is not None:
            metrics.queue_depth.set(len(self._queue))

    def _cell_key(self, kind: str, params: Dict[str, Any]) -> str:
        """The executor-cell identity the circuit breaker trips on.

        Deterministic simulation means a crash is a property of the
        cell, not of the moment -- so eviction keys on what would
        recompute (program/size/seed, archived run, synth spec), not
        on tenant or request.
        """
        if kind == "run":
            return (
                f"run:{params.get('property')}"
                f":{params.get('size', 8)}:{params.get('threads', 4)}"
                f":{params.get('seed', 0)}"
            )
        if kind == "analyze":
            return f"analyze:{params.get('run')}"
        if kind == "diff":
            return f"diff:{params.get('before')}:{params.get('after')}"
        if kind == "synth":
            spec = params.get("spec")
            name = spec.get("name") if isinstance(spec, dict) else None
            return f"synth:{name}"
        return kind

    def _on_breaker_transition(self, key: str, state: str) -> None:
        metrics = service_metrics()
        if metrics is not None:
            metrics.breaker_transitions.labels(state=state).inc()
            metrics.breaker_open_cells.set(self.breaker.open_count())

    def _journal_state(self, job: Job) -> None:
        """Append one state transition to the durable journal."""
        if self.journal is None:
            return
        self.journal.record_state(job)
        metrics = service_metrics()
        if metrics is not None:
            metrics.journal_records.inc()

    def _checkpoint_path(self, job: Job) -> Optional[str]:
        """Where a campaign/synth job checkpoints its cells.

        Keyed by job id, which recovery preserves -- so a resumed job
        replays exactly the cells its pre-crash incarnation finished.
        """
        if self.state_dir is None:
            return None
        return str(self.state_dir / "checkpoints" / f"{job.id}.jsonl")

    def _coalesce_key(
        self, kind: str, params: Dict[str, Any]
    ) -> Optional[Tuple]:
        """Derive the dedup key; resolves archive refs as a side effect.

        Unknown refs surface here, at submit time, as
        :class:`JobError` -- a 404 the client gets immediately rather
        than a failed job it would have to poll for.
        """
        if kind == "analyze":
            record = self._resolve_ref(params.get("run"))
            params["_record"] = record
            return (
                "analyze",
                record["trace_digest"],
                detector_set_fingerprint(_default_detectors()),
            )
        if kind == "diff":
            before = self._resolve_ref(params.get("before"), "before")
            after = self._resolve_ref(params.get("after"), "after")
            params["_before"] = before
            params["_after"] = after
            return (
                "diff",
                before["trace_digest"],
                after["trace_digest"],
                detector_set_fingerprint(_default_detectors()),
                float(params.get("threshold", self.threshold)),
            )
        if kind == "run":
            spec, run_kwargs = self._resolve_run_params(params)
            params["_spec"] = spec
            params["_kwargs"] = run_kwargs
            return (
                "run",
                spec.name,
                run_kwargs["size"],
                run_kwargs["num_threads"],
                run_kwargs["seed"],
            )
        if kind == "campaign":
            params["_specs"] = self._resolve_campaign_specs(params)
        if kind == "synth":
            params["_campaign"] = self._resolve_synth_spec(params)
        if kind == "export":
            params["_runs"] = self._resolve_export_runs(params)
        return None

    def _resolve_ref(self, ref, label: str = "run") -> dict:
        if not ref or not isinstance(ref, str):
            raise JobError(f"missing {label!r} run reference")
        try:
            return self.archive.resolve(ref).to_payload()
        except ArchiveError as exc:
            raise JobError(str(exc)) from None

    def _resolve_run_params(self, params: Dict[str, Any]):
        from ..core import get_property

        name = params.get("property")
        if not name or not isinstance(name, str):
            raise JobError("missing 'property' name")
        try:
            spec = get_property(name)
        except KeyError:
            raise JobError(
                f"unknown property function {name!r}"
            ) from None
        run_kwargs = {
            "size": int(params.get("size", 8)),
            "num_threads": int(params.get("threads", 4)),
            "seed": int(params.get("seed", 0)),
        }
        scale = params.get("severity_scale")
        if scale is not None:
            run_kwargs["severity_scale"] = float(scale)
        return spec, run_kwargs

    def _resolve_campaign_specs(self, params: Dict[str, Any]):
        from ..core import get_property, list_properties

        names = params.get("properties")
        if not names:
            return list_properties()
        specs = []
        for name in names:
            try:
                specs.append(get_property(name))
            except KeyError:
                raise JobError(
                    f"unknown property function {name!r}"
                ) from None
        return specs

    def _resolve_synth_spec(self, params: Dict[str, Any]):
        from ..synth import CampaignSpec, SynthError

        spec = params.get("spec")
        if not isinstance(spec, dict):
            raise JobError(
                "synth jobs need a 'spec' object (a CampaignSpec dict)"
            )
        try:
            return CampaignSpec.from_dict(spec)
        except SynthError as exc:
            raise JobError(str(exc)) from None

    def _resolve_export_runs(self, params: Dict[str, Any]):
        """Resolve an export job's run filter at submit time.

        ``runs`` is an optional list of archive run refs (id prefixes);
        unknown refs surface as an immediate 400 instead of a failed
        job.  ``None`` means export every labeled run in the archive.
        """
        refs = params.get("runs")
        if not refs:
            return None
        if not isinstance(refs, list):
            raise JobError("'runs' must be a list of run references")
        records = []
        for ref in refs:
            if not ref or not isinstance(ref, str):
                raise JobError("'runs' entries must be run references")
            try:
                records.append(self.archive.resolve(ref))
            except ArchiveError as exc:
                raise JobError(str(exc)) from None
        return records

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _pump_locked(self) -> None:
        """Start queued jobs while worker slots are free (lock held)."""
        metrics = service_metrics()
        while self._inflight < self.max_workers and self._queue:
            job = self._queue.popleft()
            if job.expired():
                self._expire_locked(job)
                continue
            job.mark_running()
            try:
                self._journal_state(job)
            except OSError:
                # The accept record is already durable; a failed
                # running-transition write must not kill the job.
                pass
            self._inflight += 1
            wait = job.queue_wait() or 0.0
            if metrics is not None:
                metrics.queue_depth.set(len(self._queue))
                metrics.inflight.set(self._inflight)
                metrics.queue_wait_seconds.observe(wait)
            _span(
                "queue-wait", job.created, job.started,
                request_id=job.request_id, job=job.id, kind=job.kind,
            )
            submit_host_task(
                lambda job=job: self._execute(job),
                lambda task, job=job: self._on_done(job, task),
            )

    def _expire_locked(self, job: Job) -> None:
        """Cancel a queued job whose client deadline already passed."""
        metrics = service_metrics()
        self._count_locked("expired")
        if job.coalesce_key is not None:
            if self._active_keys.get(job.coalesce_key) is job:
                del self._active_keys[job.coalesce_key]
        if metrics is not None:
            metrics.expired.inc()
            metrics.jobs.labels(kind=job.kind, status="expired").inc()
            metrics.queue_depth.set(len(self._queue))
        job.resolve(
            None,
            "client deadline expired before execution started",
            state="expired",
        )
        try:
            self._journal_state(job)
        except OSError:
            pass

    def _execute(self, job: Job) -> dict:
        """Job body -- runs on a pooled worker thread."""
        t0 = time.monotonic()
        injector = _chaos_injector()
        if injector is not None:
            injector.execute(job.kind)
        try:
            handler = getattr(self, f"_job_{job.kind}")
            return handler(job)
        finally:
            _span(
                "execute", t0, time.monotonic(),
                request_id=job.request_id, job=job.id, kind=job.kind,
            )

    def _on_done(self, job: Job, task) -> None:
        """Worker-side completion: bookkeeping, resolve, pump next."""
        metrics = service_metrics()
        with self._lock:
            self._inflight -= 1
            if job.coalesce_key is not None:
                if self._active_keys.get(job.coalesce_key) is job:
                    del self._active_keys[job.coalesce_key]
            status = "failed" if task.exception is not None else "done"
            self._count_locked(status)
            self._count_locked("executed")
            if metrics is not None:
                metrics.inflight.set(self._inflight)
                metrics.jobs.labels(kind=job.kind, status=status).inc()
                metrics.executed.inc()
            self._idle.notify_all()
        cell = self._cell_key(job.kind, job.params)
        if task.exception is not None:
            exc = task.exception
            job.resolve(None, f"{type(exc).__name__}: {exc}")
            self.breaker.record_failure(cell)
        else:
            job.resolve(task.result, None)
            self.breaker.record_success(cell)
        try:
            self._journal_state(job)
        except OSError:
            # the result is already in memory and served from there;
            # losing the terminal record only means a restart re-runs
            # the job (idempotent through the archive cache).
            pass
        with self._lock:
            self._pump_locked()

    # ------------------------------------------------------------------
    # job bodies
    # ------------------------------------------------------------------

    def _count_cache(self, job: Job, stats: CacheStats) -> None:
        with self._lock:
            self.counts["cache_hits"] += stats.hits
            self.counts["cache_misses"] += stats.misses
        metrics = service_metrics()
        if metrics is not None:
            if stats.hits:
                metrics.cache_hits.inc(stats.hits)
            if stats.misses:
                metrics.cache_misses.inc(stats.misses)
        now = time.monotonic()
        _span(
            "archive-cache", now, now,
            request_id=job.request_id, job=job.id,
            hits=stats.hits, misses=stats.misses,
        )

    def _job_run(self, job: Job) -> dict:
        spec = job.params["_spec"]
        kwargs = job.params["_kwargs"]
        with self._sim_lock:
            run = self.archive.archive_run(spec, **kwargs)
        return {
            "run_id": run.run_id,
            "program": run.program,
            "trace_digest": run.trace_digest,
            "events": run.events,
            "final_time": run.final_time,
        }

    def _job_analyze(self, job: Job) -> dict:
        record = job.params["_record"]
        stats = CacheStats()
        from ..archive.cache import analyze_archived

        analysis = analyze_archived(
            self.archive.store, record, stats=stats
        )
        self._count_cache(job, stats)
        threshold = float(job.params.get("threshold", self.threshold))
        return {
            "run_id": job.params.get("run"),
            "program": record.get("program"),
            "severities": analysis.severities_by_property(),
            "detected": list(analysis.detected(threshold)),
            "findings": len(analysis.findings),
            "total_time": analysis.total_time,
            "cache": {"hits": stats.hits, "misses": stats.misses},
        }

    def _job_diff(self, job: Job) -> dict:
        from ..analysis.compare import compare_analyses
        from ..archive.cache import analyze_archived

        stats = CacheStats()
        threshold = float(job.params.get("threshold", self.threshold))
        before = analyze_archived(
            self.archive.store, job.params["_before"], stats=stats
        )
        after = analyze_archived(
            self.archive.store, job.params["_after"], stats=stats
        )
        self._count_cache(job, stats)
        report = compare_analyses(before, after, threshold=threshold)
        return {
            "before": job.params.get("before"),
            "after": job.params.get("after"),
            "report": report.to_dict(),
            "gate_failures": report.gate_failures(),
            "cache": {"hits": stats.hits, "misses": stats.misses},
        }

    def _job_history(self, job: Job) -> dict:
        runs = self.archive.history()
        return {
            "count": len(runs),
            "runs": [
                dict(run.to_payload(), run_id=run.run_id)
                for run in runs
            ],
        }

    def _job_campaign(self, job: Job) -> dict:
        from ..resilience import Supervisor
        from ..validation import run_validation_matrix

        specs = job.params["_specs"]
        progress: CampaignProgress = job.params["_progress"]
        supervisor = Supervisor(
            timeout=job.params.get("timeout"),
            retries=int(job.params.get("retries", 0)),
            on_event=progress.on_event,
            checkpoint=self._checkpoint_path(job),
        )
        try:
            with self._sim_lock:
                matrix = run_validation_matrix(
                    specs,
                    size=int(job.params.get("size", 8)),
                    num_threads=int(job.params.get("threads", 4)),
                    seed=int(job.params.get("seed", 0)),
                    supervisor=supervisor,
                    archive=self.archive,
                )
        finally:
            supervisor.close()
        return {
            "rows": [row.to_dict() for row in matrix.rows],
            "all_passed": matrix.all_passed,
            "positive_detection_rate": matrix.positive_detection_rate,
            "false_positive_rate": matrix.false_positive_rate,
            "progress": progress.snapshot(),
        }

    def _job_synth(self, job: Job) -> dict:
        from ..resilience import Supervisor
        from ..synth import CampaignError, run_campaign, score_result

        spec = job.params["_campaign"]
        progress: CampaignProgress = job.params["_progress"]
        supervisor = Supervisor(
            timeout=job.params.get("timeout"),
            retries=int(job.params.get("retries", spec.max_retries)),
            on_event=progress.on_event,
            checkpoint=self._checkpoint_path(job),
        )
        aborted = None
        try:
            with self._sim_lock:
                result = run_campaign(
                    spec,
                    threshold=float(
                        job.params.get("threshold", self.threshold)
                    ),
                    supervisor=supervisor,
                    archive=self.archive,
                )
        except CampaignError as exc:
            result = exc.result
            aborted = str(exc)
        finally:
            supervisor.close()
        score = score_result(result)
        return {
            "campaign": result.to_json_dict(),
            "score": score.to_json_dict(),
            "aborted": aborted,
            "progress": progress.snapshot(),
        }

    def _job_export(self, job: Job) -> dict:
        from ..stats import dataset_rows, rows_to_csv, rows_to_jsonl

        stats = CacheStats()
        rows = dataset_rows(
            self.archive, runs=job.params.get("_runs"), stats=stats
        )
        self._count_cache(job, stats)
        result = {
            "rows": len(rows),
            "runs": len({row.run_id for row in rows}),
            "jsonl": rows_to_jsonl(rows),
            "cache": {"hits": stats.hits, "misses": stats.misses},
        }
        if job.params.get("csv"):
            result["csv"] = rows_to_csv(rows)
        return result

    # ------------------------------------------------------------------
    # restart recovery
    # ------------------------------------------------------------------

    def _recover(self) -> None:
        """Replay the durable journal after a restart.

        * terminal jobs (``done``/``failed``/``expired``/``orphaned``)
          are restored into the job table so ``GET /jobs/<id>`` keeps
          answering;
        * ``queued`` and ``running`` jobs are re-enqueued from their
          journaled client spec -- campaign/synth jobs find their
          per-job checkpoint file and resume through the supervised
          sweep's replay path, reproducing the artifact an
          uninterrupted run would have written byte for byte;
        * jobs whose spec no longer resolves (archived run vanished,
          property renamed) become ``orphaned`` -- visible, queryable,
          never silently dropped.

        Client deadlines do not survive a restart: the monotonic clock
        they were armed against died with the old process, so
        recovered jobs run to completion.
        """
        assert self.journal is not None
        try:
            records = self.journal.load()
        except ServiceJournalError as exc:
            raise JobError(
                f"cannot recover service state: {exc}"
            ) from exc
        metrics = service_metrics()
        for job_id in records:
            advance_job_ids(job_id)
        with self._lock:
            for job_id, payload in records.items():
                state = payload.get("state", "failed")
                if state in ("queued", "running"):
                    self._requeue_locked(job_id, payload, metrics)
                else:
                    job = Job.restore(job_id, payload)
                    self._jobs[job.id] = job
                    self._count_locked("recovered")
                    if metrics is not None:
                        metrics.recovered.labels(
                            outcome="restored"
                        ).inc()
            self._pump_locked()

    def _requeue_locked(
        self, job_id: str, payload: dict, metrics
    ) -> None:
        """Re-enqueue one interrupted job under its original id."""
        kind = payload.get("kind", "")
        params = dict(payload.get("params") or {})
        try:
            key = self._coalesce_key(kind, params)
            job = Job(
                kind,
                params,
                tenant=payload.get("tenant", "default"),
                request_id=payload.get("request_id", ""),
                coalesce_key=key,
                job_id=job_id,
            )
        except (JobError, ValueError) as exc:
            self._orphan_locked(job_id, payload, str(exc), metrics)
            return
        job.recovered = True
        self._enqueue_locked(job)
        self._count_locked("requeued")
        if metrics is not None:
            metrics.recovered.labels(outcome="requeued").inc()

    def _orphan_locked(
        self, job_id: str, payload: dict, reason: str, metrics
    ) -> None:
        """Keep an unrecoverable job visible instead of dropping it."""
        from .jobs import JOB_KINDS

        kind = payload.get("kind", "")
        job = Job(
            kind if kind in JOB_KINDS else "history",
            dict(payload.get("params") or {}),
            tenant=payload.get("tenant", "default"),
            request_id=payload.get("request_id", ""),
            job_id=job_id,
        )
        job.recovered = True
        job.resolve(
            None,
            f"unrecoverable after restart: {reason}",
            state="orphaned",
        )
        self._jobs[job.id] = job
        self._count_locked("orphaned")
        if metrics is not None:
            metrics.recovered.labels(outcome="orphaned").inc()
        try:
            self._journal_state(job)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def get_job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def _remember(self, job: Job) -> None:
        self._jobs[job.id] = job
        while len(self._jobs) > self.MAX_FINISHED_JOBS:
            oldest_id, oldest = next(iter(self._jobs.items()))
            if not oldest.done:
                break
            del self._jobs[oldest_id]
            self._campaigns.pop(oldest_id, None)

    def _count(self, name: str) -> None:
        with self._lock:
            self._count_locked(name)

    def _count_locked(self, name: str) -> None:
        self.counts[name] += 1

    def status(self) -> dict:
        """Live service snapshot (``GET /status`` / dashboards)."""
        with self._lock:
            queue_depth = len(self._queue)
            inflight = self._inflight
            accepting = self._accepting
            counts = dict(self.counts)
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            campaigns = [
                progress.snapshot()
                for progress in self._campaigns.values()
            ]
        lookups = counts["cache_hits"] + counts["cache_misses"]
        out = {
            "uptime": time.monotonic() - self.started_at,
            "accepting": accepting,
            "queue_depth": queue_depth,
            "inflight": inflight,
            "max_workers": self.max_workers,
            "counts": counts,
            "jobs_by_state": states,
            "cache_hit_ratio": (
                counts["cache_hits"] / lookups if lookups else None
            ),
            "campaigns": campaigns,
            "durable": self.journal is not None,
            "breakers": self.breaker.snapshot(),
        }
        if self.state_dir is not None:
            out["state_dir"] = str(self.state_dir)
        metrics = service_metrics()
        if metrics is not None:
            latency = {}
            for (endpoint,), child in sorted(
                metrics.request_seconds.samples()
            ):
                latency[endpoint] = {
                    "p50": child.quantile(0.50),
                    "p99": child.quantile(0.99),
                    "count": child.snapshot()[2],
                }
            out["latency"] = latency
        return out

    # ------------------------------------------------------------------
    # drain / shutdown
    # ------------------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop intake, wait for in-flight work, flush everything.

        Returns False when ``timeout`` elapsed with work still
        pending (the jobs keep running; drain just stopped waiting).
        Either way the durable journal and archive manifest are
        flushed to disk before this returns -- the guarantee ``POST
        /drain`` and the SIGTERM handler rely on before letting the
        process exit.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        drained = True
        with self._lock:
            self._accepting = False
            while self._queue or self._inflight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        drained = False
                        break
                self._idle.wait(remaining)
        self.flush_durable()
        return drained

    def flush_durable(self) -> None:
        """Force journal + archive manifest to disk (best effort)."""
        if self.journal is not None:
            try:
                self.journal.flush()
            except OSError:
                pass
        try:
            self.archive.store.flush()
        except OSError:
            pass

    @property
    def accepting(self) -> bool:
        return self._accepting

    def close(self) -> None:
        self.flush_durable()
        if self.journal is not None:
            self.journal.close()
        self.archive.close()


def _default_detectors():
    from ..analysis import DEFAULT_DETECTORS

    return DEFAULT_DETECTORS
