"""TraceIndex: one-pass views must match the per-detector rescans."""

from repro.analysis import TraceIndex, analyze_run, analyze_events
from repro.analysis.detectors.base import (
    collective_instances,
    iter_region_visits,
    matched_p2p_pairs,
)
from repro.core import run_all_mpi_properties, run_hybrid_composite


def _trace():
    return run_all_mpi_properties(size=4).recorder.events


def test_index_is_a_sequence_view():
    events = _trace()
    index = TraceIndex(events)
    assert len(index) == len(events)
    assert index[0] is events[0]
    assert list(index) == events
    assert index[2:4] == events[2:4]


def test_region_visits_match_replay():
    events = _trace()
    index = TraceIndex(events)
    assert list(iter_region_visits(index)) == list(
        iter_region_visits(events)
    )


def test_p2p_pairs_match_rescan():
    events = _trace()
    index = TraceIndex(events)
    assert list(matched_p2p_pairs(index)) == list(
        matched_p2p_pairs(events)
    )


def test_collectives_match_rescan():
    events = _trace()
    index = TraceIndex(events)
    assert collective_instances(index) == collective_instances(events)


def test_by_kind_and_location_partition_the_trace():
    events = _trace()
    index = TraceIndex(events)
    assert sum(len(v) for v in index.by_kind.values()) == len(events)
    assert sum(len(v) for v in index.by_location.values()) == len(events)
    assert index.locations == sorted(index.by_location)


def test_analysis_identical_through_index():
    result = run_hybrid_composite(
        ("late_broadcast",),
        ("imbalance_in_omp_pregion",),
        size=4,
        num_threads=2,
    )
    direct = analyze_run(result)
    via_index = analyze_events(
        TraceIndex(result.recorder.events),
        total_time=result.final_time,
        comm_registry=result.recorder.comm_registry,
    )
    assert [
        (f.property, f.wait_time, f.callpath, f.loc)
        for f in direct.findings
    ] == [
        (f.property, f.wait_time, f.callpath, f.loc)
        for f in via_index.findings
    ]
