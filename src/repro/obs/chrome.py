"""Chrome trace-event (Perfetto-viewable) export.

Renders one JSON document in the Trace Event Format that
https://ui.perfetto.dev (or ``chrome://tracing``) loads directly:

* **Simulated timeline** -- every completed region instance of the
  event trace becomes a complete ("X") slice on a ``rank.thread``
  track, with timestamps in *virtual* microseconds; matched
  point-to-point messages become flow ("s"/"f") arrows between the
  sender and receiver tracks.
* **Host timeline** -- spans from :mod:`repro.obs.spans` (index build,
  per-detector analysis, writer flushes, CLI phases) become slices on
  a separate "host (tool)" process, in *wall* microseconds.

The two clocks are unrelated; Perfetto shows them as separate process
groups, which is exactly the paper's chapter-2 distinction between the
measured program and the measurement system observing it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from .spans import Span, SpanLog, span_log

__all__ = ["build_chrome_trace", "write_chrome_trace"]

#: synthetic pid of the host (tool-side) track group; simulated ranks
#: use ``rank + 1`` so rank 0 never collides with the host group.
HOST_PID = 0


def _sim_trace_events(events: Sequence) -> list[dict]:
    """Slices + flows for the simulated ranks/threads."""
    # Imported lazily: repro.trace pulls in the simulation kernel,
    # which itself imports repro.obs -- at module-import time that
    # would be a cycle, at call time everything is loaded.
    from ..trace.stats import region_intervals

    out: list[dict] = []
    seen_tracks: set[tuple[int, int]] = set()
    for interval in region_intervals(events):
        rank, thread = interval.loc
        seen_tracks.add((rank, thread))
        out.append(
            {
                "name": interval.region,
                "cat": "sim",
                "ph": "X",
                "pid": rank + 1,
                "tid": thread,
                "ts": interval.enter * 1e6,
                "dur": (interval.exit - interval.enter) * 1e6,
                "args": {"callpath": "/".join(interval.path)},
            }
        )
    # Flow arrows for matched user-level p2p messages.
    sends: dict[int, object] = {}
    recvs: dict[int, object] = {}
    for event in events:
        kind = event.kind
        if kind == "send" and not event.internal:
            sends[event.msg_id] = event
        elif kind == "recv" and not event.internal:
            recvs[event.msg_id] = event
    for msg_id, recv in recvs.items():
        send = sends.get(msg_id)
        if send is None:
            continue
        common = {
            "name": "p2p",
            "cat": "msg",
            "id": msg_id,
        }
        out.append(
            {
                **common,
                "ph": "s",
                "pid": send.loc[0] + 1,
                "tid": send.loc[1],
                "ts": send.time * 1e6,
            }
        )
        out.append(
            {
                **common,
                "ph": "f",
                "bp": "e",
                "pid": recv.loc[0] + 1,
                "tid": recv.loc[1],
                "ts": recv.time * 1e6,
            }
        )
    # Track naming metadata.
    for rank, thread in sorted(seen_tracks):
        if thread == 0:
            out.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": rank + 1,
                    "tid": 0,
                    "args": {"name": f"rank {rank} (virtual time)"},
                }
            )
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": rank + 1,
                "tid": thread,
                "args": {"name": f"thread {thread}"},
            }
        )
    return out


def _host_trace_events(spans: Iterable[Span]) -> list[dict]:
    """Slices for the host (tool-side) spans."""
    out: list[dict] = []
    tids: set[int] = set()
    for sp in spans:
        tids.add(sp.tid)
        record = {
            "name": sp.name,
            "cat": sp.cat,
            "ph": "X",
            "pid": HOST_PID,
            "tid": sp.tid,
            "ts": sp.start * 1e6,
            "dur": sp.duration * 1e6,
        }
        if sp.args:
            record["args"] = sp.args
        out.append(record)
    if tids:
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": HOST_PID,
                "tid": min(tids),
                "args": {"name": "host (tool)"},
            }
        )
    return out


def build_chrome_trace(
    events: Optional[Sequence] = None,
    host_spans: Optional[Union[SpanLog, Sequence[Span]]] = None,
    metadata: Optional[dict] = None,
) -> dict:
    """Assemble a Trace Event Format document.

    ``events`` is a simulated event trace (any sequence of
    :class:`repro.trace.events.Event`); ``host_spans`` defaults to the
    global span log.  Either side may be empty/None.
    """
    trace_events: list[dict] = []
    if events is not None:
        trace_events.extend(_sim_trace_events(events))
    spans = host_spans if host_spans is not None else span_log()
    trace_events.extend(_host_trace_events(spans))
    doc = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        doc["otherData"] = metadata
    return doc


def write_chrome_trace(
    path: Union[str, Path],
    events: Optional[Sequence] = None,
    host_spans: Optional[Union[SpanLog, Sequence[Span]]] = None,
    metadata: Optional[dict] = None,
) -> int:
    """Write the document to ``path``; returns the traceEvents count."""
    doc = build_chrome_trace(events, host_spans, metadata)
    Path(path).write_text(json.dumps(doc) + "\n", encoding="utf-8")
    return len(doc["traceEvents"])
