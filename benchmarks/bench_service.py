#!/usr/bin/env python
"""Analysis-service load benchmark: 1000-way burst + warm latency.

Stands up a real ``AnalysisService`` (thread-hosted asyncio HTTP
server, metrics on) over an archive whose detector cache is already
warm, then measures two scenarios:

* **burst** -- ``N`` (default 1000) concurrent identical
  ``POST /analyze?wait=1`` requests, one client thread each, while
  the service's single worker is held by a gated blocker job.  The
  gate opens only once the service has counted every submission, so
  the whole burst is in flight simultaneously -- no race against
  client ramp-up.  Every request targets the same ``(trace digest,
  detector fingerprint)`` pair, so the duplicates must coalesce onto
  ONE queued executor cell.  Headline numbers: the *collapse ratio*
  (coalesced submissions over total analyze submissions, acceptance
  bar >= 0.9) and the *fan-out latency* -- gate-release to response
  for each of the N waiters.
* **warm** -- a closed loop of ``CONCURRENCY`` clients issuing
  identical warm-cache analyzes against an idle 8-worker service
  (every detector cell hits, no trace blobs are read).  Per-request
  end-to-end latency is recorded client-side; the acceptance bar is
  p99 < 50 ms.

Results land in ``BENCH_SERVICE.json`` at the repository root, which
``check_bench_guard.py`` validates (``check_service_baseline``).

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_service.py           # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.archive import Archive  # noqa: E402
from repro.core import get_property  # noqa: E402
from repro.obs import reset_metrics, set_metrics_enabled  # noqa: E402
from repro.service import (  # noqa: E402
    AnalysisService,
    ServiceClient,
    run_service_in_thread,
)

OUT_PATH = REPO_ROOT / "BENCH_SERVICE.json"

#: archived-run shape: small and fixed -- the bench measures the
#: service path (HTTP, queue, coalescing, cache hits), not detectors.
SIZE = 4
THREADS = 2
SEED = 1

BURST_REQUESTS = 1000
WARM_REQUESTS = 400
WARM_CONCURRENCY = 8


def percentile(sorted_samples, q):
    """Nearest-rank-interpolated percentile of a pre-sorted list."""
    if not sorted_samples:
        return None
    pos = (len(sorted_samples) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(sorted_samples) - 1)
    frac = pos - lo
    return sorted_samples[lo] * (1.0 - frac) + sorted_samples[hi] * frac


def stand_up_service(root: Path, max_workers: int):
    """Archive one run, warm its cache, return (service, handle, run).

    The service runs in full durable mode -- job journal with fsync'd
    acknowledgments, fsync'd archive -- so the headline numbers carry
    the crash-safety tax the production configuration pays.
    """
    archive = Archive(root, fsync=True)
    run = archive.archive_run(
        get_property("late_sender"), size=SIZE, num_threads=THREADS,
        seed=SEED,
    )
    service = AnalysisService(
        archive,
        max_workers=max_workers,
        rate=1e6,  # the bench measures the service, not the limiter
        burst=max(BURST_REQUESTS * 4, 4096),
        state_dir=root / "state",
    )
    handle = run_service_in_thread(service)
    # warm every detector cell so the measured requests are pure hits
    ServiceClient(handle.url).analyze(run.run_id, wait=True)
    return service, handle, run


def run_burst(tmp: Path, n: int) -> dict:
    """n concurrent identical analyzes while the one worker is held."""
    service, handle, run = stand_up_service(tmp / "burst", max_workers=1)
    try:
        # a gated job holds the single worker; the gate opens only
        # after the service has counted all n submissions, so every
        # duplicate is in flight at once (the dispatch honors
        # instance attributes precisely for this kind of hosting).
        gate = threading.Event()
        service._job_history = lambda job: gate.wait(600) or {"count": 0}
        blocker, _ = service.submit("history", {})

        submitted_before = service.counts["submitted"]
        executed_before = service.counts["executed"]
        coalesced_before = service.counts["coalesced"]

        done_at = [None] * n
        errors = []

        def fire(i: int):
            client = ServiceClient(handle.url, tenant="bench",
                                   timeout=600.0)
            try:
                out = client.analyze(run.run_id, wait=True)
                if out["state"] != "done":
                    raise RuntimeError(f"job ended {out['state']}")
            except Exception as exc:
                errors.append(f"{type(exc).__name__}: {exc}")
                return
            done_at[i] = time.perf_counter()

        threads = [
            threading.Thread(target=fire, args=(i,), daemon=True)
            for i in range(n)
        ]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 300
        while service.counts["submitted"] - submitted_before < n:
            if errors:
                raise SystemExit(f"burst: request failed ({errors[0]})")
            if time.monotonic() > deadline:
                raise SystemExit(
                    "burst: submissions never all arrived "
                    f"({service.counts['submitted'] - submitted_before}"
                    f"/{n})"
                )
            time.sleep(0.005)
        released = time.perf_counter()
        gate.set()
        for t in threads:
            t.join(timeout=600)
        wall = time.perf_counter() - released
        if errors:
            raise SystemExit(
                f"burst: {len(errors)}/{n} requests failed "
                f"(first: {errors[0]})"
            )
        if not blocker.wait(timeout=600):
            raise SystemExit("burst: blocker job never finished")

        # the blocker (history) executes too; only analyzes count here
        analyze_cells = service.counts["executed"] - executed_before - 1
        coalesced = service.counts["coalesced"] - coalesced_before
        submissions = analyze_cells + coalesced
        samples = sorted(
            t_done - released for t_done in done_at if t_done is not None
        )
        return {
            "requests": n,
            "fanout_wall_s": round(wall, 4),
            "executed_analyzes": analyze_cells,
            "coalesced": coalesced,
            "collapse": round(coalesced / submissions, 4),
            "fanout_p50_ms": round(percentile(samples, 0.50) * 1000, 2),
            "fanout_p99_ms": round(percentile(samples, 0.99) * 1000, 2),
        }
    finally:
        handle.stop(drain=False)


def run_warm(tmp: Path, total: int, concurrency: int) -> dict:
    """Closed-loop warm-cache analyzes; per-request latency client-side."""
    service, handle, run = stand_up_service(tmp / "warm", max_workers=8)
    try:
        executed_before = service.counts["executed"]
        coalesced_before = service.counts["coalesced"]
        per_client = total // concurrency
        latencies = []
        lock = threading.Lock()
        errors = []
        barrier = threading.Barrier(concurrency + 1)

        def loop():
            client = ServiceClient(handle.url, tenant="bench",
                                   timeout=120.0)
            mine = []
            barrier.wait()
            try:
                for _ in range(per_client):
                    t0 = time.perf_counter()
                    out = client.analyze(run.run_id, wait=True)
                    mine.append(time.perf_counter() - t0)
                    if out["state"] != "done":
                        raise RuntimeError(f"job ended {out['state']}")
            except Exception as exc:
                errors.append(f"{type(exc).__name__}: {exc}")
            with lock:
                latencies.extend(mine)

        threads = [
            threading.Thread(target=loop, daemon=True)
            for _ in range(concurrency)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        t0 = time.perf_counter()
        for t in threads:
            t.join(timeout=300)
        wall = time.perf_counter() - t0
        if errors:
            raise SystemExit(f"warm: a client failed (first: {errors[0]})")

        status = ServiceClient(handle.url).status()
        samples = sorted(latencies)
        return {
            "requests": len(samples),
            "concurrency": concurrency,
            "wall_s": round(wall, 4),
            "rps": round(len(samples) / wall, 1),
            "p50_ms": round(percentile(samples, 0.50) * 1000, 2),
            "p95_ms": round(percentile(samples, 0.95) * 1000, 2),
            "p99_ms": round(percentile(samples, 0.99) * 1000, 2),
            "executed_analyzes": (
                service.counts["executed"] - executed_before
            ),
            "coalesced": service.counts["coalesced"] - coalesced_before,
            "cache_hit_ratio": status["cache_hit_ratio"],
        }
    finally:
        handle.stop(drain=False)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 100-way burst, 80 warm requests, no JSON write",
    )
    args = parser.parse_args(argv)

    burst_n = 100 if args.quick else BURST_REQUESTS
    warm_n = 80 if args.quick else WARM_REQUESTS

    set_metrics_enabled(True)
    reset_metrics()
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        root = Path(tmp)
        burst = run_burst(root, burst_n)
        print(
            f"  burst  {burst['requests']:5d} concurrent: "
            f"collapse {burst['collapse']:.4f} "
            f"({burst['executed_analyzes']} analyze cells), "
            f"fan-out p50 {burst['fanout_p50_ms']:.0f} ms / "
            f"p99 {burst['fanout_p99_ms']:.0f} ms"
        )
        warm = run_warm(root, warm_n, WARM_CONCURRENCY)
        print(
            f"  warm   {warm['requests']:5d} x{warm['concurrency']}: "
            f"{warm['rps']:7.1f} req/s, "
            f"p50 {warm['p50_ms']:.1f} ms, p99 {warm['p99_ms']:.1f} ms, "
            f"cache hit {warm['cache_hit_ratio']:.2f}"
        )

    payload = {
        "service": {
            "burst": burst,
            "warm": warm,
            "durable": True,
        },
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }
    if args.quick:
        print("quick mode: BENCH_SERVICE.json not rewritten")
        return 0
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
