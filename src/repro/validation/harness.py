"""The correctness harness: the positive/negative detection matrix.

This automates the paper's central test procedure: run every property
function as a standalone synthetic program, feed the trace to the
analysis tool under test, and check that

* every *intended* property is reported (**positive correctness**),
* nothing beyond intended/allowed properties is reported for positive
  programs, and nothing at all for the balanced negative programs
  (**negative correctness**).

The tool under test is pluggable (any callable from run result to
detected property ids); the bundled analyzer is the default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

from ..analysis import analyze_run
from ..core.registry import PropertySpec, list_properties

#: properties tolerated in any program (framework overhead, paper fig 3.2)
GLOBALLY_ALLOWED = ("mpi_init_overhead",)

DetectorFn = Callable[[object], Tuple[str, ...]]


def default_tool(threshold: float = 0.01) -> DetectorFn:
    """The bundled analyzer as a tool-under-test adapter."""

    def tool(run) -> Tuple[str, ...]:
        return analyze_run(run).detected(threshold)

    return tool


@dataclass
class MatrixRow:
    """Outcome of validating one property function."""

    name: str
    paradigm: str
    negative: bool
    expected: Tuple[str, ...]
    detected: Tuple[str, ...]
    missing: Tuple[str, ...]
    spurious: Tuple[str, ...]
    severity: float
    final_time: float
    #: True when every expected property's dominant call path passes
    #: through the property function's own region (figure 3.5's
    #: localization requirement); None when not checkable (negative
    #: rows, or tools that do not localize)
    localized: Optional[bool] = None
    #: exception text when the program itself failed under supervision
    #: (deadlock, hang, crash); a failed row detects nothing
    error: Optional[str] = None

    @property
    def passed(self) -> bool:
        return (
            self.error is None
            and not self.missing
            and not self.spurious
            and self.localized is not False
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "paradigm": self.paradigm,
            "negative": self.negative,
            "expected": list(self.expected),
            "detected": list(self.detected),
            "missing": list(self.missing),
            "spurious": list(self.spurious),
            "severity": self.severity,
            "final_time": self.final_time,
            "localized": self.localized,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MatrixRow":
        return cls(
            name=d["name"],
            paradigm=d["paradigm"],
            negative=d["negative"],
            expected=tuple(d["expected"]),
            detected=tuple(d["detected"]),
            missing=tuple(d["missing"]),
            spurious=tuple(d["spurious"]),
            severity=d["severity"],
            final_time=d["final_time"],
            localized=d.get("localized"),
            error=d.get("error"),
        )


@dataclass
class MatrixResult:
    """The full detection matrix."""

    rows: list[MatrixRow] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return all(row.passed for row in self.rows)

    @property
    def positives(self) -> list[MatrixRow]:
        return [r for r in self.rows if not r.negative]

    @property
    def negatives(self) -> list[MatrixRow]:
        return [r for r in self.rows if r.negative]

    @property
    def positive_detection_rate(self) -> float:
        """Fraction of positive programs whose properties all fired."""
        rows = self.positives
        if not rows:
            return 1.0
        return sum(1 for r in rows if not r.missing) / len(rows)

    @property
    def false_positive_rate(self) -> float:
        """Fraction of negative programs that triggered anything."""
        rows = self.negatives
        if not rows:
            return 0.0
        return sum(1 for r in rows if r.detected) / len(rows)

    @property
    def localization_rate(self) -> float:
        """Fraction of localizable positives with correct call paths."""
        rows = [r for r in self.positives if r.localized is not None]
        if not rows:
            return 1.0
        return sum(1 for r in rows if r.localized) / len(rows)

    def format_table(self) -> str:
        lines = [
            f"{'property function':<34}{'kind':>5}{'ok':>4}{'loc':>5}"
            f"{'severity':>10}  expected -> detected"
        ]
        for row in self.rows:
            kind = "neg" if row.negative else "pos"
            ok = "yes" if row.passed else "NO"
            loc = (
                "-" if row.localized is None
                else ("yes" if row.localized else "NO")
            )
            lines.append(
                f"{row.name:<34}{kind:>5}{ok:>4}{loc:>5}"
                f"{row.severity:>9.2%}"
                f"  {','.join(row.expected) or '-'} -> "
                f"{','.join(row.detected) or '-'}"
            )
        lines.append(
            f"positive detection rate: {self.positive_detection_rate:.0%}"
            f"   false positive rate: {self.false_positive_rate:.0%}"
            f"   localization rate: {self.localization_rate:.0%}"
        )
        return "\n".join(lines) + "\n"


def validate_spec(
    spec: PropertySpec,
    tool: Optional[DetectorFn] = None,
    size: int = 8,
    num_threads: int = 4,
    seed: int = 0,
    time_budget: Optional[float] = None,
    archive=None,
) -> MatrixRow:
    """Validate one property function against the tool under test.

    ``archive`` (a :class:`repro.archive.Archive` or directory path)
    records each executed run's trace in the archive, so a matrix pass
    doubles as baseline collection for ``ats diff``.
    """
    tool = tool or default_tool()
    run = spec.run(
        size=size,
        num_threads=num_threads,
        seed=seed,
        time_budget=time_budget,
    )
    if archive is not None:
        from ..archive import coerce_archive, params_to_jsonable

        transport = getattr(run, "transport", None)
        coerce_archive(archive).record(
            program=spec.name,
            events=run.events,
            final_time=run.final_time,
            paradigm=spec.paradigm,
            params=params_to_jsonable(spec.default_params),
            size=size,
            threads=num_threads,
            seed=seed,
            eager_threshold=(
                transport.eager_threshold if transport is not None else None
            ),
        )
    detected = tuple(tool(run))
    tolerated = set(spec.expected) | set(spec.allowed) | set(
        GLOBALLY_ALLOWED
    )
    missing = tuple(p for p in spec.expected if p not in detected)
    spurious = tuple(p for p in detected if p not in tolerated)
    analysis = analyze_run(run)
    severity = sum(
        analysis.severity(property=p) for p in spec.expected
    )
    # Localization: the dominant call path of each intended property
    # must pass through the property function's own trace region.
    localized: Optional[bool] = None
    if spec.expected and not missing:
        localized = True
        for prop in spec.expected:
            callpaths = analysis.callpaths_of(prop)
            if not callpaths:
                localized = False
                break
            top_path = next(iter(callpaths))
            if spec.name not in top_path:
                localized = False
                break
    return MatrixRow(
        name=spec.name,
        paradigm=spec.paradigm,
        negative=spec.negative,
        expected=spec.expected,
        detected=detected,
        missing=missing,
        spurious=spurious,
        severity=severity,
        final_time=run.final_time,
        localized=localized,
    )


def _failed_row(spec: PropertySpec, error: str) -> MatrixRow:
    """The row a quarantined program contributes to the matrix."""
    return MatrixRow(
        name=spec.name,
        paradigm=spec.paradigm,
        negative=spec.negative,
        expected=spec.expected,
        detected=(),
        missing=spec.expected,
        spurious=(),
        severity=0.0,
        final_time=0.0,
        localized=None,
        error=error,
    )


def matrix_cell_key(spec_name: str, size: int, seed: int) -> str:
    """Stable checkpoint key of one matrix cell."""
    return f"{spec_name}|size{size}|s{seed}"


def _forked_matrix_cell(
    spec: PropertySpec,
    tool: Optional[DetectorFn],
    size: int,
    num_threads: int,
    seed: int,
    time_budget: Optional[float],
    archive,
) -> dict:
    """Child-side matrix cell (see :mod:`repro.resilience.forked`)."""
    if archive is not None:
        archive.store.begin_deferred()
    return validate_spec(
        spec,
        tool=tool,
        size=size,
        num_threads=num_threads,
        seed=seed,
        time_budget=time_budget,
        archive=archive,
    ).to_dict()


def _run_matrix_forked(
    specs,
    tool,
    size,
    num_threads,
    seed,
    time_budget,
    supervisor,
    archive,
    workers,
    result,
) -> None:
    """Fan the matrix out over forked workers (see run_validation_matrix)."""
    from ..resilience.forked import run_cells_forked

    cells = [
        (
            matrix_cell_key(spec.name, size, seed),
            lambda spec=spec: _forked_matrix_cell(
                spec, tool, size, num_threads, seed, time_budget, archive
            ),
        )
        for spec in specs
    ]
    extras_fn = None
    on_extras = None
    if archive is not None:
        extras_fn = archive.store.drain_deferred

        def on_extras(key, records):
            for run_id, payload in records:
                archive.store.record_run(run_id, payload)

    outcomes = run_cells_forked(
        cells,
        workers=workers,
        supervisor=supervisor,
        extras_fn=extras_fn,
        on_extras=on_extras,
    )
    for spec, outcome in zip(specs, outcomes):
        if outcome.ok:
            value = outcome.value
            if not isinstance(value, MatrixRow):
                value = MatrixRow.from_dict(value)
            result.rows.append(value)
        else:
            result.rows.append(
                _failed_row(spec, outcome.failure.error)
            )


def run_validation_matrix(
    specs: Optional[Sequence[PropertySpec]] = None,
    tool: Optional[DetectorFn] = None,
    size: int = 8,
    num_threads: int = 4,
    seed: int = 0,
    time_budget: Optional[float] = None,
    supervisor=None,
    archive=None,
    workers: int = 1,
) -> MatrixResult:
    """Validate every (or the given) property function; see module doc.

    With a ``supervisor`` (:class:`repro.resilience.Supervisor`) each
    program runs supervised -- a deadlocking or hung program is
    quarantined as a failed row instead of aborting the whole matrix,
    and a checkpoint-carrying supervisor resumes a killed run.  With an
    ``archive``, every executed run's trace is recorded (cells replayed
    from a checkpoint are not re-executed, so they contribute nothing
    new to the archive).  ``workers > 1`` runs the programs in forked
    child processes; rows come back in spec order either way, so the
    matrix is identical to a serial pass.

    Note the tool under test crosses a ``fork`` in parallel mode: a
    ``tool`` callable must therefore not depend on parent-side mutable
    state if it is to behave identically under ``workers > 1``.
    """
    specs = list_properties() if specs is None else list(specs)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if archive is not None:
        from ..archive import coerce_archive

        archive = coerce_archive(archive)
    result = MatrixResult()
    if workers > 1:
        _run_matrix_forked(
            specs,
            tool,
            size,
            num_threads,
            seed,
            time_budget,
            supervisor,
            archive,
            workers,
            result,
        )
        return result
    for spec in specs:
        if supervisor is None:
            result.rows.append(
                validate_spec(
                    spec,
                    tool=tool,
                    size=size,
                    num_threads=num_threads,
                    seed=seed,
                    time_budget=time_budget,
                    archive=archive,
                )
            )
            continue
        outcome = supervisor.run_cell(
            matrix_cell_key(spec.name, size, seed),
            lambda spec=spec: validate_spec(
                spec,
                tool=tool,
                size=size,
                num_threads=num_threads,
                seed=seed,
                time_budget=time_budget,
                archive=archive,
            ),
            encode=lambda row: row.to_dict(),
            decode=MatrixRow.from_dict,
        )
        if outcome.ok:
            result.rows.append(outcome.value)
        else:
            result.rows.append(
                _failed_row(spec, outcome.failure.error)
            )
    return result


@dataclass(frozen=True)
class ToolCertificate:
    """One-number-per-axis scorecard for a tool under test."""

    tool_name: str
    positive_detection_rate: float
    false_positive_rate: float
    localization_rate: float
    programs: int

    @property
    def certified(self) -> bool:
        """The paper's bar: finds every real problem, invents none."""
        return (
            self.positive_detection_rate == 1.0
            and self.false_positive_rate == 0.0
        )

    def format(self) -> str:
        verdict = "CERTIFIED" if self.certified else "NOT certified"
        return (
            f"tool {self.tool_name!r}: {verdict} over {self.programs} "
            f"programs (detection {self.positive_detection_rate:.0%}, "
            f"false positives {self.false_positive_rate:.0%}, "
            f"localization {self.localization_rate:.0%})\n"
        )


def certify_tool(
    tool: Optional[DetectorFn] = None,
    size: int = 8,
    num_threads: int = 4,
    seed: int = 0,
) -> ToolCertificate:
    """Run the complete ATS suite against a tool and grade it.

    The single-call entry point a tool developer uses: every registered
    positive and negative program is executed, analyzed by the tool,
    and the three correctness axes are scored.
    """
    matrix = run_validation_matrix(
        tool=tool, size=size, num_threads=num_threads, seed=seed
    )
    name = getattr(tool, "__name__", None) or (
        "bundled analyzer" if tool is None else repr(tool)
    )
    return ToolCertificate(
        tool_name=name,
        positive_detection_rate=matrix.positive_detection_rate,
        false_positive_rate=matrix.false_positive_rate,
        localization_rate=matrix.localization_rate,
        programs=len(matrix.rows),
    )
