"""One-pass trace index shared by all detectors.

Before this existed every detector rescanned the flat event list:
region-imbalance detectors replayed enter/exit stacks, p2p detectors
rebuilt the msg_id match tables, collective detectors regrouped
``CollExit`` events -- each linear in the trace, once per detector.
:class:`TraceIndex` performs a single pass and precomputes all three
views (plus by-kind and by-location groupings); the analyzer builds it
once and hands it to the whole battery.

The index is a :class:`~collections.abc.Sequence` over the underlying
events, so detectors that iterate the raw stream keep working
unchanged, and the helpers in :mod:`repro.analysis.detectors.base`
short-circuit to the precomputed views when given an index.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Dict, Iterable, Iterator, List, Tuple

from ..trace.events import CallPath, CollExit, Event, Location, Recv, Send
from ..trace.stats import RegionInterval, region_intervals

#: One completed region instance at one location.  The analysis layer
#: historically had its own ``RegionVisit`` duplicating the profile
#: replay in :mod:`repro.trace.stats`; both now share the single
#: :class:`~repro.trace.stats.RegionInterval` implementation.
RegionVisit = RegionInterval

#: Replay enter/exit events into completed visits -- the canonical
#: implementation lives in :func:`repro.trace.stats.region_intervals`.
replay_region_visits = region_intervals

#: region names whose exclusive time is synchronization wait: the MPI
#: barrier and completion calls plus every OpenMP barrier (explicit and
#: the implicit ``omp_ibarrier_*`` family), critical sections and locks
_WAIT_REGIONS = frozenset(
    {
        "MPI_Barrier",
        "MPI_Wait",
        "MPI_Waitall",
        "MPI_Waitany",
        "omp_barrier",
        "omp_critical",
        "omp_lock",
    }
)


def classify_region(region: str) -> str:
    """Bucket a region name: ``"comm"``, ``"comp"`` or ``"wait"``.

    * **wait** -- barrier / completion / lock regions, where exclusive
      time is time spent blocked on other ranks or threads,
    * **comm** -- every other ``MPI_*`` call (data movement),
    * **comp** -- everything else (user work, I/O, OpenMP bodies).
    """
    if region in _WAIT_REGIONS or region.startswith("omp_ibarrier"):
        return "wait"
    if region.startswith("MPI_"):
        return "comm"
    return "comp"


class TraceIndex(Sequence):
    """Single-pass index over a time-ordered event stream.

    Attributes (all built in one scan of ``events``):

    * ``events`` -- the underlying list, in trace order,
    * ``by_kind`` -- event-kind string -> events of that kind,
    * ``by_location`` -- :class:`Location` -> that location's events,
    * ``region_visits`` -- completed region instances in exit order,
    * ``p2p_pairs`` -- matched user-level ``(Send, Recv)`` pairs, in
      first-recv order (internal collective traffic excluded),
    * ``collectives`` -- ``(comm_id, instance, op)`` -> participant
      ``CollExit`` events,
    * ``locations`` -- sorted list of all locations seen.
    """

    __slots__ = (
        "events",
        "by_kind",
        "by_location",
        "region_visits",
        "p2p_pairs",
        "collectives",
        "locations",
    )

    def __init__(self, events: Iterable[Event]):
        evs: List[Event] = (
            events if isinstance(events, list) else list(events)
        )
        self.events = evs
        by_kind: Dict[str, List[Event]] = {}
        by_location: Dict[Location, List[Event]] = {}
        collectives: Dict[Tuple[int, int, str], List[CollExit]] = {}
        sends: Dict[int, Send] = {}
        recvs: Dict[int, Recv] = {}
        visits: List[RegionVisit] = []
        stacks: Dict[Location, list] = {}
        for event in evs:
            kind = event.kind
            by_kind.setdefault(kind, []).append(event)
            loc = event.loc
            by_location.setdefault(loc, []).append(event)
            if kind == "enter":
                stacks.setdefault(loc, []).append(
                    [event.region, event.time, event.path, 0.0]
                )
            elif kind == "exit":
                stack = stacks.get(loc)
                if not stack or stack[-1][0] != event.region:
                    continue
                region, enter, path, child_time = stack.pop()
                inclusive = event.time - enter
                if stack:
                    stack[-1][3] += inclusive
                visits.append(
                    RegionVisit(
                        loc=loc,
                        region=region,
                        path=path,
                        enter=enter,
                        exit=event.time,
                        depth=len(stack),
                        child_time=child_time,
                    )
                )
            elif kind == "send":
                if not event.internal:
                    sends[event.msg_id] = event
            elif kind == "recv":
                if not event.internal:
                    recvs[event.msg_id] = event
            elif kind == "coll":
                collectives.setdefault(
                    (event.comm_id, event.instance, event.op), []
                ).append(event)
        self.by_kind = by_kind
        self.by_location = by_location
        self.region_visits = visits
        self.p2p_pairs = [
            (sends[msg_id], recv)
            for msg_id, recv in recvs.items()
            if msg_id in sends
        ]
        self.collectives = collectives
        self.locations = sorted(by_location)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------

    def per_location_region_seconds(
        self,
    ) -> Dict[Location, Dict[CallPath, Dict[str, float]]]:
        """Exclusive seconds per location, call path and time bucket.

        ``location -> call path -> {"comm", "comp", "wait"} -> seconds``
        where the bucket of each completed region visit is decided by
        :func:`classify_region` and its *exclusive* time is charged, so
        nested regions partition busy time without double counting.
        Iteration order is the precomputed exit-order visit list, so the
        float accumulation (and therefore the result) is deterministic
        for a given trace.
        """
        out: Dict[Location, Dict[CallPath, Dict[str, float]]] = {}
        for visit in self.region_visits:
            bucket = classify_region(visit.region)
            per_path = out.setdefault(visit.loc, {})
            buckets = per_path.setdefault(
                visit.path, {"comm": 0.0, "comp": 0.0, "wait": 0.0}
            )
            buckets[bucket] += visit.exclusive
        return out

    def per_rank_region_seconds(
        self,
    ) -> Dict[int, Dict[CallPath, Dict[str, float]]]:
        """Exclusive seconds per rank, call path and time bucket.

        The per-location view aggregated over threads of the same rank:
        ``rank -> call path -> {"comm", "comp", "wait"} -> seconds``.
        This is the feature substrate of :mod:`repro.stats` -- the
        wall-time split the similarity detectors cluster over -- and it
        shares the one region replay with the
        :func:`repro.trace.stats.profile_trace` view.
        """
        out: Dict[int, Dict[CallPath, Dict[str, float]]] = {}
        for visit in self.region_visits:
            bucket = classify_region(visit.region)
            per_path = out.setdefault(visit.loc.rank, {})
            buckets = per_path.setdefault(
                visit.path, {"comm": 0.0, "comp": 0.0, "wait": 0.0}
            )
            buckets[bucket] += visit.exclusive
        return out

    # ------------------------------------------------------------------
    # Sequence protocol: an index is usable anywhere the raw event list
    # was (detectors iterate it, slices return plain lists).
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __getitem__(self, item):
        return self.events[item]

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __repr__(self) -> str:
        return (
            f"<TraceIndex {len(self.events)} events, "
            f"{len(self.locations)} locations, "
            f"{len(self.region_visits)} visits, "
            f"{len(self.p2p_pairs)} p2p pairs, "
            f"{len(self.collectives)} collectives>"
        )
