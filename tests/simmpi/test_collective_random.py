"""Property-based collective correctness against numpy references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_run
from repro.core import get_property
from repro.simmpi import (
    CollectiveTuning,
    MPI_INT,
    MPI_MAX,
    MPI_MIN,
    MPI_PROD,
    MPI_SUM,
    alloc_mpi_buf,
    run_mpi,
)

FAST = dict(model_init_overhead=False)
OPS = {
    "sum": (MPI_SUM, np.sum),
    "max": (MPI_MAX, np.max),
    "min": (MPI_MIN, np.min),
    "prod": (MPI_PROD, np.prod),
}


@given(
    size=st.integers(min_value=1, max_value=10),
    root=st.integers(min_value=0, max_value=9),
    values=st.lists(
        st.integers(min_value=-50, max_value=50), min_size=4, max_size=4
    ),
    algo=st.sampled_from(["binomial", "linear"]),
)
@settings(max_examples=25, deadline=None)
def test_bcast_random_configs(size, root, values, algo):
    root %= size

    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 4)
        if comm.rank() == root:
            buf.data[:] = values
        comm.bcast(buf, root=root)
        assert list(buf.data) == values

    run_mpi(main, size, collectives=CollectiveTuning(bcast=algo), **FAST)


@given(
    size=st.integers(min_value=1, max_value=9),
    root=st.integers(min_value=0, max_value=8),
    op_name=st.sampled_from(sorted(OPS)),
    contributions=st.lists(
        st.integers(min_value=-4, max_value=4), min_size=9, max_size=9
    ),
    algo=st.sampled_from(["binomial", "linear"]),
)
@settings(max_examples=25, deadline=None)
def test_reduce_random_configs(size, root, op_name, contributions, algo):
    root %= size
    op, ref = OPS[op_name]
    expected = int(ref(np.array(contributions[:size], dtype=np.int64)))

    def main(comm):
        me = comm.rank()
        sb = alloc_mpi_buf(MPI_INT, 1)
        sb.data[0] = contributions[me]
        rb = alloc_mpi_buf(MPI_INT, 1) if me == root else None
        comm.reduce(sb, rb, op, root=root)
        if me == root:
            assert rb.data[0] == expected

    run_mpi(
        main, size, collectives=CollectiveTuning(reduce=algo), **FAST
    )


@given(
    size=st.integers(min_value=1, max_value=8),
    chunk=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_allgather_random_configs(size, chunk):
    def main(comm):
        me, sz = comm.rank(), comm.size()
        sb = alloc_mpi_buf(MPI_INT, chunk)
        sb.data[:] = me * 10 + np.arange(chunk)
        rb = alloc_mpi_buf(MPI_INT, chunk * sz)
        comm.allgather(sb, rb)
        expected = [
            r * 10 + i for r in range(sz) for i in range(chunk)
        ]
        assert list(rb.data) == expected

    run_mpi(main, size, **FAST)


@given(
    size=st.integers(min_value=2, max_value=8),
    op_name=st.sampled_from(["sum", "max"]),
    contributions=st.lists(
        st.integers(min_value=0, max_value=9), min_size=8, max_size=8
    ),
)
@settings(max_examples=20, deadline=None)
def test_scan_exscan_consistency(size, op_name, contributions):
    """exscan(i) combined with own value equals scan(i)."""
    op, ref = OPS[op_name]
    observed = {}

    def main(comm):
        me = comm.rank()
        sb = alloc_mpi_buf(MPI_INT, 1)
        sb.data[0] = contributions[me]
        inc = alloc_mpi_buf(MPI_INT, 1)
        exc = alloc_mpi_buf(MPI_INT, 1)
        comm.scan(sb, inc, op)
        comm.exscan(sb, exc, op)
        observed[me] = (int(inc.data[0]), int(exc.data[0]))

    run_mpi(main, size, **FAST)
    for me in range(size):
        prefix = np.array(contributions[: me + 1], dtype=np.int64)
        assert observed[me][0] == int(ref(prefix))
        if me > 0:
            combined = op(
                np.array([observed[me][1]], dtype=np.int64),
                np.array([contributions[me]], dtype=np.int64),
            )
            assert int(combined[0]) == observed[me][0]


@pytest.mark.parametrize(
    "spec_name",
    ["imbalance_at_mpi_barrier", "late_broadcast", "early_reduce"],
)
def test_collective_properties_survive_linear_algorithms(spec_name):
    """Properties stay detectable under the naive collective
    implementations (the paper's portability requirement)."""
    from repro.simmpi import MpiWorld
    from repro.trace import TraceRecorder

    spec = get_property(spec_name)
    kwargs = spec.materialize()

    def main(comm):
        spec.func(**kwargs, comm=comm)

    result = run_mpi(
        main,
        8,
        collectives=CollectiveTuning(
            bcast="linear", reduce="linear", barrier="linear"
        ),
        **FAST,
    )
    detected = analyze_run(result).detected(0.01)
    for expected in spec.expected:
        assert expected in detected
