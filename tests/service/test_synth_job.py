"""The ``synth`` job kind: campaign execution as a service job."""

import pytest

from repro.archive import Archive
from repro.service import AnalysisService
from repro.service.jobs import JOB_KINDS
from repro.service.server import JobError


@pytest.fixture
def service(tmp_path):
    archive = Archive(tmp_path / "archive")
    return AnalysisService(archive, max_workers=1)


def _spec_dict(**over):
    spec = {
        "name": "svc-camp", "scenarios": 5, "sizes": [4],
        "threads": 2, "seed": 4,
    }
    spec.update(over)
    return spec


def test_synth_is_a_registered_job_kind():
    assert "synth" in JOB_KINDS


def test_synth_job_runs_campaign_and_scores(service):
    job, coalesced = service.submit("synth", {"spec": _spec_dict()})
    assert not coalesced
    assert job.wait(timeout=60)
    assert job.state == "done"
    result = job.result
    assert result["aborted"] is None
    assert result["campaign"]["format"] == "ats-synth-campaign"
    assert len(result["campaign"]["cells"]) == 5
    assert result["score"]["format"] == "ats-synth-score"
    progress = result["progress"]
    assert progress["total"] == 5
    assert progress["done"] == 5


def test_synth_job_archives_cells_with_manifests(service):
    job, _ = service.submit("synth", {"spec": _spec_dict()})
    assert job.wait(timeout=60)
    manifest = service.archive.store.load_manifest()
    archived = [
        p for p in manifest.values()
        if p["program"].startswith("svc-camp/")
    ]
    assert len(archived) == 5
    assert all(p.get("manifest") for p in archived)


def test_synth_rejects_missing_or_invalid_spec(service):
    with pytest.raises(JobError):
        service.submit("synth", {})
    with pytest.raises(JobError):
        service.submit("synth", {"spec": "not-a-dict"})
    with pytest.raises(JobError):
        service.submit("synth", {"spec": {"name": "late_sender"}})
    with pytest.raises(JobError):
        service.submit("synth", {"spec": {"name": "x", "bogus": 1}})
