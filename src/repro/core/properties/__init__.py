"""Performance property functions (paper section 3.1.5).

Functions that, when executed, exhibit one well-defined performance
property with parameterized severity -- the heart of the ATS framework.
"""

from .collective import (
    early_gather,
    early_gatherv,
    early_reduce,
    imbalance_at_mpi_allgather,
    imbalance_at_mpi_allreduce,
    imbalance_at_mpi_alltoall,
    imbalance_at_mpi_barrier,
    imbalance_at_mpi_reduce_scatter,
    late_broadcast,
    late_scatter,
    late_scatterv,
)
from .hybrid import (
    hybrid_alternating_paradigms,
    hybrid_imbalance_then_barrier,
    hybrid_late_sender_omp_work,
)
from .negative import (
    balanced_collectives,
    balanced_mpi_barrier,
    balanced_omp_barrier_loop,
    balanced_omp_loop,
    balanced_omp_region,
    balanced_sendrecv,
    balanced_shift_ring,
)
from .omp import (
    imbalance_at_omp_barrier,
    imbalance_in_omp_loop,
    imbalance_in_omp_pregion,
    imbalance_in_omp_sections,
    nested_omp_imbalance,
    omp_critical_contention,
)
from .sequential import (
    compute_bound_phases,
    imbalance_at_omp_reduce,
    imbalance_at_omp_single,
    io_bound_phases,
)
from .p2p import (
    late_receiver,
    late_sender,
    late_sender_bottleneck,
    messages_in_wrong_order,
)

__all__ = [
    "balanced_collectives",
    "compute_bound_phases",
    "balanced_mpi_barrier",
    "balanced_omp_barrier_loop",
    "balanced_omp_loop",
    "balanced_omp_region",
    "balanced_sendrecv",
    "balanced_shift_ring",
    "early_gather",
    "early_gatherv",
    "early_reduce",
    "hybrid_alternating_paradigms",
    "hybrid_imbalance_then_barrier",
    "hybrid_late_sender_omp_work",
    "io_bound_phases",
    "imbalance_at_mpi_allgather",
    "imbalance_at_mpi_allreduce",
    "imbalance_at_mpi_alltoall",
    "imbalance_at_mpi_barrier",
    "imbalance_at_mpi_reduce_scatter",
    "imbalance_at_omp_barrier",
    "imbalance_at_omp_reduce",
    "imbalance_at_omp_single",
    "imbalance_in_omp_loop",
    "imbalance_in_omp_pregion",
    "imbalance_in_omp_sections",
    "late_broadcast",
    "late_receiver",
    "late_scatter",
    "late_scatterv",
    "late_sender",
    "late_sender_bottleneck",
    "messages_in_wrong_order",
    "nested_omp_imbalance",
    "omp_critical_contention",
]
