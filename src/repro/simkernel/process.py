"""Simulated processes on pooled worker threads.

Each :class:`SimProcess` runs on an OS thread, but at most one thread in
a simulation ever runs at a time: a process runs until it performs a
blocking kernel call (``hold``, ``passivate``, a sync-primitive wait),
at which point control transfers to the next runnable process.  This
gives coroutine-like determinism while letting user code -- the ATS
property functions -- be written in the natural blocking style of the
paper's C API, with no ``yield``/``await`` noise.

Two mechanisms keep the handoff cheap:

* **Worker pooling.**  Threads come from a process-global
  :class:`WorkerPool`: a finished (or killed, or crashed) process's
  thread parks itself and is reused by the next process, across
  simulations.  Fork/join-heavy workloads -- an OpenMP team per
  parallel region per rank -- would otherwise spawn thousands of
  short-lived OS threads.
* **Direct chaining.**  When a process blocks, its own thread runs the
  scheduler's dispatch step and wakes the next process's worker
  directly (see :meth:`Simulator._chain_from`), so a dispatch costs one
  OS context switch, not a round trip through a scheduler thread -- and
  zero switches when a finished process's thread is immediately reused
  for the next dispatched one (the LIFO pool makes that the common
  fork/join case).  Handoffs use raw ``threading.Lock`` objects rather
  than ``threading.Semaphore``: transfers alternate strictly, so a
  binary lock suffices, and the C-level lock is an order of magnitude
  cheaper than the pure-Python semaphore on this hot path.
"""

from __future__ import annotations

import enum
import os
import threading
from typing import TYPE_CHECKING, Any, Callable, Optional

from .errors import NotInProcessError, ProcessKilled

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import Simulator


class ProcState(enum.Enum):
    """Lifecycle states of a simulated process."""

    CREATED = "created"       # spawned, no worker claimed yet
    SCHEDULED = "scheduled"   # in the event queue, will run at a known time
    RUNNING = "running"       # currently executing (exactly one at a time)
    PASSIVE = "passive"       # blocked, waiting for an activate()
    FINISHED = "finished"     # body returned normally
    FAILED = "failed"         # body raised an exception
    KILLED = "killed"         # torn down by the simulator


_tls = threading.local()


def current_process() -> "SimProcess":
    """Return the :class:`SimProcess` executing on the calling thread.

    Raises :class:`NotInProcessError` when called from outside a
    simulation (e.g. from the scheduler thread or plain user code).
    """
    proc = getattr(_tls, "process", None)
    if proc is None:
        raise NotInProcessError(
            "this operation is only valid inside a simulated process"
        )
    return proc


def maybe_current_process() -> Optional["SimProcess"]:
    """Like :func:`current_process` but returns ``None`` outside processes."""
    return getattr(_tls, "process", None)


class _Worker:
    """A pooled OS thread that runs process bodies one after another.

    ``_resume`` implements the handoff: whoever dispatches this
    worker's process releases it; the worker blocks on it between
    tasks and while its process is switched out.  ``_yielded`` is only
    used for the teardown handshake, where the killing thread must wait
    until the process has unwound off this thread.  Both start held.
    """

    __slots__ = ("pool", "task", "_resume", "_yielded", "_thread")

    def __init__(self, pool: "WorkerPool"):
        self.pool = pool
        self.task: Optional["SimProcess"] = None
        self._resume = threading.Lock()
        self._resume.acquire()
        self._yielded = threading.Lock()
        self._yielded.acquire()
        self._thread = threading.Thread(
            target=self._loop, name="sim-worker", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        resume = self._resume
        pool = self.pool
        while True:
            resume.acquire()
            proc = self.task
            if proc is None:  # shutdown sentinel
                return
            proc._run(self)
            self.task = None
            sim = proc.sim
            # Park *before* doing anything else: every other simulation
            # thread is blocked right now, so the pool cannot be raced,
            # and the next dispatch can reclaim this very thread (LIFO)
            # for a zero-switch continuation.
            kept = pool._park(self)
            if sim._tearing_down:
                # Killed during teardown: handshake with the killer.
                # Checked first -- whatever state the unwind left the
                # process in, the killer is blocked on this lock.
                self._yielded.release()
            elif proc.state is ProcState.FAILED:
                sim._report_failure(proc)
            else:
                sim._dispatch_onward()
            if not kept:
                return


class WorkerPool:
    """Parked worker threads shared by all simulators in this process.

    Pool operations need no lock: workers only park while every other
    simulation thread is blocked, and ``list.append``/``list.pop`` are
    atomic under the GIL for the (never observed in practice) case of
    concurrent simulators on separate OS threads.
    """

    def __init__(self, max_parked: int = 1024):
        self.max_parked = max_parked
        self._parked: list[_Worker] = []
        #: total workers ever created; a reuse diagnostic for tests
        #: and benchmarks (created << processes means the pool works).
        self.created = 0
        #: dispatches served by recycling a parked worker; together
        #: with ``created`` this is harvested into the metrics registry
        #: at collect time (no registry calls on this path).
        self.reused = 0

    def _obtain(self, proc: "SimProcess") -> _Worker:
        try:
            worker = self._parked.pop()
            self.reused += 1
        except IndexError:
            self.created += 1
            worker = _Worker(self)
        worker.task = proc
        return worker

    def _park(self, worker: _Worker) -> bool:
        if len(self._parked) < self.max_parked:
            self._parked.append(worker)
            return True
        return False

    @property
    def parked(self) -> int:
        """Number of currently parked (idle, reusable) workers."""
        return len(self._parked)

    def drain(self) -> None:
        """Shut down all parked workers (test isolation helper)."""
        while self._parked:
            worker = self._parked.pop()
            worker.task = None
            worker._resume.release()
            worker._thread.join()


#: the process-global pool; ``worker_pool()`` is the public accessor.
_pool = WorkerPool()


def _reset_pool_after_fork() -> None:
    """Discard inherited pool state in a forked child.

    Parked workers are OS threads, and threads do not survive ``fork``:
    the child inherits ``_Worker`` objects whose threads no longer
    exist, so releasing their ``_resume`` locks would wake nobody and
    the first dispatch would hang forever.  Reusing the counters would
    likewise double-count parent history in the child's metrics delta.
    """
    _pool._parked.clear()
    _pool.created = 0
    _pool.reused = 0


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX-only guard
    os.register_at_fork(after_in_child=_reset_pool_after_fork)


def worker_pool() -> WorkerPool:
    """The global worker pool (diagnostics / tests)."""
    return _pool


class SimProcess:
    """One simulated locus of execution (an MPI rank, an OpenMP thread...).

    Created via :meth:`repro.simkernel.Simulator.spawn`; not instantiated
    directly by user code.  Creating a process is cheap: a worker thread
    is claimed from the pool only at first dispatch.
    """

    __slots__ = (
        "sim", "name", "pid", "_fn", "_args", "_kwargs", "state",
        "result", "exception", "waiting_on", "context",
        "_kill_requested", "_worker", "_started",
    )

    def __init__(
        self,
        sim: "Simulator",
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        name: str,
        pid: int,
    ):
        self.sim = sim
        self.name = name
        self.pid = pid
        self._fn = fn
        self._args = args
        self._kwargs = kwargs
        self.state = ProcState.CREATED
        self.result: Any = None
        self.exception: BaseException | None = None
        #: what the process is blocked on; either a plain string or a
        #: lazy ``(format, *args)`` tuple -- see :meth:`waiting_reason`.
        #: Kept lazy so the hot path never builds f-strings.
        self.waiting_on: Any = ""
        #: arbitrary per-process storage used by higher layers (MPI rank,
        #: OpenMP team bindings, trace location, RNG stream ...).
        self.context: dict[str, Any] = {}
        self._kill_requested = False
        self._worker: Optional[_Worker] = None
        self._started = False

    # ------------------------------------------------------------------
    # worker-thread-side machinery
    # ------------------------------------------------------------------

    def _run(self, worker: _Worker) -> None:
        """Execute the body on ``worker``'s thread (first dispatch)."""
        _tls.process = self
        try:
            if self._kill_requested:
                self.state = ProcState.KILLED
                return
            try:
                self.result = self._fn(*self._args, **self._kwargs)
                self.state = ProcState.FINISHED
            except ProcessKilled:
                self.state = ProcState.KILLED
            except BaseException as exc:  # noqa: BLE001 - report any crash
                if self._kill_requested:
                    # Collateral of the forced unwind: a finally block
                    # tripped over the half-torn-down runtime.  The kill
                    # still succeeded; reporting this as a crash would
                    # desync the teardown handshake.
                    self.state = ProcState.KILLED
                else:
                    self.exception = exc
                    self.state = ProcState.FAILED
        finally:
            _tls.process = None
            self._worker = None

    def _switch_out(self) -> None:
        """Hand control to the next runnable process; return when resumed.

        Must only be called from the process's own worker thread.  All
        shared simulator state must be updated *before* calling, because
        the next process (possibly on another thread) runs as soon as
        the handoff happens.
        """
        if self._kill_requested:
            # Re-entry during the forced unwind (a finally block calling
            # back into the scheduler): do not dispatch anything.
            raise ProcessKilled()
        if not self.sim._chain_from(self):
            self._worker._resume.acquire()
        if self._kill_requested:
            raise ProcessKilled()

    # ------------------------------------------------------------------
    # dispatcher-side machinery
    # ------------------------------------------------------------------

    def _transfer_in(self) -> None:
        """Wake this process's worker (claiming one at first dispatch).

        Called by whichever thread performed the dispatch step -- the
        thread of a process that just blocked or finished, or the main
        thread starting a run.  The caller blocks (or parks) right
        after; it must not touch simulator state once this returns.
        """
        self.state = ProcState.RUNNING
        if not self._started:
            self._started = True
            self._worker = _pool._obtain(self)
        self._worker._resume.release()

    def _teardown(self) -> None:
        """Force the process off its worker thread (teardown path)."""
        if self.state in (
            ProcState.FINISHED,
            ProcState.FAILED,
            ProcState.KILLED,
        ):
            return
        self._kill_requested = True
        if not self._started:
            # Never dispatched; no worker to unwind.
            self.state = ProcState.KILLED
            return
        worker = self._worker
        if worker is None:  # pragma: no cover - defensive
            return
        worker._resume.release()
        worker._yielded.acquire()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def waiting_reason(self) -> str:
        """Human-readable form of :attr:`waiting_on` (lazily formatted)."""
        reason = self.waiting_on
        if type(reason) is tuple:
            return reason[0] % reason[1:]
        return reason

    @property
    def alive(self) -> bool:
        """True while the process has not finished, failed or been killed."""
        return self.state in (
            ProcState.CREATED,
            ProcState.SCHEDULED,
            ProcState.RUNNING,
            ProcState.PASSIVE,
        )

    def __repr__(self) -> str:
        return f"<SimProcess {self.name} pid={self.pid} {self.state.value}>"


# ----------------------------------------------------------------------
# host-side task fan-out on the pooled workers
# ----------------------------------------------------------------------

class _HostBatch:
    """Stands in for a ``Simulator`` from the worker loop's viewpoint.

    A finished host task's worker calls ``sim._dispatch_onward()`` (or
    ``sim._report_failure()`` for a crashed one); both just release the
    batch's completion semaphore.  ``_tearing_down`` is always False:
    host tasks are never force-killed.
    """

    __slots__ = ("_done",)

    _tearing_down = False

    def __init__(self) -> None:
        self._done = threading.Semaphore(0)

    def _dispatch_onward(self) -> None:
        self._done.release()

    def _report_failure(self, task: "_HostTask") -> None:
        self._done.release()


class _HostTask:
    """A plain callable dressed as a process for the worker loop.

    Unlike a :class:`SimProcess` it never touches virtual time, never
    blocks on kernel primitives and does not publish itself as the
    thread's current process -- it is ordinary host-side work (archive
    batch analysis, for instance) borrowing a pooled OS thread.
    """

    __slots__ = ("sim", "_fn", "result", "exception", "state")

    def __init__(self, batch: _HostBatch, fn: Callable[[], Any]):
        self.sim = batch
        self._fn = fn
        self.result: Any = None
        self.exception: BaseException | None = None
        self.state = ProcState.CREATED

    def _run(self, worker: _Worker) -> None:
        try:
            self.result = self._fn()
            self.state = ProcState.FINISHED
        except BaseException as exc:  # noqa: BLE001 - re-raised at join
            self.exception = exc
            self.state = ProcState.FAILED


class _CallbackBatch:
    """Batch stand-in for a single fire-and-forget host task.

    Instead of releasing a semaphore a joiner waits on, completion
    invokes a caller-supplied callback **on the worker thread** -- the
    hook :func:`submit_host_task` builds on to bridge pooled workers to
    event loops (the analysis service resolves asyncio futures from the
    callback via ``loop.call_soon_threadsafe``).
    """

    __slots__ = ("_task", "_on_done")

    _tearing_down = False

    def __init__(self, on_done: Callable[["_HostTask"], None]) -> None:
        self._task: Optional["_HostTask"] = None
        self._on_done = on_done

    def _dispatch_onward(self) -> None:
        self._on_done(self._task)

    def _report_failure(self, task: "_HostTask") -> None:
        self._on_done(task)


def submit_host_task(
    fn: Callable[[], Any],
    on_done: Callable[["_HostTask"], None],
) -> "_HostTask":
    """Run one host-side callable on a pooled worker, asynchronously.

    The returned task's ``result``/``exception``/``state`` fields are
    only meaningful once ``on_done(task)`` has fired; the callback runs
    on the worker thread immediately after the task body returns (or
    raises), after the worker has re-parked itself.  Callbacks must be
    quick and must not raise -- an exception would kill the pooled
    worker's loop.  Event-loop callers should do nothing but hand the
    task back to their loop (``loop.call_soon_threadsafe``).

    Like :func:`run_host_tasks` this must not be called from inside a
    simulated process, and the work runs under the GIL -- it overlaps
    blocking I/O, not pure-Python compute.
    """
    if maybe_current_process() is not None:
        raise NotInProcessError(
            "submit_host_task cannot be used from inside a simulation"
        )
    batch = _CallbackBatch(on_done)
    task = _HostTask(batch, fn)
    batch._task = task
    task.state = ProcState.RUNNING
    worker = _pool._obtain(task)
    worker._resume.release()
    return task


def run_host_tasks(
    fns,
    max_workers: int = 8,
) -> list:
    """Run host-side callables on pooled worker threads; ordered results.

    Fans the zero-argument callables out over the process-global
    :class:`WorkerPool` (reusing parked simulation workers, creating
    more only as needed), keeps at most ``max_workers`` in flight, and
    returns their results **in submission order** -- so a batch over a
    sorted work list is deterministic regardless of completion order.
    The first task exception (again in submission order) is re-raised
    after the whole batch has drained.

    This is plain threading under the GIL: it overlaps the I/O and
    zlib portions of blob-heavy work (both release the GIL), not pure
    Python compute.  Must not be called from inside a simulated
    process.
    """
    fns = list(fns)
    if not fns:
        return []
    if max_workers < 1:
        raise ValueError("max_workers must be >= 1")
    if maybe_current_process() is not None:
        raise NotInProcessError(
            "run_host_tasks cannot be used from inside a simulation"
        )
    batch = _HostBatch()
    tasks = [_HostTask(batch, fn) for fn in fns]
    in_flight = 0
    for task in tasks:
        if in_flight >= max_workers:
            batch._done.acquire()
            in_flight -= 1
        task.state = ProcState.RUNNING
        worker = _pool._obtain(task)
        worker._resume.release()
        in_flight += 1
    for _ in range(in_flight):
        batch._done.acquire()
    for task in tasks:
        if task.exception is not None:
            raise task.exception
    return [task.result for task in tasks]
