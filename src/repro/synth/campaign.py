"""Campaign execution on the supervised sweep engine.

Each scenario cell runs the same pipeline as the robustness harness: a
seed-deterministic simulated run under the scaled noise plan, an
optional trace-fault round trip through the salvaging reader, analysis,
and a verdict against the scenario's ground-truth manifest.  Cells run
serially, under a :class:`repro.resilience.Supervisor` (wall-clock
timeout / retry / quarantine / checkpoint resume), or fanned out over
forked workers -- results are assembled in scenario order, so the
campaign JSON is byte-identical across all three modes.

The adversarial strategy loops here: after the base sample, each
refinement round ranks cells by disagreement (missing + spurious
findings vs. the manifest), perturbs the worst offenders
(:func:`.generate.mutate_scenario`), and executes the mutants.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..analysis import AnalysisConfig, analyze_events, analyze_run
from ..faults import FaultInjector
from ..trace.io import read_trace, write_trace
from .generate import adversarial_rng, generate_scenarios, mutate_scenario
from .scenario import GroundTruthManifest, Scenario
from .spec import CampaignSpec


class CampaignError(RuntimeError):
    """Campaign aborted (max_failures exceeded); carries the partial result."""

    def __init__(self, message: str, result: "CampaignResult"):
        super().__init__(message)
        self.result = result


@dataclass(frozen=True)
class ScenarioCell:
    """One executed scenario graded against its manifest."""

    scenario: Scenario
    manifest: GroundTruthManifest
    detected: Tuple[str, ...]
    missing: Tuple[str, ...]
    spurious: Tuple[str, ...]
    events: int
    #: archive run id when the campaign archives, else None
    run_id: Optional[str] = None
    error: Optional[str] = None
    salvaged: bool = False

    @property
    def disagreement(self) -> int:
        return len(self.missing) + len(self.spurious)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario.to_dict(),
            "manifest": self.manifest.to_dict(),
            "detected": list(self.detected),
            "missing": list(self.missing),
            "spurious": list(self.spurious),
            "events": self.events,
            "run_id": self.run_id,
            "error": self.error,
            "salvaged": self.salvaged,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ScenarioCell":
        return cls(
            scenario=Scenario.from_dict(d["scenario"]),
            manifest=GroundTruthManifest.from_dict(d["manifest"]),
            detected=tuple(d["detected"]),
            missing=tuple(d["missing"]),
            spurious=tuple(d["spurious"]),
            events=d["events"],
            run_id=d.get("run_id"),
            error=d.get("error"),
            salvaged=d.get("salvaged", False),
        )


def _build_cell(
    scenario: Scenario,
    detected: Sequence[str] = (),
    events: int = 0,
    run_id: Optional[str] = None,
    error: Optional[str] = None,
    salvaged: bool = False,
    families: Tuple[str, ...] = ("rule",),
) -> ScenarioCell:
    manifest = scenario.manifest()
    detected = tuple(detected)
    expected = set(manifest.expected)
    allowed = set(manifest.allowed)
    if "similarity" in families:
        # Manifests name analyzer properties only; the statistical
        # family is graded through the class taxonomy.  Obliged
        # statistical ids become expected; on pathological scenarios
        # the rest are tolerated (a statistical anomaly flag on a
        # scenario that injects a pathology is correct at the family's
        # granularity), while clean scenarios tolerate none, so false
        # alarms stay visible in ``spurious``.
        from ..stats import (
            SIMILARITY_PROPERTY_IDS,
            statistical_expectations,
        )

        obliged = set(statistical_expectations(expected))
        if expected:
            allowed |= set(SIMILARITY_PROPERTY_IDS) - obliged
        expected |= obliged
    return ScenarioCell(
        scenario=scenario,
        manifest=manifest,
        detected=detected,
        missing=tuple(
            p for p in sorted(expected) if p not in detected
        ),
        spurious=tuple(
            p
            for p in detected
            if p not in expected and p not in allowed
        ),
        events=events,
        run_id=run_id,
        error=error,
        salvaged=salvaged,
    )


def cell_key(scenario: Scenario) -> str:
    """Stable checkpoint key of one campaign cell."""
    return (
        f"{scenario.name}|m{scenario.noise_magnitude:g}|s{scenario.seed}"
    )


def _run_scenario_checked(
    scenario: Scenario,
    spec: CampaignSpec,
    threshold: float,
    workdir: Path,
    time_budget: Optional[float] = None,
    archive=None,
    families: Tuple[str, ...] = ("rule",),
) -> ScenarioCell:
    """One cell, raising on failure (the supervisor's entry point).

    Mirrors the robustness pipeline; additionally the archived record
    carries the scenario's ground-truth manifest, so ``ats diff`` and
    the scorer can grade detectors against synthesized truth straight
    from the archive.
    """
    from ..stats import battery_for

    detectors = battery_for(families)
    pspec = scenario.build_spec()
    manifest = scenario.manifest()
    manifest.validate()
    scaled = spec.noise.plan.scaled(scenario.noise_magnitude)
    injector = FaultInjector.coerce(scaled, seed=scenario.seed)

    def _archive(events, final_time, transport) -> Optional[str]:
        if archive is None:
            return None
        record = archive.record(
            program=scenario.name,
            events=events,
            final_time=final_time,
            paradigm=pspec.paradigm,
            params={},
            size=scenario.size,
            threads=scenario.threads,
            seed=scenario.seed,
            plan=dict(
                scaled.to_dict(), magnitude=scenario.noise_magnitude
            ),
            eager_threshold=(
                transport.eager_threshold
                if transport is not None
                else None
            ),
            manifest=manifest.to_dict(),
        )
        return record.run_id

    run = pspec.run(
        size=scenario.size,
        num_threads=scenario.threads,
        seed=scenario.seed,
        faults=injector,
        time_budget=time_budget,
    )
    transport = getattr(run, "transport", None)
    if injector is None or not injector.has_trace_faults:
        run_id = _archive(run.events, run.final_time, transport)
        analysis = analyze_run(run, detectors=detectors)
        return _build_cell(
            scenario,
            detected=analysis.detected(threshold),
            events=len(run.events),
            run_id=run_id,
            families=families,
        )
    # Trace faults: round-trip through the fault-injecting writer and
    # the salvaging reader -- the analyzer sees what landed on disk.
    path = workdir / (
        f"synth-{scenario.index:05d}-s{scenario.seed}.trace.jsonl"
    )
    write_trace(
        path,
        run.events,
        metadata={"program": scenario.name, "seed": scenario.seed},
        faults=injector,
    )
    events, metadata = read_trace(path, skip_bad_lines=True, salvage=True)
    run_id = _archive(events, run.final_time, transport)
    config = (
        AnalysisConfig(eager_threshold=transport.eager_threshold)
        if transport is not None
        else None
    )
    analysis = analyze_events(
        events,
        total_time=run.final_time,
        config=config,
        detectors=detectors,
    )
    return _build_cell(
        scenario,
        detected=analysis.detected(threshold),
        events=len(events),
        run_id=run_id,
        salvaged=bool(metadata.get("truncated")),
        families=families,
    )


def _run_scenario(
    scenario: Scenario,
    spec: CampaignSpec,
    threshold: float,
    workdir: Path,
    time_budget: Optional[float] = None,
    archive=None,
    families: Tuple[str, ...] = ("rule",),
) -> ScenarioCell:
    """One cell with failures folded into the cell (direct mode)."""
    try:
        return _run_scenario_checked(
            scenario,
            spec,
            threshold,
            workdir,
            time_budget,
            archive,
            families,
        )
    except Exception as exc:
        return _build_cell(
            scenario,
            error=f"{type(exc).__name__}: {exc}",
            families=families,
        )


def _forked_cell(
    runner,
    scenario: Scenario,
    spec: CampaignSpec,
    threshold: float,
    workdir: Path,
    time_budget: Optional[float],
    archive,
    families: Tuple[str, ...],
) -> dict:
    """Child-side cell body (deferred archive manifests, dict result)."""
    if archive is not None:
        archive.store.begin_deferred()
    return runner(
        scenario, spec, threshold, workdir, time_budget, archive, families
    ).to_dict()


@dataclass
class CampaignResult:
    """All executed cells of one campaign."""

    spec: CampaignSpec
    cells: List[ScenarioCell] = field(default_factory=list)
    #: detector families the campaign ran (provenance)
    families: Tuple[str, ...] = ("rule",)

    @property
    def errors(self) -> List[ScenarioCell]:
        return [c for c in self.cells if c.error is not None]

    def disagreements(self) -> List[ScenarioCell]:
        return [
            c
            for c in self.cells
            if c.error is None and c.disagreement > 0
        ]

    def to_json_dict(self) -> dict:
        return {
            "format": "ats-synth-campaign",
            "version": 1,
            "spec": self.spec.to_dict(),
            "families": list(self.families),
            "scenarios": len(self.cells),
            "cells": [c.to_dict() for c in self.cells],
        }

    def to_json_str(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2) + "\n"

    def format_summary(self) -> str:
        perfect = sum(
            1
            for c in self.cells
            if c.error is None and c.disagreement == 0
        )
        lines = [
            f"campaign {self.spec.name}: {len(self.cells)} scenario(s), "
            f"strategy={self.spec.strategy}, seed={self.spec.seed}",
            f"  agree with manifest: {perfect}",
            f"  disagreements:       {len(self.disagreements())}",
            f"  errors:              {len(self.errors)}",
        ]
        return "\n".join(lines) + "\n"


def _execute_batch(
    scenarios: Sequence[Scenario],
    spec: CampaignSpec,
    threshold: float,
    workdir: Path,
    time_budget: Optional[float],
    supervisor,
    archive,
    workers: int,
    families: Tuple[str, ...] = ("rule",),
) -> List[ScenarioCell]:
    """Run one batch of scenarios in scenario order."""
    if workers > 1:
        from ..resilience.forked import run_cells_forked

        runner = (
            _run_scenario_checked
            if supervisor is not None
            else _run_scenario
        )
        cells = [
            (
                cell_key(sc),
                lambda sc=sc: _forked_cell(
                    runner,
                    sc,
                    spec,
                    threshold,
                    workdir,
                    time_budget,
                    archive,
                    families,
                ),
            )
            for sc in scenarios
        ]
        extras_fn = None
        on_extras = None
        if archive is not None:
            extras_fn = archive.store.drain_deferred

            def on_extras(key, records):
                for run_id, payload in records:
                    archive.store.record_run(run_id, payload)

        outcomes = run_cells_forked(
            cells,
            workers=workers,
            supervisor=supervisor,
            extras_fn=extras_fn,
            on_extras=on_extras,
        )
        out = []
        for scenario, outcome in zip(scenarios, outcomes):
            if outcome.ok:
                value = outcome.value
                if not isinstance(value, ScenarioCell):
                    value = ScenarioCell.from_dict(value)
                out.append(value)
            else:
                out.append(
                    _build_cell(
                        scenario,
                        error=outcome.failure.error,
                        families=families,
                    )
                )
        return out
    out = []
    for scenario in scenarios:
        if supervisor is None:
            out.append(
                _run_scenario(
                    scenario,
                    spec,
                    threshold,
                    workdir,
                    time_budget,
                    archive,
                    families,
                )
            )
            continue
        outcome = supervisor.run_cell(
            cell_key(scenario),
            lambda sc=scenario: _run_scenario_checked(
                sc,
                spec,
                threshold,
                workdir,
                time_budget,
                archive,
                families,
            ),
            encode=lambda c: c.to_dict(),
            decode=ScenarioCell.from_dict,
        )
        if outcome.ok:
            out.append(outcome.value)
        else:
            out.append(
                _build_cell(
                    scenario,
                    error=outcome.failure.error,
                    families=families,
                )
            )
    return out


def run_campaign(
    spec: CampaignSpec,
    threshold: float = 0.01,
    time_budget: Optional[float] = None,
    supervisor=None,
    archive=None,
    workers: int = 1,
    families: Sequence[str] = ("rule",),
) -> CampaignResult:
    """Execute one synthesis campaign (see module docstring).

    ``supervisor`` runs every cell supervised (build it with
    ``retries=spec.max_retries`` to honor the spec); ``archive``
    records every analyzed trace with its ground-truth manifest
    attached; ``workers > 1`` forks the batch over child processes.
    The result (and its JSON) is byte-identical across all execution
    modes and across checkpoint resume.

    ``spec.max_failures >= 0`` aborts the campaign with a
    :class:`CampaignError` (carrying the partial result) once more
    than that many cells have errored.

    ``families`` selects the detector families to run (see
    :func:`repro.stats.battery_for`); with ``"similarity"`` enabled,
    cells are graded through the class taxonomy and the scorer reports
    rule-based vs. statistical recall side by side.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    families = tuple(families)
    from ..stats import battery_for

    battery_for(families)  # validates family names
    if archive is not None:
        from ..archive import coerce_archive

        archive = coerce_archive(archive)
    result = CampaignResult(spec=spec, families=families)

    def check_failures() -> None:
        if spec.max_failures < 0:
            return
        failed = len(result.errors)
        if failed > spec.max_failures:
            raise CampaignError(
                f"campaign {spec.name}: aborted after {failed} failed "
                f"cell(s) (max_failures={spec.max_failures})",
                result,
            )

    scenarios = generate_scenarios(spec)
    next_index = len(scenarios)
    with tempfile.TemporaryDirectory(prefix="ats-synth-") as tmp:
        workdir = Path(tmp)

        def run_batch(batch: Sequence[Scenario]) -> None:
            result.cells.extend(
                _execute_batch(
                    batch,
                    spec,
                    threshold,
                    workdir,
                    time_budget,
                    supervisor,
                    archive,
                    workers,
                    families,
                )
            )
            check_failures()

        run_batch(scenarios)
        if spec.strategy == "adversarial":
            for round_index in range(spec.adversarial_rounds):
                worst = sorted(
                    result.disagreements(),
                    key=lambda c: (-c.disagreement, c.scenario.index),
                )[: spec.adversarial_top]
                if not worst:
                    break
                rng = adversarial_rng(spec, round_index)
                mutants = [
                    mutate_scenario(
                        spec, cell.scenario, next_index + j, rng
                    )
                    for j, cell in enumerate(worst)
                ]
                next_index += len(mutants)
                run_batch(mutants)
    return result
