"""The automatic analyzer entry points.

``analyze_run`` (for in-process run results) and ``analyze_events``
(for traces loaded from disk) run the detector battery over the event
stream and assemble the EXPERT-style result cube.

The pipeline is observable: when :mod:`repro.obs` is enabled, index
construction and every detector are bracketed by host spans and
accounted in the metrics registry (wall seconds per detector, findings
per property), so ``ats metrics`` / the Chrome export show where
analysis time goes.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Sequence, Union

from ..obs.instruments import analysis_metrics
from ..obs.spans import span
from ..simmpi.runtime import RunResult
from ..simomp.runtime import OmpRunResult
from ..trace.events import Event
from .detectors import DEFAULT_DETECTORS, AnalysisConfig
from .index import TraceIndex
from .model import AnalysisResult, Finding

#: bumped whenever analyzer semantics change in a way that invalidates
#: previously computed results; part of every archive cache key and
#: recorded in run manifests (see :mod:`repro.archive`).
ANALYZER_VERSION = "1"


def _is_time_sorted(events: Sequence[Event]) -> bool:
    prev = float("-inf")
    for event in events:
        t = event.time
        if t < prev:
            return False
        prev = t
    return True


def analyze_events(
    events: Sequence[Event],
    total_time: Optional[float] = None,
    config: Optional[AnalysisConfig] = None,
    detectors: Optional[Sequence] = None,
    comm_registry: Optional[dict] = None,
) -> AnalysisResult:
    """Analyze a raw event stream.

    ``total_time`` defaults to the last event timestamp;
    ``detectors`` defaults to the full battery.  The stream is indexed
    once (see :class:`TraceIndex`) and the index shared by every
    detector; passing an existing index avoids even that scan.
    """
    config = config or AnalysisConfig()
    detectors = DEFAULT_DETECTORS if detectors is None else detectors
    metrics = analysis_metrics()
    if metrics is not None:
        metrics.runs.inc()
    if isinstance(events, TraceIndex):
        index = events
    else:
        events = list(events)
        if not _is_time_sorted(events):
            # As-recorded traces are already time-ordered; only
            # hand-assembled streams pay for a sort (stable, so
            # same-time events keep their given order as before).
            events.sort(key=lambda e: e.time)
        with span("analysis:index", cat="analysis", events=len(events)):
            t0 = perf_counter() if metrics is not None else 0.0
            index = TraceIndex(events)
            if metrics is not None:
                metrics.index_build_seconds.inc(perf_counter() - t0)
    findings: list[Finding] = []
    for detector in detectors:
        name = type(detector).__name__
        with span(f"analysis:{name}", cat="analysis"):
            if metrics is None:
                findings.extend(detector.detect(index, config))
            else:
                t0 = perf_counter()
                found = list(detector.detect(index, config))
                metrics.detector_seconds.labels(detector=name).inc(
                    perf_counter() - t0
                )
                for finding in found:
                    metrics.findings.labels(property=finding.property).inc()
                findings.extend(found)
    if total_time is None:
        total_time = index.events[-1].time if index.events else 0.0
    return AnalysisResult(
        findings=findings,
        total_time=total_time,
        locations=list(index.locations),
        comm_registry=dict(comm_registry or {}),
    )


def analyze_run(
    result: Union[RunResult, OmpRunResult],
    config: Optional[AnalysisConfig] = None,
    detectors: Optional[Sequence] = None,
) -> AnalysisResult:
    """Analyze a finished simulated run.

    The analyzer configuration inherits the run's transport parameters
    (eager threshold) when available, like a real tool configured for
    the system under test.
    """
    if result.recorder is None:
        raise ValueError("cannot analyze an untraced run (trace=False)")
    if config is None:
        transport = getattr(result, "transport", None)
        config = (
            AnalysisConfig(eager_threshold=transport.eager_threshold)
            if transport is not None
            else AnalysisConfig()
        )
    return analyze_events(
        result.recorder.events,
        total_time=result.final_time,
        config=config,
        detectors=detectors,
        comm_registry=result.recorder.comm_registry,
    )
