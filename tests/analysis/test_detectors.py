"""Detector unit tests on hand-built and synthesized traces."""

import pytest

from repro.analysis import AnalysisConfig, analyze_events, analyze_run
from repro.analysis.detectors import (
    LateReceiverDetector,
    LateSenderDetector,
    WaitAtBarrierDetector,
    iter_region_visits,
    matched_p2p_pairs,
)
from repro.simmpi import MPI_INT, TransportParams, alloc_mpi_buf, run_mpi
from repro.trace import Location, TraceRecorder
from repro.work import do_work

L0, L1 = Location(0, 0), Location(1, 0)
CFG = AnalysisConfig(eager_threshold=1000, noise_floor=1e-6)


def hand_trace_late_sender(wait=0.5):
    """recv posted at 1.0; send starts at 1.0+wait."""
    rec = TraceRecorder()
    rec.enter(0.0, L0, "main")
    rec.enter(0.0, L1, "main")
    msg = rec.new_msg_id()
    rec.send(1.0 + wait, L0, peer=1, tag=0, comm_id=0, nbytes=8,
             msg_id=msg)
    rec.recv(1.0 + wait + 0.01, L1, peer=0, tag=0, comm_id=0, nbytes=8,
             msg_id=msg, post_time=1.0)
    rec.exit(2.0, L0, "main")
    rec.exit(2.0, L1, "main")
    return rec.events


def test_late_sender_detector_computes_wait():
    findings = list(
        LateSenderDetector().detect(hand_trace_late_sender(0.5), CFG)
    )
    assert len(findings) == 1
    assert findings[0].wait_time == pytest.approx(0.5)
    assert findings[0].loc == L1
    assert findings[0].property == "late_sender"


def test_late_sender_detector_ignores_prompt_sends():
    findings = list(
        LateSenderDetector().detect(hand_trace_late_sender(0.0), CFG)
    )
    assert findings == []


def test_late_sender_ignores_internal_messages():
    rec = TraceRecorder()
    msg = rec.new_msg_id()
    rec.send(2.0, L0, peer=1, tag=0, comm_id=0, nbytes=8, msg_id=msg,
             internal=True)
    rec.recv(2.1, L1, peer=0, tag=0, comm_id=0, nbytes=8, msg_id=msg,
             post_time=0.0, internal=True)
    assert list(LateSenderDetector().detect(rec.events, CFG)) == []


def test_late_receiver_requires_rendezvous_size():
    rec = TraceRecorder()
    for nbytes, expect in ((100, 0), (5000, 1)):
        msg = rec.new_msg_id()
        rec.send(1.0, L0, peer=1, tag=0, comm_id=0, nbytes=nbytes,
                 msg_id=msg)
        rec.recv(2.5, L1, peer=0, tag=0, comm_id=0, nbytes=nbytes,
                 msg_id=msg, post_time=2.0)
    findings = list(LateReceiverDetector().detect(rec.events, CFG))
    assert len(findings) == 1
    assert findings[0].wait_time == pytest.approx(1.0)
    assert findings[0].loc == L0  # charged to the sender


def test_wait_at_barrier_detector_groups_instances():
    rec = TraceRecorder()
    # one barrier: ranks enter at 1.0 and 3.0
    for loc, enter in ((L0, 1.0), (L1, 3.0)):
        rec.coll_exit(3.1, loc, op="MPI_Barrier", comm_id=0, instance=0,
                      root=-1, enter_time=enter)
    findings = list(WaitAtBarrierDetector().detect(rec.events, CFG))
    assert len(findings) == 1
    assert findings[0].loc == L0
    assert findings[0].wait_time == pytest.approx(2.0)


def test_noise_floor_suppresses_microscopic_waits():
    cfg = AnalysisConfig(noise_floor=1.0)
    findings = list(
        LateSenderDetector().detect(hand_trace_late_sender(0.5), cfg)
    )
    assert findings == []


def test_matched_p2p_pairs_skips_unmatched():
    rec = TraceRecorder()
    rec.send(0.0, L0, peer=1, tag=0, comm_id=0, nbytes=8,
             msg_id=rec.new_msg_id())
    assert list(matched_p2p_pairs(rec.events)) == []


def test_iter_region_visits_computes_child_time():
    rec = TraceRecorder()
    rec.enter(0.0, L0, "outer")
    rec.enter(1.0, L0, "inner")
    rec.exit(3.0, L0, "inner")
    rec.exit(5.0, L0, "outer")
    visits = {v.region: v for v in iter_region_visits(rec.events)}
    assert visits["inner"].inclusive == pytest.approx(2.0)
    assert visits["outer"].inclusive == pytest.approx(5.0)
    assert visits["outer"].child_time == pytest.approx(2.0)
    assert visits["outer"].exclusive == pytest.approx(3.0)


def test_iter_region_visits_tolerates_unclosed():
    rec = TraceRecorder()
    rec.enter(0.0, L0, "open")
    assert list(iter_region_visits(rec.events)) == []


# ----------------------------------------------------------------------
# analyzer plumbing
# ----------------------------------------------------------------------

def test_analyze_events_defaults_total_time_to_last_event():
    events = hand_trace_late_sender(0.5)
    result = analyze_events(events)
    assert result.total_time == pytest.approx(2.0)
    assert result.locations == [L0, L1]


def test_analyze_run_requires_trace():
    result = run_mpi(lambda comm: None, 2, trace=False,
                     model_init_overhead=False)
    with pytest.raises(ValueError, match="untraced"):
        analyze_run(result)


def test_analyze_run_inherits_eager_threshold():
    """Analyzer must adopt the run's protocol switch point."""
    transport = TransportParams(eager_threshold=100)

    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 64)  # 256 B: rendezvous here
        if comm.rank() == 0:
            comm.send(buf, 1)
        else:
            do_work(0.05)
            comm.recv(buf, 0)

    result = run_mpi(main, 2, transport=transport,
                     model_init_overhead=False)
    analysis = analyze_run(result)
    assert "late_receiver" in analysis.detected(0.01)


def test_custom_detector_battery():
    events = hand_trace_late_sender(0.5)
    result = analyze_events(events, detectors=[WaitAtBarrierDetector()])
    assert result.findings == []


def test_analysis_from_persisted_trace(tmp_path):
    """Offline workflow: run -> write trace -> read -> analyze."""
    from repro.core import get_property
    from repro.trace import read_trace, write_trace

    run = get_property("late_sender").run(size=4)
    path = tmp_path / "t.jsonl"
    write_trace(path, run.events)
    events, _ = read_trace(path)
    offline = analyze_events(events, total_time=run.final_time)
    online = analyze_run(run)
    assert offline.severities_by_property() == pytest.approx(
        online.severities_by_property()
    )
