"""OpenMP performance property functions.

The paper's prototype list (imbalance in parallel region / at explicit
barrier / in worksharing loop) plus extensions: critical-section
contention and uneven sections, per the ASL catalog the paper plans to
cover.

The OpenMP property functions take an optional ``num_threads`` so they
work standalone (:func:`repro.simomp.run_omp`), inside MPI ranks
(hybrid composites, paper section 3.3) or nested.
"""

from __future__ import annotations

from typing import Optional

from ...distributions import DistrDescriptor
from ...distributions.functions import DistrFunc
from ...simomp import (
    omp_barrier,
    omp_critical,
    omp_for,
    omp_get_num_threads,
    omp_parallel,
    omp_sections,
)
from ...trace.api import region
from ...work import do_work, par_do_omp_work


def imbalance_in_omp_pregion(
    df: DistrFunc,
    dd: DistrDescriptor,
    r: int,
    num_threads: Optional[int] = None,
) -> None:
    """*Imbalance in parallel region*: uneven work, implicit join barrier.

    Each repetition opens a fresh parallel region whose threads do
    distribution-determined work; the wait materializes at the region's
    implicit end barrier.
    """

    def body() -> None:
        par_do_omp_work(df, dd, 1.0)

    with region("imbalance_in_omp_pregion"):
        for _ in range(r):
            omp_parallel(body, num_threads=num_threads)


def imbalance_at_omp_barrier(
    df: DistrFunc,
    dd: DistrDescriptor,
    r: int,
    num_threads: Optional[int] = None,
) -> None:
    """*Imbalance at barrier*: the paper's worked example (section 3.1.5).

    One parallel region; inside, every thread repeats work followed by
    an explicit barrier -- the direct translation of::

        #pragma omp parallel private(i)
        { for (i=0; i<r; ++i) { par_do_omp_work(df, dd, 1.0);
                                #pragma omp barrier } }
    """

    def body() -> None:
        for _ in range(r):
            par_do_omp_work(df, dd, 1.0)
            omp_barrier()

    with region("imbalance_at_omp_barrier"):
        omp_parallel(body, num_threads=num_threads)


def imbalance_in_omp_loop(
    df: DistrFunc,
    dd: DistrDescriptor,
    r: int,
    num_threads: Optional[int] = None,
    iterations_per_thread: int = 1,
) -> None:
    """*Imbalance in worksharing loop*: statically scheduled uneven loop.

    The loop has ``team size * iterations_per_thread`` iterations;
    iteration cost follows the distribution over the owning thread, so
    the static schedule produces exactly the requested per-thread
    imbalance, observed at the loop's implicit barrier.
    """

    def body() -> None:
        sz = omp_get_num_threads()
        n = sz * iterations_per_thread

        def iteration(i: int) -> None:
            owner = i // iterations_per_thread
            do_work(df(owner, sz, 1.0 / iterations_per_thread, dd))

        for _ in range(r):
            omp_for(n, iteration, schedule="static", chunk=None)

    with region("imbalance_in_omp_loop"):
        omp_parallel(body, num_threads=num_threads)


def imbalance_in_omp_sections(
    df: DistrFunc,
    dd: DistrDescriptor,
    nsections: int,
    r: int,
    num_threads: Optional[int] = None,
) -> None:
    """*Imbalance in sections*: section costs follow the distribution."""

    def body() -> None:
        bodies = [
            (lambda i=i: do_work(df(i, nsections, 1.0, dd)))
            for i in range(nsections)
        ]
        for _ in range(r):
            omp_sections(bodies)

    with region("imbalance_in_omp_sections"):
        omp_parallel(body, num_threads=num_threads)


def nested_omp_imbalance(
    df: DistrFunc,
    dd: DistrDescriptor,
    r: int,
    num_threads: Optional[int] = None,
    outer_threads: int = 2,
) -> None:
    """Nested parallelism: inner teams with uneven work.

    Paper section 3.3: composite tests could "involve nested OpenMP
    parallelism resulting in several OpenMP thread groups, each
    executing different or the same sets of performance property
    functions in parallel."  Each outer thread forks an inner team
    whose threads do distribution-determined work; the imbalance shows
    at every inner region's join.
    """

    def inner() -> None:
        par_do_omp_work(df, dd, 1.0)

    def outer() -> None:
        for _ in range(r):
            omp_parallel(inner, num_threads=num_threads)

    with region("nested_omp_imbalance"):
        omp_parallel(outer, num_threads=outer_threads)


def omp_critical_contention(
    inside_work: float,
    outside_work: float,
    r: int,
    num_threads: Optional[int] = None,
) -> None:
    """*Critical-section contention*: serialized work inside critical.

    Threads alternate parallel work outside and serialized work inside
    a named critical section; with ``inside_work`` comparable to
    ``outside_work`` the lock queue grows every round.
    """

    def body() -> None:
        for _ in range(r):
            do_work(outside_work)
            with omp_critical("ats_contended"):
                do_work(inside_work)

    with region("omp_critical_contention"):
        omp_parallel(body, num_threads=num_threads)
