"""The incremental analysis cache: hits, misses, invalidation."""

import pytest

from repro.analysis import (
    AnalysisConfig,
    DEFAULT_DETECTORS,
    analyze_events,
)
from repro.archive import (
    Archive,
    CacheStats,
    detector_fingerprint,
    result_to_json_bytes,
)
from repro.core import get_property
from repro.trace.io import events_from_jsonl


@pytest.fixture(scope="module")
def spec():
    return get_property("late_sender")


def _fresh_reference(archive, run):
    events, _ = events_from_jsonl(
        archive.store.get_blob(run.trace_digest).decode("utf-8")
    )
    return analyze_events(
        events,
        total_time=run.final_time,
        config=AnalysisConfig(eager_threshold=run.eager_threshold),
    )


def test_cold_then_warm(tmp_path, spec):
    archive = Archive(tmp_path)
    run = archive.archive_run(spec, size=4, seed=3)

    cold = CacheStats()
    r1 = archive.analyze(run, stats=cold)
    # one lookup per detector plus the meta cell, all missing
    assert cold.misses == len(DEFAULT_DETECTORS) + 1
    assert cold.hits == 0

    warm = CacheStats()
    r2 = archive.analyze(run, stats=warm)
    assert warm.hits == len(DEFAULT_DETECTORS) + 1
    assert warm.misses == 0

    assert result_to_json_bytes(r1) == result_to_json_bytes(r2)


def test_cached_result_byte_identical_to_fresh(tmp_path, spec):
    archive = Archive(tmp_path)
    run = archive.archive_run(spec, size=4, seed=3)
    archive.analyze(run)  # populate
    cached = archive.analyze(run)
    fresh = _fresh_reference(archive, run)
    assert result_to_json_bytes(cached) == result_to_json_bytes(fresh)


class _TunableDetector:
    """A detector whose instance state is part of its fingerprint."""

    produces = ()

    def __init__(self, cutoff: float):
        self.cutoff = cutoff

    def detect(self, index, config):
        return []


def test_detector_change_recomputes_only_its_cell(tmp_path, spec):
    archive = Archive(tmp_path)
    run = archive.archive_run(spec, size=4, seed=3)
    battery = list(DEFAULT_DETECTORS) + [_TunableDetector(cutoff=0.5)]

    cold = CacheStats()
    archive.analyze(run, detectors=battery, stats=cold)
    assert cold.misses == len(battery) + 1

    # Reconfiguring one detector invalidates exactly its own cell.
    battery[-1] = _TunableDetector(cutoff=0.9)
    partial = CacheStats()
    archive.analyze(run, detectors=battery, stats=partial)
    assert partial.misses == 1
    assert partial.hits == len(DEFAULT_DETECTORS) + 1


def test_detector_fingerprint_sees_instance_state():
    a = detector_fingerprint(_TunableDetector(cutoff=0.5))
    b = detector_fingerprint(_TunableDetector(cutoff=0.9))
    c = detector_fingerprint(_TunableDetector(cutoff=0.5))
    assert a != b
    assert a == c


def test_similarity_config_change_invalidates_only_its_cell(
    tmp_path, spec
):
    """Satellite of the stats layer: retuning one statistical detector
    (k, metric, threshold -- plain instance state) must recompute
    exactly that detector's cell, never the rule battery's."""
    from repro.stats import PhaseAnomalyDetector, SimilarityDetector

    archive = Archive(tmp_path)
    run = archive.archive_run(spec, size=4, seed=3)
    battery = list(DEFAULT_DETECTORS) + [
        SimilarityDetector(),
        PhaseAnomalyDetector(),
    ]
    cold = CacheStats()
    archive.analyze(run, detectors=battery, stats=cold)
    assert cold.misses == len(battery) + 1

    for variant in (
        SimilarityDetector(k=3),
        SimilarityDetector(metric="manhattan"),
        SimilarityDetector(threshold=0.5),
    ):
        battery[-2] = variant
        partial = CacheStats()
        archive.analyze(run, detectors=battery, stats=partial)
        assert partial.misses == 1
        assert partial.hits == len(battery)


def test_similarity_fingerprint_stable_and_state_sensitive():
    from repro.stats import SimilarityDetector

    fp = detector_fingerprint(SimilarityDetector())
    assert fp == detector_fingerprint(SimilarityDetector())
    assert fp != detector_fingerprint(SimilarityDetector(k=3))
    assert fp != detector_fingerprint(
        SimilarityDetector(metric="manhattan")
    )


def _delegating_detector(modules):
    """Same name, same (empty) state -- only the delegate list varies."""
    cls = type(
        "Delegating",
        (),
        {
            "produces": (),
            "fingerprint_modules": modules,
            "detect": lambda self, index, config: [],
        },
    )
    return cls()


def test_fingerprint_digests_declared_delegate_modules():
    """Detectors that compute in helper modules (the statistical
    family) digest those modules' source into their cache key."""
    one = _delegating_detector(("repro.stats.features",))
    both = _delegating_detector(
        ("repro.stats.features", "repro.stats.similarity")
    )
    again = _delegating_detector(("repro.stats.features",))
    assert detector_fingerprint(one) != detector_fingerprint(both)
    assert detector_fingerprint(one) == detector_fingerprint(again)


def test_config_change_invalidates(tmp_path, spec):
    archive = Archive(tmp_path)
    run = archive.archive_run(spec, size=4, seed=3)
    archive.analyze(run)  # populate under the recorded config
    other = CacheStats()
    archive.analyze(
        run, config=AnalysisConfig(noise_floor=1e-3), stats=other
    )
    # every detector cell misses; the meta cell is config-independent
    assert other.misses == len(DEFAULT_DETECTORS)
    assert other.hits == 1


def test_warm_path_never_reads_the_trace_blob(tmp_path, spec):
    archive = Archive(tmp_path)
    run = archive.archive_run(spec, size=4, seed=3)
    archive.analyze(run)  # populate
    # Destroy the trace blob: a fully warm analysis must not notice.
    archive.store._blob_path(run.trace_digest).unlink()
    result = archive.analyze(run)
    assert result.findings


def test_obs_counters_wired(tmp_path, spec):
    from repro.obs import reset_metrics, set_metrics_enabled, to_json

    set_metrics_enabled(True)
    reset_metrics()
    try:
        archive = Archive(tmp_path)
        run = archive.archive_run(spec, size=4, seed=3)
        archive.analyze(run)
        archive.analyze(run)
        families = {
            m["name"]: m["samples"]
            for m in to_json()["metrics"]
            if m["name"].startswith("ats_archive")
        }
        total = lambda name: sum(  # noqa: E731
            s["value"] for s in families.get(name, [])
        )
        assert total("ats_archive_runs_total") == 1
        assert total("ats_archive_misses_total") == (
            len(DEFAULT_DETECTORS) + 1
        )
        assert total("ats_archive_hits_total") == (
            len(DEFAULT_DETECTORS) + 1
        )
        assert total("ats_archive_blob_bytes_total") > 0
    finally:
        set_metrics_enabled(False)
        reset_metrics()
