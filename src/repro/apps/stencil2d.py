"""A 2-D Jacobi stencil on a Cartesian process grid.

The natural companion to :mod:`repro.apps.jacobi`: domain decomposed
in two dimensions over ``MPI_Cart_create``, four-way halo exchange via
``cart.shift`` with ``PROC_NULL`` boundaries, and a residual allreduce.
Documented performance behaviour: with a square, balanced grid the
program is clean; a ``hot_row`` makes one grid row compute longer, so
its column-neighbours wait in the halo exchange and everyone meets at
the allreduce (*wait at NxN*).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simmpi.buffers import alloc_mpi_buf
from ..simmpi.communicator import Communicator
from ..simmpi.datatypes import MPI_DOUBLE, MPI_SUM
from ..simmpi.topology import cart_create, dims_create
from ..trace.api import region
from ..work import do_work

SECONDS_PER_CELL = 1e-7
TAG_X = 21
TAG_Y = 22


@dataclass(frozen=True)
class Stencil2DConfig:
    """Parameters of one 2-D stencil run."""

    local_nx: int = 24
    local_ny: int = 24
    iterations: int = 6
    #: grid row whose ranks do extra work per iteration (-1: none)
    hot_row: int = -1
    hot_factor: float = 4.0


def stencil2d(
    comm: Communicator, config: Stencil2DConfig = Stencil2DConfig()
) -> float:
    """Run the stencil; every rank returns the global residual."""
    sz = comm.size()
    dims = dims_create(sz, 2)
    cart = cart_create(comm, dims)
    row = cart.my_coords()[0]
    nx, ny = config.local_nx, config.local_ny
    u = np.zeros((nx + 2, ny + 2))
    if cart.rank() == 0:
        u[1, 1] = 100.0
    edge_x = alloc_mpi_buf(MPI_DOUBLE, ny)
    edge_y = alloc_mpi_buf(MPI_DOUBLE, nx)
    resid_s = alloc_mpi_buf(MPI_DOUBLE, 1)
    resid_r = alloc_mpi_buf(MPI_DOUBLE, 1)
    residual = 0.0

    def exchange(dim: int, send_slice, recv_slice, buf, tag) -> None:
        """One-directional halo exchange along ``dim``."""
        src, dst = cart.shift(dim, 1)
        buf.data[:] = send_slice
        sreq = cart.isend(buf, dst, tag) if dst >= 0 else None
        rbuf = alloc_mpi_buf(buf.type, buf.cnt)
        rreq = cart.irecv(rbuf, src, tag) if src >= 0 else None
        if sreq is not None:
            cart.wait(sreq)
        if rreq is not None:
            cart.wait(rreq)
            recv_slice[:] = rbuf.data

    with region("stencil2d"):
        for _ in range(config.iterations):
            with region("halo2d"):
                # +x direction then -x, +y then -y
                exchange(0, u[nx, 1:-1], u[0, 1:-1], edge_x, TAG_X)
                src, dst = cart.shift(0, -1)
                edge_x.data[:] = u[1, 1:-1]
                if dst >= 0:
                    cart.send(edge_x, dst, TAG_X + 10)
                if src >= 0:
                    cart.recv(edge_x, src, TAG_X + 10)
                    u[nx + 1, 1:-1] = edge_x.data
                exchange(1, u[1:-1, ny], u[1:-1, 0], edge_y, TAG_Y)
                src, dst = cart.shift(1, -1)
                edge_y.data[:] = u[1:-1, 1]
                if dst >= 0:
                    cart.send(edge_y, dst, TAG_Y + 10)
                if src >= 0:
                    cart.recv(edge_y, src, TAG_Y + 10)
                    u[1:-1, ny + 1] = edge_y.data
            new = u[1:-1, 1:-1] + 0.25 * (
                u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2]
                + u[1:-1, 2:] - 4 * u[1:-1, 1:-1]
            )
            cost = nx * ny * SECONDS_PER_CELL
            if row == config.hot_row:
                cost *= config.hot_factor
            do_work(cost)
            local_resid = float(np.sum((new - u[1:-1, 1:-1]) ** 2))
            u[1:-1, 1:-1] = new
            resid_s.data[0] = local_resid
            cart.allreduce(resid_s, resid_r, MPI_SUM)
            residual = float(resid_r.data[0])
    return residual
