"""Faithful port of the paper's wall-clock ``do_work`` implementation.

Paper section 3.1.1: "Our current implementation uses a loop of random
read and write accesses to elements of two arrays.  Through the use of
random access and the relatively large size of the arrays, the
execution time should not be influenced by the cache behavior of the
underlying processor.  In a configuration phase during installation ...
the number of iterations of this loop which represent one second is
calculated through the use of calibration programs."

This module implements exactly that: two large arrays, random
read/write accesses driven by the lock-free :class:`~repro.simkernel.Lcg64`
(the paper's own fix for the serializing thread-safe ``rand()``), and a
calibration step that measures iterations per second.  It intentionally
does **not** call timing functions inside the work loop, for the
paper's stated reason (system-call cost and unreliability) -- which also
means, as the paper notes, it "cannot be used to validate time
measurements".
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..simkernel import Lcg64

#: array sizes chosen "relatively large" so random accesses defeat caches;
#: 1 Mi doubles = 8 MiB per array, larger than typical L2.
ARRAY_ELEMENTS = 1 << 20

_BATCH = 4096


@dataclass(frozen=True)
class Calibration:
    """Result of the configuration phase: loop iterations per second."""

    iterations_per_second: float
    measured_seconds: float
    measured_iterations: int

    def iterations_for(self, secs: float) -> int:
        """Iterations approximating ``secs`` of busy work."""
        if secs < 0:
            raise ValueError("work amount must be non-negative")
        return max(0, int(round(secs * self.iterations_per_second)))


class RealWorker:
    """A calibrated busy-loop worker bound to one thread/process.

    Each instance owns its arrays and RNG stream, so concurrent workers
    never share mutable state (the lock-free design the paper adopted).
    """

    def __init__(self, seed: int = 0, elements: int = ARRAY_ELEMENTS):
        if elements < 2:
            raise ValueError("need at least two array elements")
        self._rng = Lcg64(seed)
        self._src = np.arange(elements, dtype=np.float64)
        self._dst = np.zeros(elements, dtype=np.float64)
        self._elements = elements
        self.calibration: Calibration | None = None

    def _run_iterations(self, iterations: int) -> None:
        """The work loop: random reads from one array, writes to the other.

        Vectorized in batches (per the repo's HPC-Python guidance) while
        preserving the random-access memory pattern of the C original.
        """
        rng = self._rng
        n = self._elements
        remaining = iterations
        while remaining > 0:
            batch = min(_BATCH, remaining)
            # Two independent random index streams, derived from the
            # lock-free generator (cheap; indices need not be perfect).
            base = rng.next_u64()
            reads = (
                np.arange(batch, dtype=np.uint64) * np.uint64(2654435761)
                + np.uint64(base)
            ) % np.uint64(n)
            writes = (
                np.arange(batch, dtype=np.uint64) * np.uint64(40503)
                + np.uint64(base >> 17)
            ) % np.uint64(n)
            self._dst[writes] = self._src[reads] * 1.0000001
            remaining -= batch

    def calibrate(self, target_seconds: float = 0.05) -> Calibration:
        """Configuration phase: measure iterations per wall-clock second."""
        if target_seconds <= 0:
            raise ValueError("calibration time must be positive")
        iterations = _BATCH
        elapsed = 0.0
        # Grow the trial until it runs long enough to time reliably.
        while True:
            start = time.perf_counter()
            self._run_iterations(iterations)
            elapsed = time.perf_counter() - start
            if elapsed >= target_seconds or iterations >= (1 << 26):
                break
            iterations *= 2
        rate = iterations / max(elapsed, 1e-9)
        self.calibration = Calibration(
            iterations_per_second=rate,
            measured_seconds=elapsed,
            measured_iterations=iterations,
        )
        return self.calibration

    def do_work(self, secs: float) -> None:
        """Busy-work for approximately ``secs`` wall-clock seconds.

        Requires a prior :meth:`calibrate` (the paper's install-time
        configuration phase).
        """
        if self.calibration is None:
            raise RuntimeError(
                "RealWorker.do_work requires calibrate() first "
                "(the paper's configuration phase)"
            )
        self._run_iterations(self.calibration.iterations_for(secs))
