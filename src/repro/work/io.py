"""Modeled I/O phases.

The paper's future-work list includes "test functions for sequential
performance properties".  I/O dominance is the classic one that needs
no parallel substrate: this module models read/write phases as traced
``io_read``/``io_write`` regions of a given duration, giving the
analyzer's I/O-bound detector something real to measure.
"""

from __future__ import annotations

from ..simkernel import current_process
from ..trace.api import current_instrumentation

IO_READ_REGION = "io_read"
IO_WRITE_REGION = "io_write"


def do_io(secs: float, kind: str = "read") -> None:
    """Perform ``secs`` seconds of modeled file I/O.

    ``kind`` is ``"read"`` or ``"write"``; the phase appears in the
    trace as ``io_read``/``io_write`` so profiles and detectors can
    separate it from computation.
    """
    if secs < 0:
        raise ValueError(f"io amount must be non-negative, got {secs}")
    if kind not in ("read", "write"):
        raise ValueError(f"io kind must be 'read' or 'write': {kind!r}")
    region = IO_READ_REGION if kind == "read" else IO_WRITE_REGION
    proc = current_process()
    rec, loc = current_instrumentation()
    if rec is not None:
        rec.enter(proc.sim.now, loc, region)
        if rec.intrusion_per_event:
            proc.sim.hold(rec.intrusion_per_event)
    if secs > 0:
        proc.sim.hold(secs)
    if rec is not None:
        rec.exit(proc.sim.now, loc, region)
        if rec.intrusion_per_event:
            proc.sim.hold(rec.intrusion_per_event)
