"""Nonblocking communication requests.

A :class:`Request` represents an in-flight ``isend``/``irecv``.  The
transport sets its logical completion time as soon as it is known
(possibly in the simulated future); :meth:`wait` blocks the owner until
that time has passed, and :meth:`test` polls without blocking --
matching MPI's progress semantics closely enough for every waiting
pattern the ATS properties rely on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..simkernel import SimProcess, current_process
from .errors import RequestError
from .status import Status

if TYPE_CHECKING:  # pragma: no cover
    from .communicator import Communicator


class Request:
    """Handle for one nonblocking point-to-point operation."""

    __slots__ = (
        "kind",
        "comm",
        "owner",
        "completion_time",
        "status",
        "_waiters",
        "_on_complete",
        "waited",
    )

    def __init__(self, kind: str, comm: "Communicator", owner: SimProcess):
        if kind not in ("send", "recv"):
            raise ValueError(f"bad request kind {kind!r}")
        self.kind = kind
        self.comm = comm
        self.owner = owner
        self.completion_time: Optional[float] = None
        self.status = Status()
        self._waiters: list[SimProcess] = []
        #: callback run (once) by the owner after completion time has
        #: been reached; the transport uses it to emit the Recv trace
        #: event at the correct timestamp.
        self._on_complete: Optional[Callable[[float], None]] = None
        self.waited = False

    # ------------------------------------------------------------------
    # transport side
    # ------------------------------------------------------------------

    def _complete(self, at: float) -> None:
        """Mark the request logically complete at virtual time ``at``.

        May be called by any process; wakes blocked waiters with the
        appropriate delay so they resume no earlier than ``at``.
        """
        if self.completion_time is not None:
            raise RequestError("request completed twice")
        self.completion_time = at
        sim = self.owner.sim
        for waiter in self._waiters:
            sim.activate(waiter, delay=max(0.0, at - sim.now))
        self._waiters.clear()

    # ------------------------------------------------------------------
    # owner side
    # ------------------------------------------------------------------

    def wait(self) -> Status:
        """Block until the operation completes; returns the status.

        Idempotent: waiting on an already-completed request returns
        immediately.  Only the owning process may wait.
        """
        proc = current_process()
        if proc is not self.owner:
            raise RequestError(
                f"request owned by {self.owner.name} waited on by {proc.name}"
            )
        sim = proc.sim
        while self.completion_time is None:
            self._waiters.append(proc)
            sim.passivate(f"MPI_Wait({self.kind})")
        if self.completion_time > sim.now:
            sim.hold(self.completion_time - sim.now)
        if not self.waited:
            self.waited = True
            if self._on_complete is not None:
                self._on_complete(self.completion_time)
        return self.status

    def _remove_waiter(self, proc: SimProcess) -> None:
        """Deregister a parked waiter (waitany bookkeeping)."""
        while proc in self._waiters:
            self._waiters.remove(proc)

    def test(self) -> bool:
        """True iff the operation has completed by now (non-blocking)."""
        proc = current_process()
        if proc is not self.owner:
            raise RequestError("test() from non-owning process")
        done = (
            self.completion_time is not None
            and self.completion_time <= proc.sim.now
        )
        if done and not self.waited:
            self.waited = True
            if self._on_complete is not None:
                self._on_complete(self.completion_time)  # type: ignore[arg-type]
        return done

    @property
    def completed(self) -> bool:
        """True once a logical completion time has been assigned."""
        return self.completion_time is not None

    def __repr__(self) -> str:
        state = (
            f"done@{self.completion_time:.6g}"
            if self.completion_time is not None
            else "pending"
        )
        return f"<Request {self.kind} {state}>"
