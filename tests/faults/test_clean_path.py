"""Magnitude-0 and empty fault plans must BE the clean path.

Regression suite for the guarantee that ``FaultInjector.coerce``
resolves no-op plans to ``None`` before any hook is armed: a run at
noise magnitude 0 has to produce byte-for-byte the trace of a run
with no ``faults=`` argument at all, not merely an equivalent one.
"""

from repro.core.registry import get_property
from repro.faults import FaultInjector, FaultPlan
from repro.trace.io import events_to_jsonl


def test_empty_plan_coerces_to_exact_clean_path():
    assert FaultInjector.coerce(FaultPlan()) is None
    assert FaultInjector.coerce(FaultPlan(), seed=123) is None


def test_magnitude_zero_plan_coerces_to_exact_clean_path():
    scaled = FaultPlan.default().scaled(0.0)
    assert all(p.is_noop for p in scaled.perturbations)
    assert FaultInjector.coerce(scaled) is None
    assert FaultInjector.coerce(scaled, seed=99) is None


def _trace(spec, faults):
    run = spec.run(size=4, num_threads=2, seed=11, faults=faults)
    return events_to_jsonl(run.events)


def test_clean_run_byte_identical_to_magnitude_zero_run():
    spec = get_property("late_sender")
    clean = _trace(spec, None)
    assert _trace(spec, FaultPlan.default().scaled(0.0)) == clean
    assert _trace(spec, FaultPlan()) == clean


def test_clean_run_byte_identical_across_seeds_without_faults():
    # Without an injector the seed must not leak into the trace: the
    # clean path never touches the fault RNG streams.
    spec = get_property("late_sender")
    run_a = spec.run(size=4, num_threads=2, seed=1)
    run_b = spec.run(size=4, num_threads=2, seed=2)
    assert events_to_jsonl(run_a.events) == events_to_jsonl(run_b.events)
