"""History listing, run resolution, regression diffing, the gate."""

import json

import pytest

from repro.archive import (
    Archive,
    ArchiveError,
    format_history,
    history_to_json_str,
)
from repro.core import get_property


@pytest.fixture(scope="module")
def populated(tmp_path_factory):
    """An archive with a healthy run and a severity-collapsed run."""
    root = tmp_path_factory.mktemp("archive")
    archive = Archive(root)
    spec = get_property("late_sender")
    healthy = archive.archive_run(spec, size=4, seed=1)
    collapsed = archive.archive_run(
        spec, size=4, seed=1, severity_scale=0.05
    )
    other = archive.archive_run(
        get_property("imbalance_at_omp_barrier"), seed=2
    )
    return archive, healthy, collapsed, other


def test_history_order_and_render(populated):
    archive, healthy, collapsed, other = populated
    runs = archive.history()
    assert [r.run_id for r in runs] == [
        healthy.run_id,
        collapsed.run_id,
        other.run_id,
    ]
    table = format_history(runs)
    assert healthy.run_id in table
    assert "3 archived run(s)" in table
    payload = json.loads(history_to_json_str(runs))
    assert payload["format"] == "ats-archive-history"
    assert len(payload["runs"]) == 3


def test_resolve_prefix(populated):
    archive, healthy, *_ = populated
    assert archive.resolve(healthy.run_id).run_id == healthy.run_id
    assert archive.resolve(healthy.run_id[:6]).run_id == healthy.run_id
    with pytest.raises(ArchiveError, match="no run"):
        archive.resolve("zzzzzz")
    with pytest.raises(ArchiveError, match="ambiguous"):
        archive.resolve("")  # every id matches the empty prefix


def test_severity_scale_changes_identity(populated):
    _, healthy, collapsed, _ = populated
    assert healthy.run_id != collapsed.run_id
    assert healthy.trace_digest != collapsed.trace_digest
    assert healthy.params != collapsed.params


def test_diff_self_is_clean(populated):
    archive, healthy, *_ = populated
    report = archive.diff(healthy.run_id, healthy.run_id)
    assert not report.lost
    assert not report.gained
    assert not report.gate_failures()


def test_diff_catches_severity_regression(populated):
    archive, healthy, collapsed, _ = populated
    report = archive.diff(healthy.run_id, collapsed.run_id)
    failures = report.gate_failures()
    assert failures
    assert any("severity regression" in f for f in failures)
    assert "late_sender" in report.severity_regressions()


def test_diff_catches_lost_property(populated):
    archive, healthy, _, other = populated
    # Different programs: late_sender vanishes entirely.
    report = archive.diff(healthy.run_id, other.run_id)
    assert "late_sender" in report.lost
    assert any("property lost" in f for f in report.gate_failures())


def test_diff_json_is_valid_and_inf_free(populated):
    archive, healthy, _, other = populated
    report = archive.diff(healthy.run_id, other.run_id)
    text = json.dumps(report.to_dict())
    assert "Infinity" not in text
    payload = json.loads(text)
    by_name = {d["property"]: d for d in payload["deltas"]}
    # The gained property appeared from nothing: relative is null.
    gained = by_name["imbalance_at_omp_barrier"]
    assert gained["new_property"] is True
    assert gained["relative"] is None
    lost = by_name["late_sender"]
    assert lost["new_property"] is False
    assert lost["relative"] == pytest.approx(-1.0)


def test_export_trace_round_trips(populated, tmp_path):
    from repro.trace import read_trace

    archive, healthy, *_ = populated
    plain = archive.export_trace(healthy.run_id, tmp_path / "t.jsonl")
    gz = archive.export_trace(healthy.run_id, tmp_path / "t.jsonl.gz")
    events_a, meta_a = read_trace(plain)
    events_b, meta_b = read_trace(gz)
    assert len(events_a) == healthy.events
    assert [e.to_dict() for e in events_a] == [
        e.to_dict() for e in events_b
    ]
    assert meta_a == meta_b
    assert meta_a["program"] == "late_sender"
