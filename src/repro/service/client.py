"""A tiny urllib client for the analysis service.

Used by ``ats submit``/``ats watch``, the load bench and the tests --
anything that talks to a running ``ats serve`` without pulling in a
third-party HTTP library.  Every method returns the decoded JSON
payload; non-2xx responses raise :class:`ServiceHTTPError` carrying
the status code and (for 429) the parsed ``Retry-After`` hint.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional
from urllib import error as urlerror
from urllib import request as urlrequest

__all__ = ["ServiceClient", "ServiceHTTPError"]


class ServiceHTTPError(Exception):
    """A non-2xx service response."""

    def __init__(
        self,
        status: int,
        payload: Optional[dict] = None,
        retry_after: Optional[float] = None,
    ):
        message = (payload or {}).get("error", f"HTTP {status}")
        super().__init__(f"{status}: {message}")
        self.status = status
        self.payload = payload or {}
        self.retry_after = retry_after


class ServiceClient:
    """Synchronous client bound to one service base URL."""

    def __init__(
        self,
        base_url: str,
        tenant: str = "default",
        timeout: float = 30.0,
    ):
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        raw: bool = False,
    ):
        data = None
        headers = {"X-Tenant": self.tenant}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urlrequest.Request(
            self.base_url + path, data=data, headers=headers,
            method=method,
        )
        try:
            with urlrequest.urlopen(req, timeout=self.timeout) as resp:
                payload = resp.read()
        except urlerror.HTTPError as exc:
            detail = None
            try:
                detail = json.loads(exc.read())
            except ValueError:
                pass
            retry_after = exc.headers.get("Retry-After")
            raise ServiceHTTPError(
                exc.code,
                detail,
                float(retry_after) if retry_after else None,
            ) from None
        if raw:
            return payload.decode("utf-8")
        return json.loads(payload)

    # ------------------------------------------------------------------
    # submissions
    # ------------------------------------------------------------------

    def submit_run(
        self, property: str, wait: bool = False, **params: Any
    ) -> dict:
        body: Dict[str, Any] = {"property": property, **params}
        if wait:
            body["wait"] = True
        return self._request("POST", "/submit-run", body)

    def analyze(self, run: str, wait: bool = False, **params: Any) -> dict:
        body: Dict[str, Any] = {"run": run, **params}
        if wait:
            body["wait"] = True
        return self._request("POST", "/analyze", body)

    def diff(
        self, before: str, after: str, wait: bool = False, **params: Any
    ) -> dict:
        body: Dict[str, Any] = {
            "before": before, "after": after, **params
        }
        if wait:
            body["wait"] = True
        return self._request("POST", "/diff", body)

    def campaign(self, wait: bool = False, **params: Any) -> dict:
        body: Dict[str, Any] = dict(params)
        if wait:
            body["wait"] = True
        return self._request("POST", "/campaign", body)

    def synth(
        self, spec: Dict[str, Any], wait: bool = False, **params: Any
    ) -> dict:
        """Submit a synthesized-scenario campaign (a CampaignSpec dict)."""
        body: Dict[str, Any] = dict(params, spec=spec)
        if wait:
            body["wait"] = True
        return self._request("POST", "/synth", body)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def history(self) -> dict:
        return self._request("GET", "/history")

    def job(self, job_id: str, wait: bool = False) -> dict:
        suffix = "?wait=1" if wait else ""
        return self._request("GET", f"/jobs/{job_id}{suffix}")

    def status(self) -> dict:
        return self._request("GET", "/status")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """Prometheus text exposition (raw string)."""
        return self._request("GET", "/metrics", raw=True)

    def metrics_json(self) -> dict:
        return self._request("GET", "/metrics.json")

    def drain(self) -> dict:
        return self._request("POST", "/drain", {})
