"""Experiment-sweep layer tests."""

import pytest

from repro.validation import run_sweep


def test_severity_factor_sweep():
    result = run_sweep(
        "late_sender", severity_factors=[0.5, 1.0, 2.0], sizes=[4]
    )
    assert len(result.points) == 3
    series = result.series("factor", "late_sender")
    factors = [f for f, _ in series]
    sevs = [s for _, s in series]
    assert factors == [0.5, 1.0, 2.0]
    assert sevs[0] < sevs[1] < sevs[2]


def test_size_sweep():
    result = run_sweep("imbalance_at_mpi_barrier", sizes=[2, 4, 8])
    assert len(result.points) == 3
    assert [p.config["size"] for p in result.points] == [2, 4, 8]
    assert all(
        "wait_at_barrier" in p.detected for p in result.points
    )


def test_param_grid_sweep():
    result = run_sweep(
        "late_broadcast",
        sizes=[4],
        param_grid={"root": [0, 2], "r": [1, 2]},
    )
    assert len(result.points) == 4
    configs = {(p.config["root"], p.config["r"]) for p in result.points}
    assert configs == {(0, 1), (0, 2), (2, 1), (2, 2)}


def test_combined_axes_cartesian():
    result = run_sweep(
        "late_sender", severity_factors=[1.0, 2.0], sizes=[2, 4]
    )
    assert len(result.points) == 4


def test_rows_and_csv_output():
    result = run_sweep("late_sender", severity_factors=[1.0], sizes=[4])
    rows = result.to_rows()
    assert rows[0]["property"] == "late_sender"
    assert "sev:late_sender" in rows[0]
    csv = result.to_csv()
    header, data = csv.strip().split("\n")
    assert "factor" in header and "final_time" in header
    assert data.startswith("late_sender")


def test_empty_sweep_result_csv():
    from repro.validation import SweepResult

    assert SweepResult().to_csv() == ""


def test_unknown_property_raises():
    with pytest.raises(KeyError):
        run_sweep("nope")


def test_omp_property_sweep_uses_threads():
    result = run_sweep(
        "imbalance_at_omp_barrier",
        severity_factors=[1.0],
        num_threads=6,
    )
    assert result.points[0].severity_of("imbalance_at_omp_barrier") > 0
