"""Ground-truth dataset export: (features, labels) tables.

Joins the feature layer with :class:`~repro.archive.api.ArchivedRun`
ground truth: every archived run carrying a synthesized manifest
becomes one row per rank -- the rank's normalized behavior vector as
features, the manifest's expected property ids as labels (per-rank
labels follow the manifest's pathological-rank locations; cell-level
labels and severity bands ride along).  This is the AutoPerf
dataset_creator / data_processor shape: JSON-lines for schema-rich
consumers, CSV with one column per feature for spreadsheet/sklearn
pipelines, so external ML tooling can train on ATS-generated labels.

Feature extraction is cached in the archive's key-addressed object
store under ``features|<trace digest>|<FEATURE_VERSION>`` -- a warm
export never re-reads a trace blob, mirroring the incremental analysis
cache.  Output is deterministic: runs are joined in manifest order,
rows per run in rank order, and all serialization is key-sorted.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..archive.cache import CacheStats
from ..obs.instruments import archive_metrics, stats_metrics
from ..obs.spans import span
from ..trace.io import events_from_jsonl
from .features import FEATURE_VERSION, FeatureMatrix, behavior_matrix

#: artifact format tag every exported JSONL row carries
DATASET_FORMAT = "ats-dataset-row"
DATASET_VERSION = 1

#: keys every JSONL row must carry (the CI schema check's contract)
ROW_REQUIRED_KEYS = (
    "format",
    "version",
    "run_id",
    "program",
    "key",
    "rank",
    "features",
    "busy_seconds",
    "labels",
    "cell_labels",
    "bands",
    "seed",
)


def feature_cell_key(trace_digest: str) -> str:
    """Archive cache key of one trace's feature matrix."""
    return f"features|{trace_digest}|{FEATURE_VERSION}"


def _count(stats: Optional[CacheStats], hit: bool) -> None:
    if stats is not None:
        stats.count(hit)
    metrics = archive_metrics()
    if metrics is not None:
        family = metrics.hits if hit else metrics.misses
        family.labels(stage="features").inc()


def features_for_run(
    archive, run, stats: Optional[CacheStats] = None
) -> FeatureMatrix:
    """The behavior matrix of one archived run, cached in its store.

    On a miss the trace blob is loaded, vectors derived and the matrix
    stored as a key-addressed cell; a warm export assembles from cells
    alone.  ``FEATURE_VERSION`` is part of the key, so a feature-schema
    change invalidates exactly the feature cells.
    """
    store = archive.store
    key = feature_cell_key(run.trace_digest)
    blob = store.get_named(key)
    _count(stats, blob is not None)
    if blob is not None:
        return FeatureMatrix.from_dict(json.loads(blob))
    events, _ = events_from_jsonl(
        store.get_blob(run.trace_digest).decode("utf-8"),
        label=f"<archive blob {run.trace_digest[:12]}>",
    )
    metrics = stats_metrics()
    t0 = perf_counter() if metrics is not None else 0.0
    matrix = behavior_matrix(events, total_time=run.final_time)
    if metrics is not None:
        metrics.feature_seconds.inc(perf_counter() - t0)
        metrics.feature_rows.inc(len(matrix))
    store.put_named(
        key,
        json.dumps(matrix.to_dict(), sort_keys=True).encode("utf-8"),
    )
    return matrix


@dataclass(frozen=True)
class DatasetRow:
    """One (features, labels) sample: one rank of one archived run."""

    run_id: str
    program: str
    key: str
    rank: int
    features: Tuple[Tuple[str, float], ...]
    busy_seconds: float
    #: ground-truth property ids localized to this rank
    labels: Tuple[str, ...]
    #: the run's full expected property set (cell-level ground truth)
    cell_labels: Tuple[str, ...]
    bands: Tuple[Tuple[str, str], ...]
    seed: int
    noise_magnitude: float

    def to_dict(self) -> dict:
        return {
            "format": DATASET_FORMAT,
            "version": DATASET_VERSION,
            "run_id": self.run_id,
            "program": self.program,
            "key": self.key,
            "rank": self.rank,
            "features": dict(self.features),
            "busy_seconds": self.busy_seconds,
            "labels": list(self.labels),
            "cell_labels": list(self.cell_labels),
            "bands": dict(self.bands),
            "seed": self.seed,
            "noise_magnitude": self.noise_magnitude,
        }


def dataset_rows(
    archive,
    runs: Optional[Sequence] = None,
    stats: Optional[CacheStats] = None,
) -> List[DatasetRow]:
    """Join archived ground-truth runs into dataset rows.

    ``runs`` defaults to every manifest-carrying run in the archive's
    history (synthesized campaign cells); runs without ground truth
    are skipped -- there is nothing to label them with.
    """
    if runs is None:
        runs = archive.history()
    labeled = [run for run in runs if run.manifest is not None]
    rows: List[DatasetRow] = []
    metrics = stats_metrics()
    with span("stats:export", cat="stats", runs=len(labeled)):
        for run in labeled:
            manifest = run.manifest
            matrix = features_for_run(archive, run, stats=stats)
            by_rank: Dict[int, set] = {}
            for loc in manifest.get("locations", ()):
                for rank in loc["ranks"]:
                    by_rank.setdefault(rank, set()).add(
                        loc["property"]
                    )
            cell_labels = tuple(manifest.get("expected", ()))
            bands = tuple(
                sorted(manifest.get("severity_bands", {}).items())
            )
            for i in range(len(matrix)):
                rank = matrix.locs[i].rank
                rows.append(
                    DatasetRow(
                        run_id=run.run_id,
                        program=run.program,
                        key=matrix.keys[i],
                        rank=rank,
                        features=tuple(
                            zip(matrix.names, matrix.rows[i])
                        ),
                        busy_seconds=matrix.busy(i),
                        labels=tuple(
                            sorted(by_rank.get(rank, ()))
                        ),
                        cell_labels=cell_labels,
                        bands=bands,
                        seed=run.seed,
                        noise_magnitude=manifest.get(
                            "noise_magnitude", 0.0
                        ),
                    )
                )
        if metrics is not None:
            metrics.export_runs.inc(len(labeled))
            metrics.export_rows.inc(len(rows))
    return rows


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------

def rows_to_jsonl(rows: Sequence[DatasetRow]) -> str:
    """One key-sorted JSON object per line (deterministic bytes)."""
    return "".join(
        json.dumps(row.to_dict(), sort_keys=True) + "\n"
        for row in rows
    )


def rows_to_csv(rows: Sequence[DatasetRow]) -> str:
    """Flat table: one column per feature (union across rows).

    Multi-label columns (``labels``, ``cell_labels``) are joined with
    ``|``; features a row lacks (per-path columns of other traces)
    default to 0.0 so every row is dense.
    """
    names: List[str] = sorted(
        {name for row in rows for name, _ in row.features}
    )
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(
        [
            "run_id",
            "program",
            "key",
            "rank",
            "busy_seconds",
            "labels",
            "cell_labels",
            "seed",
            "noise_magnitude",
        ]
        + names
    )
    for row in rows:
        features = dict(row.features)
        writer.writerow(
            [
                row.run_id,
                row.program,
                row.key,
                row.rank,
                repr(row.busy_seconds),
                "|".join(row.labels),
                "|".join(row.cell_labels),
                row.seed,
                repr(row.noise_magnitude),
            ]
            + [repr(features.get(name, 0.0)) for name in names]
        )
    return buf.getvalue()


def validate_row(payload: dict) -> None:
    """Raise ValueError when a JSONL row violates the schema."""
    for key in ROW_REQUIRED_KEYS:
        if key not in payload:
            raise ValueError(f"dataset row missing key {key!r}")
    if payload["format"] != DATASET_FORMAT:
        raise ValueError(
            f"not a dataset row (format={payload['format']!r})"
        )
    if not isinstance(payload["features"], dict):
        raise ValueError("dataset row features must be an object")
    for name, value in payload["features"].items():
        if not isinstance(value, (int, float)):
            raise ValueError(
                f"feature {name!r} is not numeric: {value!r}"
            )
