"""Serialization of analysis artifacts for archive blobs.

Findings and results round-trip through plain JSON.  Floats survive
exactly (``json`` emits the shortest repr that parses back to the same
double), call paths and locations reuse the trace model's own string
forms, and :func:`result_to_json_bytes` defines the *canonical* bytes
of a result -- the form the determinism tests and the cache
byte-identity guarantee compare.
"""

from __future__ import annotations

import json
from typing import Iterable, List

from ..analysis.model import AnalysisResult, Finding
from ..trace.events import Location


def finding_to_dict(finding: Finding) -> dict:
    return {
        "property": finding.property,
        "path": list(finding.callpath),
        "loc": str(finding.loc),
        "wait": finding.wait_time,
    }


def finding_from_dict(d: dict) -> Finding:
    return Finding(
        property=d["property"],
        callpath=tuple(d["path"]),
        loc=Location.parse(d["loc"]),
        wait_time=d["wait"],
    )


def findings_to_bytes(findings: Iterable[Finding]) -> bytes:
    payload = [finding_to_dict(f) for f in findings]
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def findings_from_bytes(data: bytes) -> List[Finding]:
    return [finding_from_dict(d) for d in json.loads(data)]


def meta_to_bytes(total_time: float, locations: Iterable[Location]) -> bytes:
    payload = {
        "total_time": total_time,
        "locations": [str(loc) for loc in locations],
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def meta_from_bytes(data: bytes) -> tuple[float, List[Location]]:
    payload = json.loads(data)
    return (
        payload["total_time"],
        [Location.parse(text) for text in payload["locations"]],
    )


def result_to_dict(result: AnalysisResult) -> dict:
    """Full, order-preserving view of a result (canonical form)."""
    return {
        "findings": [finding_to_dict(f) for f in result.findings],
        "total_time": result.total_time,
        "locations": [str(loc) for loc in result.locations],
        "comm_registry": {
            str(cid): list(members)
            for cid, members in sorted(result.comm_registry.items())
        },
    }


def result_to_json_bytes(result: AnalysisResult) -> bytes:
    """The canonical bytes two equal results must share exactly."""
    return json.dumps(result_to_dict(result), sort_keys=True).encode(
        "utf-8"
    )
