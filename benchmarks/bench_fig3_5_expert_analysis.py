"""F3.5 -- Figure 3.5: the EXPERT analysis of the figure-3.4 program.

The paper reads the EXPERT screenshot as follows: "EXPERT found (among
others) the Late Broadcast performance property.  The middle (call
graph) pane shows that it located it correctly at the MPI_Bcast()
function call inside the performance property function late_broadcast().
The right pane shows that the performance property was located at MPI
ranks 8 and [10] to 15 ... as late_broadcast() was executed on the
communicator with the upper half of the MPI ranks with an
(communicator-local) root rank 1."

This bench reproduces all three panes exactly.
"""

from repro.analysis import analyze_run, format_expert_report
from repro.core import run_split_program


def run_and_analyze():
    result = run_split_program(
        lower=["imbalance_at_mpi_barrier", "late_sender"],
        upper=["late_broadcast", "early_reduce"],
        size=16,
    )
    return result, analyze_run(result)


def test_fig3_5_expert_three_panes(benchmark, run_bench):
    from repro.analysis import format_property_tree

    _, analysis = run_bench(benchmark, run_and_analyze)
    print("\nF3.5 EXPERT-style report:")
    print(format_expert_report(analysis, threshold=0.005))
    print(format_property_tree(analysis, threshold=0.005))

    # Pane 1 (property tree): Late Broadcast is found, among others.
    detected = analysis.detected(0.005)
    assert "late_broadcast" in detected

    # Pane 2 (call graph): located at MPI_Bcast inside late_broadcast().
    (path, _), *_ = list(analysis.callpaths_of("late_broadcast").items())
    assert path[-1] == "MPI_Bcast"
    assert "late_broadcast" in path

    # Pane 3 (locations): upper half except the communicator-local root
    # 1, which is global rank 9 of 16.
    ranks = sorted(
        loc.rank for loc in analysis.locations_of("late_broadcast")
    )
    print(f"late_broadcast waiting ranks: {ranks}")
    assert ranks == [8, 10, 11, 12, 13, 14, 15]


def test_fig3_5_severity_concentrated_on_waiting_ranks(benchmark):
    """Non-root upper ranks carry (roughly) equal severity shares."""
    _, analysis = benchmark.pedantic(
        run_and_analyze, rounds=1, iterations=1
    )
    locs = analysis.locations_of("late_broadcast")
    values = list(locs.values())
    assert values, "no late_broadcast locations"
    spread = max(values) / min(values)
    print(f"\n  per-rank severity spread factor: {spread:.2f}")
    assert spread < 1.5  # all non-roots wait about equally


def test_fig3_5_root_rank_translation(benchmark):
    """Communicator-local root 1 translates to global rank 9."""
    result, analysis = benchmark.pedantic(
        run_and_analyze, rounds=1, iterations=1
    )
    upper_group = next(
        g for g in analysis.comm_registry.values()
        if g == tuple(range(8, 16))
    )
    local_root = 1
    assert upper_group[local_root] == 9
    assert 9 not in {
        loc.rank for loc in analysis.locations_of("late_broadcast")
    }
