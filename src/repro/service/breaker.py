"""Circuit breaker over repeatedly-crashing executor cells.

The analysis service executes *cells* -- a run of one property at one
size, a campaign, a synth spec.  A cell that crashes its executor will
usually crash it again on the next identical submission: the simulator
is deterministic.  Without a breaker, a client retry loop turns one
poisonous cell into a worker-thread denial of service.

:class:`CircuitBreaker` keeps one tiny state machine per cell key:

* **closed** -- submissions flow; consecutive failures are counted
  and a success resets the count;
* **open** -- after ``threshold`` consecutive failures the cell is
  evicted: submissions are rejected immediately (HTTP 503 with a
  ``Retry-After``) for ``cooldown`` seconds;
* **half-open** -- once the cooldown elapses, exactly one probe
  submission is let through; success closes the breaker, failure
  re-opens it for another cooldown.

The clock is injectable so tests can walk the state machine without
sleeping.  All transitions are counted into ``ats_service_breaker_*``
metrics and surfaced on ``/status`` and the dashboards.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

__all__ = ["BreakerOpen", "CircuitBreaker"]


class BreakerOpen(Exception):
    """Submission rejected: the cell's breaker is open."""

    def __init__(self, key: str, retry_after: float):
        super().__init__(
            f"executor cell {key!r} evicted after repeated crashes; "
            f"retry in {retry_after:.1f}s"
        )
        self.key = key
        self.retry_after = retry_after


class _Cell:
    __slots__ = ("state", "failures", "opened_at", "probing")

    def __init__(self) -> None:
        self.state = "closed"
        self.failures = 0
        self.opened_at = 0.0
        self.probing = False


class CircuitBreaker:
    """Per-cell eviction with half-open probes (see module doc)."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        #: optional observer ``(key, new_state)`` for metrics.
        self._on_transition = on_transition
        self._cells: Dict[str, _Cell] = {}
        self._lock = threading.Lock()

    def _transition(self, key: str, cell: _Cell, state: str) -> None:
        if cell.state != state:
            cell.state = state
            if self._on_transition is not None:
                self._on_transition(key, state)

    # ------------------------------------------------------------------
    # the submission path
    # ------------------------------------------------------------------

    def check(self, key: str) -> None:
        """Raise :class:`BreakerOpen` when ``key`` may not submit.

        An open cell whose cooldown has elapsed admits exactly one
        half-open probe; concurrent submissions behind the probe stay
        rejected until the probe resolves.
        """
        with self._lock:
            cell = self._cells.get(key)
            if cell is None or cell.state == "closed":
                return
            now = self._clock()
            elapsed = now - cell.opened_at
            if cell.state == "open" and elapsed >= self.cooldown:
                self._transition(key, cell, "half-open")
                cell.probing = True
                return
            if cell.state == "half-open" and not cell.probing:
                cell.probing = True
                return
            retry_after = max(0.1, self.cooldown - elapsed)
            raise BreakerOpen(key, retry_after)

    # ------------------------------------------------------------------
    # outcome accounting
    # ------------------------------------------------------------------

    def record_success(self, key: str) -> None:
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                return
            cell.failures = 0
            cell.probing = False
            if cell.state != "closed":
                self._transition(key, cell, "closed")
                del self._cells[key]
            else:
                del self._cells[key]

    def record_failure(self, key: str) -> None:
        with self._lock:
            cell = self._cells.setdefault(key, _Cell())
            cell.failures += 1
            cell.probing = False
            if cell.state == "half-open" or (
                cell.state == "closed"
                and cell.failures >= self.threshold
            ):
                cell.opened_at = self._clock()
                self._transition(key, cell, "open")

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def open_count(self) -> int:
        with self._lock:
            return sum(
                1 for c in self._cells.values() if c.state != "closed"
            )

    def snapshot(self) -> List[dict]:
        """Evicted cells for ``/status`` (closed cells are omitted)."""
        with self._lock:
            now = self._clock()
            out = []
            for key, cell in sorted(self._cells.items()):
                if cell.state == "closed":
                    continue
                out.append(
                    {
                        "cell": key,
                        "state": cell.state,
                        "failures": cell.failures,
                        "retry_after": max(
                            0.0,
                            self.cooldown - (now - cell.opened_at),
                        ),
                    }
                )
            return out
