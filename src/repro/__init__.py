"""ATS -- the APART Test Suite for automatic performance analysis tools.

A complete Python reproduction of Mohr & Traeff, *Initial Design of a
Test Suite for Automatic Performance Analysis Tools* (IPPS 2003 /
APART technical report FZJ-ZAM-IB-2002-13), including the simulated
MPI/OpenMP substrate it runs on and an EXPERT-style automatic analyzer
that closes the evaluation loop.

Quick start::

    from repro import get_property, analyze_run, format_expert_report

    result = get_property("late_sender").run(size=8)
    print(result.timeline())
    print(format_expert_report(analyze_run(result)))

Package map (paper figure 3.1, bottom-up):

* :mod:`repro.simkernel`   -- deterministic discrete-event kernel
* :mod:`repro.work`        -- specification of (parallel) work
* :mod:`repro.distributions` -- specification of distribution
* :mod:`repro.simmpi`      -- simulated MPI (buffers, patterns, collectives)
* :mod:`repro.simomp`      -- simulated OpenMP (teams, loops, barriers)
* :mod:`repro.trace`       -- event traces, timelines, persistence
* :mod:`repro.core`        -- property functions, registry, composites,
  program generator (the paper's contribution)
* :mod:`repro.analysis`    -- EXPERT-style automatic analyzer
* :mod:`repro.asl`         -- ASL-style property specifications
* :mod:`repro.validation`  -- correctness harness (positive/negative/
  semantics/overhead/robustness)
* :mod:`repro.faults`      -- deterministic fault injection for
  detector-robustness measurement
* :mod:`repro.apps`        -- "real world" mini-applications (chapter 4)
"""

from .analysis import (
    AnalysisConfig,
    AnalysisResult,
    Finding,
    analyze_events,
    analyze_run,
    format_expert_report,
    format_summary_table,
)
from .core import (
    DistParam,
    PropertySpec,
    Step,
    generate_single_property_script,
    get_property,
    list_properties,
    run_all_mpi_properties,
    run_chain,
    run_hybrid_composite,
    run_split_program,
    set_base_comm,
)
from .distributions import (
    Val1Distr,
    Val2Distr,
    Val2NDistr,
    Val3Distr,
    df_block2,
    df_block3,
    df_cyclic2,
    df_cyclic3,
    df_linear,
    df_peak,
    df_same,
)
from .faults import FaultInjector, FaultPlan
from .simmpi import TransportParams, run_mpi
from .simomp import run_omp
from .trace import read_trace, render_timeline, write_trace
from .work import do_work, par_do_mpi_work, par_do_omp_work

__version__ = "1.0.0"

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "DistParam",
    "FaultInjector",
    "FaultPlan",
    "Finding",
    "PropertySpec",
    "Step",
    "TransportParams",
    "Val1Distr",
    "Val2Distr",
    "Val2NDistr",
    "Val3Distr",
    "__version__",
    "analyze_events",
    "analyze_run",
    "df_block2",
    "df_block3",
    "df_cyclic2",
    "df_cyclic3",
    "df_linear",
    "df_peak",
    "df_same",
    "do_work",
    "format_expert_report",
    "format_summary_table",
    "generate_single_property_script",
    "get_property",
    "list_properties",
    "par_do_mpi_work",
    "par_do_omp_work",
    "read_trace",
    "render_timeline",
    "run_all_mpi_properties",
    "run_chain",
    "run_hybrid_composite",
    "run_mpi",
    "run_omp",
    "run_split_program",
    "set_base_comm",
    "write_trace",
]
