"""Tool certification and localization-aspect tests."""

import pytest

from repro.analysis.detectors import LateSenderDetector
from repro.analysis.tools import battery_without, pattern_tool
from repro.core import get_property
from repro.validation import (
    ToolCertificate,
    certify_tool,
    run_validation_matrix,
    validate_spec,
)


def test_bundled_analyzer_is_certified():
    cert = certify_tool(size=8)
    assert cert.certified
    assert cert.positive_detection_rate == 1.0
    assert cert.false_positive_rate == 0.0
    assert cert.localization_rate == 1.0
    assert cert.programs >= 30
    assert "CERTIFIED" in cert.format()


def test_crippled_tool_not_certified():
    broken = battery_without(LateSenderDetector)
    cert = certify_tool(broken, size=8)
    assert not cert.certified
    assert cert.positive_detection_rate < 1.0
    assert "NOT certified" in cert.format()


def test_certificate_carries_tool_name():
    cert = certify_tool(pattern_tool(0.01), size=4)
    assert "pattern_tool" in cert.tool_name


def test_localization_field_none_for_negatives():
    row = validate_spec(get_property("balanced_mpi_barrier"), size=4)
    assert row.localized is None
    assert row.passed


def test_localization_true_for_positive():
    row = validate_spec(get_property("late_broadcast"), size=4)
    assert row.localized is True


def test_localization_rate_in_table():
    matrix = run_validation_matrix(
        specs=[get_property("late_sender"),
               get_property("balanced_mpi_barrier")],
        size=4,
    )
    table = matrix.format_table()
    assert "localization rate: 100%" in table
    assert matrix.localization_rate == 1.0


def test_mislocalizing_tool_detected():
    """A hypothetical analyzer that detects properties but attributes
    them to the wrong call path would fail the localized check.

    We emulate it by validating a spec whose property fires under a
    *different* function: run late_sender's trace through the matrix
    under the name of another spec is not constructible directly, so
    instead check the failure wiring: a row with localized False fails.
    """
    from repro.validation import MatrixRow

    row = MatrixRow(
        name="x", paradigm="mpi", negative=False,
        expected=("late_sender",), detected=("late_sender",),
        missing=(), spurious=(), severity=0.5, final_time=1.0,
        localized=False,
    )
    assert not row.passed
