#!/usr/bin/env python
"""Tool-development regression workflow.

The day-to-day use of ATS for a tool developer: certify the current
tool version, simulate a regression (a detector silently lost), catch
it with the analysis diff, and show the certificate degrading.
"""

from repro.analysis import analyze_run, compare_analyses
from repro.analysis.detectors import LateSenderDetector
from repro.analysis.tools import battery_without, pattern_tool
from repro.core import get_property
from repro.validation import certify_tool, run_validation_matrix


def main() -> None:
    print("=" * 70)
    print("step 1: certify the current tool against the full ATS suite")
    print("=" * 70)
    cert = certify_tool(pattern_tool())
    print(cert.format())
    assert cert.certified

    print("=" * 70)
    print("step 2: a 'refactor' silently drops the late-sender detector")
    print("=" * 70)
    broken = battery_without(LateSenderDetector)
    broken_cert = certify_tool(broken)
    print(broken_cert.format())
    assert not broken_cert.certified

    print("=" * 70)
    print("step 3: pinpoint the regression on one reference program")
    print("=" * 70)
    run = get_property("late_sender").run(size=8)
    good = analyze_run(run)
    from repro.analysis.detectors import DEFAULT_DETECTORS

    bad = analyze_run(
        run,
        detectors=[
            d for d in DEFAULT_DETECTORS
            if not isinstance(d, LateSenderDetector)
        ],
    )
    report = compare_analyses(good, bad)
    print(report.format())
    assert report.is_regression
    assert "late_sender" in report.lost

    print("=" * 70)
    print("step 4: the matrix names every failing program")
    print("=" * 70)
    matrix = run_validation_matrix(tool=broken, size=8)
    failing = [row.name for row in matrix.rows if not row.passed]
    print(f"programs failing under the broken tool: {failing}\n")
    assert "late_sender" in failing

    print("regression caught before release; ship the fixed tool.")


if __name__ == "__main__":
    main()
