"""Tests for the validation harness, semantics and overhead checks."""

import pytest

from repro.apps import JacobiConfig, jacobi
from repro.core import get_property, list_properties
from repro.validation import (
    MatrixResult,
    check_semantics,
    find_suites,
    format_catalog,
    intrusion_sweep,
    measure_overhead,
    run_validation_matrix,
    validate_spec,
)


# ----------------------------------------------------------------------
# detection matrix
# ----------------------------------------------------------------------

def test_validate_single_positive_spec():
    row = validate_spec(get_property("late_sender"), size=4)
    assert row.passed
    assert row.missing == ()
    assert row.spurious == ()
    assert "late_sender" in row.detected
    assert row.severity > 0.1


def test_validate_single_negative_spec():
    row = validate_spec(get_property("balanced_mpi_barrier"), size=4)
    assert row.passed
    assert row.detected == ()


def test_validation_matrix_subset():
    specs = [
        get_property("late_sender"),
        get_property("late_broadcast"),
        get_property("balanced_mpi_barrier"),
    ]
    matrix = run_validation_matrix(specs=specs, size=4)
    assert matrix.all_passed
    assert matrix.positive_detection_rate == 1.0
    assert matrix.false_positive_rate == 0.0
    table = matrix.format_table()
    assert "late_sender" in table
    assert "positive detection rate: 100%" in table


def test_matrix_detects_a_broken_tool():
    """A tool that reports nothing must fail positive correctness."""

    def blind_tool(run):
        return ()

    specs = [get_property("late_sender")]
    matrix = run_validation_matrix(specs=specs, tool=blind_tool, size=4)
    assert not matrix.all_passed
    assert matrix.positive_detection_rate == 0.0


def test_matrix_detects_an_overeager_tool():
    """A tool that always cries wolf must fail negative correctness."""

    def wolf_tool(run):
        return ("late_sender", "wait_at_barrier")

    specs = [get_property("balanced_mpi_barrier")]
    matrix = run_validation_matrix(specs=specs, tool=wolf_tool, size=4)
    assert not matrix.all_passed
    assert matrix.false_positive_rate == 1.0


def test_matrix_row_properties():
    result = MatrixResult(rows=[])
    assert result.all_passed
    assert result.positive_detection_rate == 1.0
    assert result.false_positive_rate == 0.0


# ----------------------------------------------------------------------
# semantics preservation (paper chapter 2 procedure)
# ----------------------------------------------------------------------

def test_jacobi_semantics_preserved_under_tracing():
    report = check_semantics(
        jacobi, size=4, model_init_overhead=False
    )
    assert report.semantics_preserved
    assert report.timing_distortion == pytest.approx(0.0)
    assert report.events_recorded > 0
    assert "PASS" in report.format()


def test_intrusive_tracing_distorts_timing_but_not_results():
    report = check_semantics(
        jacobi, size=4, intrusion=1e-4, model_init_overhead=False
    )
    assert report.semantics_preserved  # results identical
    assert report.timing_distortion > 0  # but the run got slower


def test_semantics_check_catches_result_changes():
    """A program whose result depends on tracing must FAIL."""

    def naughty(comm):
        from repro.trace.api import current_instrumentation

        rec, _ = current_instrumentation()
        return 1 if rec is not None else 0

    report = check_semantics(naughty, size=2, model_init_overhead=False)
    assert not report.semantics_preserved


# ----------------------------------------------------------------------
# overhead
# ----------------------------------------------------------------------

def test_overhead_zero_intrusion_has_no_dilation():
    report = measure_overhead(
        jacobi, size=4, model_init_overhead=False
    )
    assert report.virtual_dilation == pytest.approx(0.0)
    assert report.events > 0
    assert report.traced_wall_time > 0


def test_overhead_grows_with_intrusion():
    reports = intrusion_sweep(
        jacobi, [0.0, 1e-5, 1e-4], size=4, model_init_overhead=False
    )
    dilations = [r.virtual_dilation for r in reports]
    assert dilations[0] == pytest.approx(0.0)
    assert dilations[0] < dilations[1] < dilations[2]
    # stronger intrusion shifts measured severities further
    assert reports[2].max_severity_shift >= reports[1].max_severity_shift


# ----------------------------------------------------------------------
# the chapter 2/4 catalog
# ----------------------------------------------------------------------

def test_catalog_contains_paper_entries():
    names = {e.name for e in find_suites()}
    assert "SKaMPI" in names
    assert "Grindstone" in names
    assert "NAS Parallel Benchmarks" in names
    assert "EPCC OpenMP Microbenchmarks" in names


def test_catalog_filters():
    mpi_validation = find_suites(category="validation", paradigm="mpi")
    assert len(mpi_validation) == 5  # the paper lists five MPI suites
    assert all(e.category == "validation" for e in mpi_validation)
    with pytest.raises(ValueError):
        find_suites(category="bogus")


def test_catalog_formatting():
    text = format_catalog()
    assert "validation suites" in text
    assert "PARKBENCH" in text
