"""Supervised execution of sweep cells: timeout, classify, retry, quarantine.

A sweep (validation matrix, robustness grid, benchmark series) is a list
of independent *cells*.  Any cell can legally fail -- the suite's whole
point is running programs with known pathological behavior, and PR 3's
fault plans make hangs and corrupt traces routine inputs.  The
:class:`Supervisor` wraps each cell so that one bad cell never takes
down the sweep:

* **timeout** -- an optional wall-clock limit per attempt (the virtual
  -time watchdog in :mod:`repro.simkernel.watchdog` handles simulated
  hangs; the wall limit is the last-resort guard against host-level
  runaway).  ``timeout=None`` (the default) runs the cell inline on the
  calling thread with zero added machinery -- the disabled path.
* **classification** -- every failure maps to one kind of
  :data:`FAILURE_KINDS`: ``deadlock``, ``hang``, ``crash``,
  ``trace-corrupt`` or ``timeout``.  Structured watchdog reports ride
  along into the failure record.
* **retry** -- kinds listed in ``transient`` are retried up to
  ``retries`` times with capped exponential backoff.  The backoff
  jitter is drawn from an :class:`~repro.simkernel.rng.Lcg64` stream
  keyed on ``(seed, cell key, attempt)``, so a retried sweep is exactly
  as deterministic as an untroubled one.  The default transient set is
  just ``("timeout",)``: the simulator is deterministic, so a deadlock
  or virtual-time hang will recur on every retry.
* **quarantine** -- persistent failures become :class:`CellFailure`
  records in a :class:`FailureReport`; the sweep continues with the
  remaining cells.
* **checkpoint** -- with a :class:`~repro.resilience.checkpoint.
  CheckpointJournal` attached, every outcome (success *and* quarantine)
  is journaled as it completes and replayed on the next run, so
  ``--resume`` skips finished cells and reproduces the exact artifact
  an uninterrupted sweep would have written.
* **progress events** -- an optional ``on_event`` callback receives a
  structured dict at every cell transition (``cell-started``,
  ``cell-retry``, ``cell-done``, ``cell-quarantined``,
  ``cell-resumed``), each stamped with a wall-clock ``ts``.  This is
  how live observers -- the analysis service's ``/status`` campaign
  view, a progress bar -- watch a sweep *while it runs* instead of
  post-hoc through the checkpoint journal.  The callback is purely
  additive: journals stay byte-identical whether or not one is set,
  and it runs on the supervising thread, so it must be fast and must
  not raise.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.instruments import resilience_metrics
from ..simkernel.errors import DeadlockError, HangError
from ..simkernel.rng import Lcg64
from .checkpoint import CheckpointJournal, coerce_journal

#: the failure taxonomy, in rough order of diagnosability
FAILURE_KINDS = ("deadlock", "hang", "timeout", "trace-corrupt", "crash")

#: event names emitted to a Supervisor's ``on_event`` callback
PROGRESS_EVENTS = (
    "cell-started",
    "cell-retry",
    "cell-done",
    "cell-quarantined",
    "cell-resumed",
)


class CellTimeout(Exception):
    """A cell attempt exceeded the supervisor's wall-clock limit."""


def classify_failure(exc: BaseException) -> str:
    """Map an exception from a cell to one of :data:`FAILURE_KINDS`."""
    from ..trace.io import TraceFormatError

    if isinstance(exc, DeadlockError):
        return "deadlock"
    if isinstance(exc, HangError):
        return "hang"
    if isinstance(exc, CellTimeout):
        return "timeout"
    if isinstance(exc, TraceFormatError):
        return "trace-corrupt"
    return "crash"


def failure_report_of(exc: BaseException) -> Optional[dict]:
    """Extract the structured watchdog report, when the error carries one."""
    report = getattr(exc, "report", None)
    if report is None:
        return None
    return report.to_dict()


@dataclass(frozen=True)
class CellFailure:
    """One quarantined cell: what failed, how, and after how many tries."""

    key: str
    kind: str
    error: str
    attempts: int
    #: structured DeadlockReport/HangReport dict, when available
    report: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "kind": self.kind,
            "error": self.error,
            "attempts": self.attempts,
            "report": self.report,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CellFailure":
        return cls(
            key=d["key"],
            kind=d["kind"],
            error=d["error"],
            attempts=d["attempts"],
            report=d.get("report"),
        )


@dataclass
class FailureReport:
    """All quarantined cells of one sweep, renderable as an artifact."""

    failures: List[CellFailure] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for failure in self.failures:
            out[failure.kind] = out.get(failure.kind, 0) + 1
        return out

    def to_json_dict(self) -> dict:
        return {
            "format": "ats-failures",
            "version": 1,
            "counts": self.counts(),
            "failures": [f.to_dict() for f in self.failures],
        }

    def to_json_str(self) -> str:
        import json

        return json.dumps(self.to_json_dict(), indent=2) + "\n"

    def format_table(self) -> str:
        if not self.failures:
            return "no quarantined cells\n"
        lines = [f"{'cell':<44}{'kind':<14}{'tries':>5}  error"]
        for f in self.failures:
            error = f.error if len(f.error) <= 60 else f.error[:57] + "..."
            lines.append(
                f"{f.key:<44}{f.kind:<14}{f.attempts:>5}  {error}"
            )
        counts = ", ".join(
            f"{n} {kind}" for kind, n in sorted(self.counts().items())
        )
        lines.append(f"{len(self.failures)} quarantined ({counts})")
        return "\n".join(lines) + "\n"


@dataclass
class CellOutcome:
    """What the supervisor resolved one cell to."""

    key: str
    status: str  # "ok" | "failed"
    value: Any = None
    failure: Optional[CellFailure] = None
    attempts: int = 1
    from_checkpoint: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class Supervisor:
    """Job-based runner for sweep cells (see module docstring).

    ``sleep`` is injectable so tests can assert the exact backoff
    schedule without waiting it out.
    """

    def __init__(
        self,
        timeout: Optional[float] = None,
        retries: int = 0,
        transient: Sequence[str] = ("timeout",),
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        seed: int = 0,
        checkpoint=None,
        sleep: Callable[[float], None] = time.sleep,
        on_event: Optional[Callable[[dict], None]] = None,
    ):
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        unknown = set(transient) - set(FAILURE_KINDS)
        if unknown:
            raise ValueError(f"unknown transient kinds: {sorted(unknown)}")
        self.timeout = timeout
        self.retries = retries
        self.transient = tuple(transient)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.seed = seed
        self.journal: Optional[CheckpointJournal] = coerce_journal(
            checkpoint
        )
        self._sleep = sleep
        self.on_event = on_event
        self._done: Dict[str, dict] = (
            self.journal.load() if self.journal is not None else {}
        )
        self.failures: List[CellFailure] = []
        self._metrics = resilience_metrics()

    def _emit(self, event: str, key: str, **fields) -> None:
        """Deliver one progress event to the optional observer.

        No-op without a callback, so an unobserved sweep takes exactly
        the pre-existing code path (and its journal stays
        byte-identical).
        """
        if self.on_event is None:
            return
        self.on_event(dict({"event": event, "key": key,
                            "ts": time.time()}, **fields))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def completed_keys(self) -> Tuple[str, ...]:
        """Keys already resolved by a previous (journaled) run."""
        return tuple(self._done)

    def failure_report(self) -> FailureReport:
        return FailureReport(failures=list(self.failures))

    # ------------------------------------------------------------------
    # the cell lifecycle
    # ------------------------------------------------------------------

    def run_cell(
        self,
        key: str,
        fn: Callable[[], Any],
        encode: Optional[Callable[[Any], dict]] = None,
        decode: Optional[Callable[[dict], Any]] = None,
    ) -> CellOutcome:
        """Resolve one cell: replay it from the journal or execute it.

        ``encode``/``decode`` translate the cell's result to/from the
        JSON payload journaled for resume; both default to identity
        (the result must then already be a JSON-able dict).
        """
        cached = self.replay(key, decode)
        if cached is not None:
            return cached
        outcome = self._execute(key, fn)
        return self.finalize(outcome, encode)

    def replay(
        self,
        key: str,
        decode: Optional[Callable[[dict], Any]] = None,
    ) -> Optional[CellOutcome]:
        """The journaled outcome for ``key``, or ``None`` if not cached.

        Replayed failures re-enter :attr:`failures`, exactly as if the
        cell had just been quarantined.
        """
        cached = self._done.get(key)
        if cached is None:
            return None
        return self._replay(key, cached, decode)

    def finalize(
        self,
        outcome: CellOutcome,
        encode: Optional[Callable[[Any], dict]] = None,
    ) -> CellOutcome:
        """Journal and account an outcome resolved outside ``run_cell``.

        The fork-per-cell executor (:mod:`repro.resilience.forked`)
        produces outcomes in the parent from child envelopes; this is
        the shared tail of the cell lifecycle -- checkpoint journaling,
        quarantine bookkeeping and metrics -- for both paths.
        """
        self._journal_outcome(outcome.key, outcome, encode)
        if outcome.failure is not None:
            self.failures.append(outcome.failure)
            m = self._metrics
            if m is not None:
                m.failures.labels(kind=outcome.failure.kind).inc()
            self._emit(
                "cell-quarantined", outcome.key,
                kind=outcome.failure.kind, attempts=outcome.attempts,
            )
        else:
            self._emit(
                "cell-done", outcome.key, attempts=outcome.attempts
            )
        if self._metrics is not None:
            self._metrics.cells.labels(status=outcome.status).inc()
        return outcome

    def _replay(
        self,
        key: str,
        payload: dict,
        decode: Optional[Callable[[dict], Any]],
    ) -> CellOutcome:
        m = self._metrics
        if m is not None:
            m.cells.labels(status="resumed").inc()
        self._emit("cell-resumed", key, status=payload["status"])
        if payload["status"] == "ok":
            cell = payload["cell"]
            return CellOutcome(
                key=key,
                status="ok",
                value=decode(cell) if decode is not None else cell,
                attempts=payload.get("attempts", 1),
                from_checkpoint=True,
            )
        failure = CellFailure.from_dict(payload["failure"])
        self.failures.append(failure)
        return CellOutcome(
            key=key,
            status="failed",
            failure=failure,
            attempts=failure.attempts,
            from_checkpoint=True,
        )

    def _execute(self, key: str, fn: Callable[[], Any]) -> CellOutcome:
        attempt = 0
        while True:
            attempt += 1
            self._emit("cell-started", key, attempt=attempt)
            try:
                value = self._attempt(fn)
            except Exception as exc:  # noqa: BLE001 - classified below
                kind = classify_failure(exc)
                if kind in self.transient and attempt <= self.retries:
                    self._emit(
                        "cell-retry", key, attempt=attempt, kind=kind,
                        delay=self.backoff_delay(key, attempt),
                    )
                    self._backoff(key, attempt)
                    continue
                return CellOutcome(
                    key=key,
                    status="failed",
                    failure=CellFailure(
                        key=key,
                        kind=kind,
                        error=f"{type(exc).__name__}: {exc}",
                        attempts=attempt,
                        report=failure_report_of(exc),
                    ),
                    attempts=attempt,
                )
            return CellOutcome(
                key=key, status="ok", value=value, attempts=attempt
            )

    def _attempt(self, fn: Callable[[], Any]) -> Any:
        """One attempt, inline or under the wall-clock limit.

        The inline path (``timeout=None``) is a plain call -- no thread,
        no allocation -- so disabling supervision costs nothing on clean
        sweeps.  The timed path runs the cell on a daemon thread and
        abandons it on expiry; a deterministic simulation cannot be
        safely interrupted mid-dispatch, so the stuck thread is left to
        the virtual-time watchdog (or process exit) while the sweep
        moves on.
        """
        if self.timeout is None:
            return fn()
        box: dict = {}

        def target() -> None:
            try:
                box["value"] = fn()
            except BaseException as exc:  # noqa: BLE001 - reraised below
                box["exc"] = exc

        thread = threading.Thread(
            target=target, name="ats-cell", daemon=True
        )
        thread.start()
        thread.join(self.timeout)
        if thread.is_alive():
            if self._metrics is not None:
                self._metrics.timeouts.inc()
            raise CellTimeout(
                f"wall-clock timeout after {self.timeout:g}s"
            )
        if "exc" in box:
            raise box["exc"]
        return box["value"]

    def _backoff(self, key: str, attempt: int) -> None:
        delay = self.backoff_delay(key, attempt)
        m = self._metrics
        if m is not None:
            m.retries.inc()
            m.backoff_seconds.inc(delay)
        self._sleep(delay)

    def backoff_delay(self, key: str, attempt: int) -> float:
        """Deterministic capped-exponential backoff for one retry.

        Pure function of ``(seed, key, attempt)``: the jitter stream is
        an Lcg64 keyed on a stable hash of the cell key, so the same
        transient-failure schedule always produces the same delays
        (and, downstream, the same artifact).
        """
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        stream = Lcg64(self.seed).spawn(
            int.from_bytes(digest[:8], "big")
        ).spawn(attempt)
        base = min(
            self.backoff_cap, self.backoff_base * (2 ** (attempt - 1))
        )
        return base * (0.5 + 0.5 * stream.random())

    # ------------------------------------------------------------------
    # journaling
    # ------------------------------------------------------------------

    def _journal_outcome(
        self,
        key: str,
        outcome: CellOutcome,
        encode: Optional[Callable[[Any], dict]],
    ) -> None:
        if self.journal is None:
            return
        if outcome.ok:
            cell = (
                encode(outcome.value)
                if encode is not None
                else outcome.value
            )
            payload = {
                "status": "ok",
                "attempts": outcome.attempts,
                "cell": cell,
            }
        else:
            assert outcome.failure is not None
            payload = {
                "status": "failed",
                "attempts": outcome.attempts,
                "failure": outcome.failure.to_dict(),
            }
        self.journal.record(key, payload)
        self._done[key] = payload

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()
