"""Watchdog: budget/dispatch hang reports and deadlock diagnosis."""

import json

import pytest

from repro.core.registry import get_property
from repro.simkernel import (
    DeadlockError,
    HangError,
    Simulator,
)
from repro.simkernel.watchdog import (
    DeadlockReport,
    HangReport,
    PendingCall,
    classify_wait,
)
from repro.simkernel.scheduler import current_sim
from repro.simmpi import MPI_DOUBLE, alloc_mpi_buf, run_mpi
from repro.simomp import (
    omp_barrier,
    omp_get_thread_num,
    omp_parallel,
    run_omp,
)


def _spinner(sim, dt=0.01):
    while True:
        sim.hold(dt)


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "reason, kind",
    [
        ("MPI_Wait(recv src=1 tag=0)", "recv"),
        ("MPI_Wait(send dst=2 tag=0)", "send"),
        ("barrier(team 0)", "barrier"),
        ("lock(l)", "lock"),
        ("acquire(sem)", "semaphore"),
        ("cond(cv)", "condition"),
        ("wait(ev)", "event"),
        ("mailbox(mb)", "mailbox"),
        ("hold(0.5)", "hold"),
        ("", "passive"),
        ("something odd", "passive"),
    ],
)
def test_classify_wait(reason, kind):
    assert classify_wait(reason) == kind


def test_pending_call_describe_and_dict():
    call = PendingCall(
        process="rank1", pid=1, kind="recv",
        detail="recv from 0 tag 3 comm 0", rank=1,
    )
    assert call.describe() == (
        "rank1 (rank 1): recv -- recv from 0 tag 3 comm 0"
    )
    assert call.to_dict()["rank"] == 1


# ----------------------------------------------------------------------
# virtual-time budget (HangError)
# ----------------------------------------------------------------------

def test_budget_trips_on_bare_simulator():
    sim = Simulator()
    sim.spawn(_spinner, sim, name="a")
    sim.spawn(_spinner, sim, name="b")
    with pytest.raises(HangError) as excinfo:
        sim.run(budget=0.05)
    report = excinfo.value.report
    assert isinstance(report, HangReport)
    assert report.budget == 0.05
    assert "virtual-time budget" in report.reason
    assert {e.process for e in report.entries} == {"a", "b"}
    # the report is JSON-serializable end to end
    parsed = json.loads(report.to_json_str())
    assert parsed["kind"] == "hang"
    assert len(parsed["entries"]) == 2


def test_budget_within_limit_is_transparent():
    def short(sim):
        sim.hold(0.01)
        return "done"

    sim = Simulator()
    sim.spawn(short, sim, name="p")
    final = sim.run(budget=10.0)
    assert final == pytest.approx(0.01)
    assert sim.results()["p"] == "done"


def test_max_dispatches_carries_hang_report():
    sim = Simulator()
    sim.spawn(_spinner, sim, name="mill")
    with pytest.raises(HangError, match="exceeded max_dispatches=32") as ei:
        sim.run(max_dispatches=32)
    report = ei.value.report
    assert report is not None
    assert report.max_dispatches == 32
    assert "dispatch limit" in report.reason


def test_budget_kills_mpi_program_inside_trace_region():
    # Regression: teardown used to deadlock when the forced unwind
    # crossed an open trace region (the region exit raised, the worker
    # reported a failure instead of completing the kill handshake).
    with pytest.raises(HangError) as excinfo:
        get_property("late_sender").run(
            size=4, num_threads=2, seed=0, time_budget=0.0001
        )
    report = excinfo.value.report
    assert report.budget == 0.0001
    # every rank shows up with its rank number attached
    assert sorted(
        e.rank for e in report.entries if e.rank is not None
    ) == [0, 1, 2, 3]


def test_budget_reports_omp_barrier_arrival_state():
    def body():
        if omp_get_thread_num() == 0:
            while True:
                current_sim().hold(0.01)
        omp_barrier()

    with pytest.raises(HangError) as excinfo:
        run_omp(
            lambda: omp_parallel(body, num_threads=4),
            num_threads=4,
            time_budget=0.05,
        )
    entries = excinfo.value.report.entries
    barrier_waits = [e for e in entries if e.kind == "barrier"]
    assert barrier_waits, entries
    assert any("3/4 arrived" in e.detail for e in barrier_waits)


# ----------------------------------------------------------------------
# deadlock reports
# ----------------------------------------------------------------------

def _crossed_sends(comm):
    # both ranks post a rendezvous-sized blocking send first: classic
    # unsafe crossed send, deadlocks under the rendezvous protocol
    n = 4096  # 32768 bytes of doubles, past the 8192B eager threshold
    buf = alloc_mpi_buf(MPI_DOUBLE, n)
    peer = 1 - comm.rank()
    comm.send(buf, peer, tag=0)
    comm.recv(buf, source=peer, tag=0)


def test_crossed_rendezvous_sends_name_every_rank():
    with pytest.raises(DeadlockError) as excinfo:
        run_mpi(_crossed_sends, size=2, model_init_overhead=False)
    report = excinfo.value.report
    assert isinstance(report, DeadlockReport)
    assert report.blocked == 2
    assert report.blocked_ranks() == (0, 1)
    by_rank = {e.rank: e for e in report.entries}
    assert by_rank[0].kind == "send"
    assert "send to 1" in by_rank[0].detail
    assert "rendezvous" in by_rank[0].detail
    assert "send to 0" in by_rank[1].detail
    text = report.format()
    assert "DEADLOCK" in text
    assert "2 blocked process(es)" in text


def _recv_from_silence(comm):
    if comm.rank() == 0:
        buf = alloc_mpi_buf(MPI_DOUBLE, 4)
        comm.recv(buf, source=1, tag=7)
    # rank 1 exits immediately; rank 0 waits forever


def test_pending_recv_names_peer_and_tag():
    with pytest.raises(DeadlockError) as excinfo:
        run_mpi(
            _recv_from_silence,
            size=2,
            model_init_overhead=False,
            strict=False,
        )
    report = excinfo.value.report
    assert report.blocked_ranks() == (0,)
    (entry,) = report.entries
    assert entry.kind == "recv"
    assert "recv from 1 tag 7" in entry.detail


def test_deadlock_report_json_round_trip():
    with pytest.raises(DeadlockError) as excinfo:
        run_mpi(_crossed_sends, size=2, model_init_overhead=False)
    parsed = json.loads(excinfo.value.report.to_json_str())
    assert parsed["kind"] == "deadlock"
    assert parsed["blocked"] == 2
    assert {e["rank"] for e in parsed["entries"]} == {0, 1}
