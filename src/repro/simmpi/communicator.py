"""Communicators: process groups, point-to-point calls, collectives.

A :class:`Communicator` is a group of global ranks plus a context id.
Like in MPI, all addressing inside a communicator uses *local* ranks;
trace events translate to global ranks so the analyzer can localize
findings in the world (as EXPERT does in figure 3.5, where a
communicator-local root 1 is reported as global rank 9).
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

import numpy as np

from ..simkernel import current_process
from ..trace.api import current_instrumentation
from . import collectives as _coll
from .buffers import MpiBuf, MpiVBuf
from .datatypes import MPI_LONG, Datatype, Op
from .errors import InvalidRankError, InvalidTagError, MpiError
from .request import Request
from .status import ANY_SOURCE, ANY_TAG, PROC_NULL, Status

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import MpiWorld

#: number of internal tag slots reserved per collective instance
_COLL_TAG_SLOTS = 64


class Communicator:
    """A simulated MPI communicator."""

    def __init__(
        self,
        world: "MpiWorld",
        group: Sequence[int],
        comm_id: int,
        name: str,
    ):
        if len(set(group)) != len(group):
            raise MpiError(f"duplicate ranks in communicator group: {group}")
        self.world = world
        self.group = tuple(group)
        self.comm_id = comm_id
        self.name = name
        self._g2l = {g: i for i, g in enumerate(self.group)}
        # Per-local-rank collective sequence numbers.  MPI requires all
        # ranks of a communicator to issue collectives in the same
        # order, so independently-kept counters always agree.
        self._coll_seq: dict[int, int] = defaultdict(int)

    # ------------------------------------------------------------------
    # group queries
    # ------------------------------------------------------------------

    def rank(self) -> int:
        """Local rank of the calling process (``MPI_Comm_rank``)."""
        g = current_process().context.get("mpi_rank")
        if g is None:
            raise MpiError("not inside an MPI rank process")
        try:
            return self._g2l[g]
        except KeyError:
            raise MpiError(
                f"global rank {g} is not a member of {self.name}"
            ) from None

    def size(self) -> int:
        """Number of processes in the communicator (``MPI_Comm_size``)."""
        return len(self.group)

    def global_rank(self, local: int) -> int:
        """Translate a local rank to the world rank."""
        self._check_rank(local)
        return self.group[local]

    def contains_global(self, g: int) -> bool:
        return g in self._g2l

    def _check_rank(self, r: int) -> None:
        if not 0 <= r < len(self.group):
            raise InvalidRankError(
                f"rank {r} out of range for {self.name} "
                f"(size {len(self.group)})"
            )

    # ------------------------------------------------------------------
    # instrumentation helpers
    # ------------------------------------------------------------------

    @contextmanager
    def _region(self, name: str) -> Iterator[None]:
        rec, loc = current_instrumentation()
        proc = current_process()
        if rec is not None:
            rec.enter(proc.sim.now, loc, name)
            if rec.intrusion_per_event:
                proc.sim.hold(rec.intrusion_per_event)
        try:
            yield
        finally:
            if rec is not None:
                rec.exit(proc.sim.now, loc, name)
                if rec.intrusion_per_event:
                    proc.sim.hold(rec.intrusion_per_event)

    # ------------------------------------------------------------------
    # point-to-point: nonblocking core
    # ------------------------------------------------------------------

    def _null_request(self, kind: str) -> Request:
        """An immediately-complete request (``MPI_PROC_NULL`` peer)."""
        proc = current_process()
        req = Request(kind, self, proc)
        req.status.source = PROC_NULL
        req._complete(proc.sim.now)
        return req

    def _post_isend(
        self,
        buf: MpiBuf,
        dest: int,
        tag: int,
        internal: bool = False,
    ) -> Request:
        buf.check_usable()
        if dest == PROC_NULL:
            return self._null_request("send")
        self._check_rank(dest)
        if not internal and tag < 0:
            raise InvalidTagError(f"user message tags must be >= 0: {tag}")
        proc = current_process()
        me = self.rank()
        req = Request("send", self, proc)
        msg_id = self.world.new_msg_id()
        rec, loc = current_instrumentation()
        if rec is not None:
            rec.send(
                proc.sim.now,
                loc,
                peer=self.global_rank(dest),
                tag=tag,
                comm_id=self.comm_id,
                nbytes=buf.nbytes,
                msg_id=msg_id,
                internal=internal,
            )
        self.world.engine.post_send(
            self,
            src=me,
            dst=dest,
            tag=tag,
            data=buf.data,
            count=buf.cnt,
            dtype=buf.type,
            internal=internal,
            request=req,
            msg_id=msg_id,
        )
        return req

    def _post_irecv(
        self,
        buf: MpiBuf,
        source: int,
        tag: int,
        internal: bool = False,
    ) -> Request:
        buf.check_usable()
        if source == PROC_NULL:
            return self._null_request("recv")
        if source != ANY_SOURCE:
            self._check_rank(source)
        if not internal and tag < 0 and tag != ANY_TAG:
            raise InvalidTagError(f"user message tags must be >= 0: {tag}")
        proc = current_process()
        me = self.rank()
        req = Request("recv", self, proc)
        post_time = proc.sim.now
        rec, loc = current_instrumentation()
        if rec is not None:

            def _record(at: float, req: Request = req) -> None:
                rec.recv(
                    at,
                    loc,
                    peer=self.global_rank(req.status.source),
                    tag=req.status.tag,
                    comm_id=self.comm_id,
                    nbytes=req.status.nbytes,
                    msg_id=req.status.msg_id,
                    post_time=post_time,
                    internal=internal,
                )

            req._on_complete = _record
        self.world.engine.post_recv(
            self,
            dst=me,
            src_spec=source,
            tag_spec=tag,
            buf_data=buf.data,
            buf_count=buf.cnt,
            dtype=buf.type,
            internal=internal,
            request=req,
        )
        return req

    # ------------------------------------------------------------------
    # point-to-point: public API
    # ------------------------------------------------------------------

    def isend(self, buf: MpiBuf, dest: int, tag: int = 0) -> Request:
        """Nonblocking send (``MPI_Isend``)."""
        with self._region("MPI_Isend"):
            req = self._post_isend(buf, dest, tag)
            proc = current_process()
            proc.sim.hold(self.world.transport.send_overhead)
        return req

    def irecv(
        self, buf: MpiBuf, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Request:
        """Nonblocking receive (``MPI_Irecv``)."""
        with self._region("MPI_Irecv"):
            req = self._post_irecv(buf, source, tag)
        return req

    def send(self, buf: MpiBuf, dest: int, tag: int = 0) -> None:
        """Blocking send (``MPI_Send``).

        With the eager protocol this returns after the local send
        overhead; with rendezvous it blocks until the receiver arrives
        -- the *late receiver* situation.
        """
        with self._region("MPI_Send"):
            req = self._post_isend(buf, dest, tag)
            req.wait()

    def recv(
        self,
        buf: MpiBuf,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
    ) -> Status:
        """Blocking receive (``MPI_Recv``).

        Blocks until a matching message has fully arrived; if the
        sender has not even started yet, the blocked time is the *late
        sender* pattern.
        """
        with self._region("MPI_Recv"):
            req = self._post_irecv(buf, source, tag)
            status = req.wait()
        return status

    def wait(self, request: Request) -> Status:
        """Complete one nonblocking operation (``MPI_Wait``)."""
        with self._region("MPI_Wait"):
            status = request.wait()
        return status

    def waitall(self, requests: Sequence[Request]) -> list[Status]:
        """Complete several nonblocking operations (``MPI_Waitall``)."""
        with self._region("MPI_Waitall"):
            statuses = [req.wait() for req in requests]
        return statuses

    def waitany(
        self, requests: Sequence[Request]
    ) -> tuple[int, Status]:
        """Complete the earliest-finishing request (``MPI_Waitany``).

        Returns ``(index, status)``.  Requests already consumed by a
        prior wait are skipped; it is an error if every request has
        already been waited on.
        """
        if not requests:
            raise MpiError("waitany on an empty request list")
        proc = current_process()
        with self._region("MPI_Waitany"):
            while True:
                pending = [
                    (req.completion_time, i)
                    for i, req in enumerate(requests)
                    if not req.waited
                ]
                if not pending:
                    raise MpiError(
                        "waitany: every request already completed"
                    )
                ready = [
                    (t, i) for t, i in pending if t is not None
                ]
                if ready:
                    t, i = min(ready)
                    status = requests[i].wait()
                    return i, status
                for _, i in pending:
                    requests[i]._waiters.append(proc)
                try:
                    proc.sim.passivate("MPI_Waitany")
                finally:
                    for _, i in pending:
                        requests[i]._remove_waiter(proc)

    def testall(self, requests: Sequence[Request]) -> bool:
        """True iff every request has completed by now (``MPI_Testall``).

        Unlike MPI, partially-completed requests are *not* consumed on
        a False result (our requests are idempotent handles), which
        keeps retry loops simple.
        """
        results = [req.test() for req in requests]  # no short-circuit:
        # each test() may consume a completed request and emit its
        # trace event, so every request gets polled exactly once.
        return all(results)

    def sendrecv(
        self,
        sendbuf: MpiBuf,
        dest: int,
        sendtag: int,
        recvbuf: MpiBuf,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
    ) -> Status:
        """Combined send and receive (``MPI_Sendrecv``), deadlock-free."""
        with self._region("MPI_Sendrecv"):
            rreq = self._post_irecv(recvbuf, source, recvtag)
            sreq = self._post_isend(sendbuf, dest, sendtag)
            sreq.wait()
            status = rreq.wait()
        return status

    def iprobe(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Optional[Status]:
        """Non-blocking envelope check (``MPI_Iprobe``).

        Returns the pending message's status if one is *available to
        receive now* (i.e. has arrived on the wire), else ``None``.
        The message stays queued.
        """
        proc = current_process()
        item = self.world.engine.find_send(
            self.comm_id, self.rank(), source, tag
        )
        if item is None:
            return None
        available = item.arrival if item.eager else item.send_start
        if available > proc.sim.now:
            return None
        return Status(
            source=item.src,
            tag=item.tag,
            count=item.count,
            nbytes=item.nbytes,
            msg_id=item.msg_id,
        )

    def probe(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Status:
        """Blocking envelope check (``MPI_Probe``).

        Blocks until a matching message is available to receive, then
        returns its status without consuming it.
        """
        proc = current_process()
        me = self.rank()
        engine = self.world.engine
        with self._region("MPI_Probe"):
            while True:
                item = engine.find_send(self.comm_id, me, source, tag)
                if item is not None:
                    available = (
                        item.arrival if item.eager else item.send_start
                    )
                    if available > proc.sim.now:
                        proc.sim.hold(available - proc.sim.now)
                    return Status(
                        source=item.src,
                        tag=item.tag,
                        count=item.count,
                        nbytes=item.nbytes,
                        msg_id=item.msg_id,
                    )
                engine.register_prober(self.comm_id, me, proc)
                try:
                    proc.sim.passivate("MPI_Probe")
                finally:
                    engine.unregister_prober(self.comm_id, me, proc)

    # ------------------------------------------------------------------
    # internal p2p used by collective algorithms
    # ------------------------------------------------------------------

    def _int_isend(
        self, data: np.ndarray, dtype: Datatype, dst: int, tag: int
    ) -> Request:
        buf = MpiBuf(type=dtype, cnt=len(data), data=np.asarray(data))
        return self._post_isend(buf, dst, tag, internal=True)

    def _int_irecv(
        self, data: np.ndarray, dtype: Datatype, src: int, tag: int
    ) -> Request:
        buf = MpiBuf(type=dtype, cnt=len(data), data=np.asarray(data))
        return self._post_irecv(buf, src, tag, internal=True)

    def _int_send(
        self, data: np.ndarray, dtype: Datatype, dst: int, tag: int
    ) -> None:
        self._int_isend(data, dtype, dst, tag).wait()

    def _int_recv(
        self, data: np.ndarray, dtype: Datatype, src: int, tag: int
    ) -> Status:
        return self._int_irecv(data, dtype, src, tag).wait()

    @staticmethod
    def _coll_tag(instance: int, step: int) -> int:
        if not 0 <= step < _COLL_TAG_SLOTS:
            raise MpiError(f"collective step {step} out of tag slots")
        return instance * _COLL_TAG_SLOTS + step

    def _next_instance(self) -> int:
        me = self.rank()
        seq = self._coll_seq[me]
        self._coll_seq[me] = seq + 1
        return seq

    # ------------------------------------------------------------------
    # collective operations
    # ------------------------------------------------------------------

    def _run_collective(
        self,
        op_name: str,
        algo,
        root: int = -1,
        bytes_sent: int = 0,
        bytes_recv: int = 0,
    ):
        """Shared wrapper: trace region + instance + CollExit event."""
        instance = self._next_instance()
        rec, loc = current_instrumentation()
        proc = current_process()
        enter_time = proc.sim.now
        if rec is not None:
            rec.enter(enter_time, loc, op_name)
            if rec.intrusion_per_event:
                proc.sim.hold(rec.intrusion_per_event)
        try:
            result = algo(instance)
        finally:
            if rec is not None:
                rec.coll_exit(
                    proc.sim.now,
                    loc,
                    op=op_name,
                    comm_id=self.comm_id,
                    instance=instance,
                    root=self.global_rank(root) if root >= 0 else -1,
                    enter_time=enter_time,
                    bytes_sent=bytes_sent,
                    bytes_recv=bytes_recv,
                )
                rec.exit(proc.sim.now, loc, op_name)
                if rec.intrusion_per_event:
                    proc.sim.hold(rec.intrusion_per_event)
        return result

    def barrier(self) -> None:
        """``MPI_Barrier`` (dissemination algorithm)."""
        self._run_collective(
            "MPI_Barrier", lambda inst: _coll.barrier(self, inst)
        )

    def bcast(self, buf: MpiBuf, root: int = 0) -> None:
        """``MPI_Bcast`` (binomial tree).

        Non-root ranks cannot complete before the root has entered --
        the dependence exploited by the *late broadcast* property.
        """
        buf.check_usable()
        self._check_rank(root)
        self._run_collective(
            "MPI_Bcast",
            lambda inst: _coll.bcast(self, buf, root, inst),
            root=root,
            bytes_sent=buf.nbytes,
        )

    def reduce(
        self,
        sendbuf: MpiBuf,
        recvbuf: Optional[MpiBuf],
        op: Op,
        root: int = 0,
    ) -> None:
        """``MPI_Reduce`` (binomial tree).

        The root's completion depends on every contributor -- the basis
        of the *early reduce* property (root enters long before the
        data can arrive).
        """
        sendbuf.check_usable()
        self._check_rank(root)
        if self.rank() == root and recvbuf is None:
            raise MpiError("root must supply a receive buffer to reduce")
        self._run_collective(
            "MPI_Reduce",
            lambda inst: _coll.reduce(self, sendbuf, recvbuf, op, root, inst),
            root=root,
            bytes_sent=sendbuf.nbytes,
        )

    def allreduce(self, sendbuf: MpiBuf, recvbuf: MpiBuf, op: Op) -> None:
        """``MPI_Allreduce`` (reduce to 0, then broadcast)."""
        sendbuf.check_usable()
        recvbuf.check_usable()
        self._run_collective(
            "MPI_Allreduce",
            lambda inst: _coll.allreduce(self, sendbuf, recvbuf, op, inst),
            bytes_sent=sendbuf.nbytes,
            bytes_recv=recvbuf.nbytes,
        )

    def scatter(
        self, sendbuf: Optional[MpiBuf], recvbuf: MpiBuf, root: int = 0
    ) -> None:
        """``MPI_Scatter`` (linear from root).

        ``sendbuf`` at the root holds ``size * recvbuf.cnt`` elements.
        """
        recvbuf.check_usable()
        self._check_rank(root)
        if self.rank() == root:
            if sendbuf is None:
                raise MpiError("root must supply a send buffer to scatter")
            sendbuf.check_usable()
            if sendbuf.cnt < recvbuf.cnt * self.size():
                raise MpiError("scatter send buffer too small at root")
        self._run_collective(
            "MPI_Scatter",
            lambda inst: _coll.scatter(self, sendbuf, recvbuf, root, inst),
            root=root,
            bytes_recv=recvbuf.nbytes,
        )

    def scatterv(self, vbuf: MpiVBuf, root: int = 0) -> None:
        """``MPI_Scatterv``: irregular scatter driven by a v-buffer."""
        vbuf.check_usable()
        self._check_rank(root)
        self._run_collective(
            "MPI_Scatterv",
            lambda inst: _coll.scatterv(self, vbuf, root, inst),
            root=root,
            bytes_recv=vbuf.buf.nbytes,
        )

    def gather(
        self, sendbuf: MpiBuf, recvbuf: Optional[MpiBuf], root: int = 0
    ) -> None:
        """``MPI_Gather`` (linear to root)."""
        sendbuf.check_usable()
        self._check_rank(root)
        if self.rank() == root:
            if recvbuf is None:
                raise MpiError("root must supply a receive buffer to gather")
            recvbuf.check_usable()
            if recvbuf.cnt < sendbuf.cnt * self.size():
                raise MpiError("gather receive buffer too small at root")
        self._run_collective(
            "MPI_Gather",
            lambda inst: _coll.gather(self, sendbuf, recvbuf, root, inst),
            root=root,
            bytes_sent=sendbuf.nbytes,
        )

    def gatherv(self, vbuf: MpiVBuf, root: int = 0) -> None:
        """``MPI_Gatherv``: irregular gather driven by a v-buffer."""
        vbuf.check_usable()
        self._check_rank(root)
        self._run_collective(
            "MPI_Gatherv",
            lambda inst: _coll.gatherv(self, vbuf, root, inst),
            root=root,
            bytes_sent=vbuf.buf.nbytes,
        )

    def allgather(self, sendbuf: MpiBuf, recvbuf: MpiBuf) -> None:
        """``MPI_Allgather`` (ring algorithm)."""
        sendbuf.check_usable()
        recvbuf.check_usable()
        if recvbuf.cnt < sendbuf.cnt * self.size():
            raise MpiError("allgather receive buffer too small")
        self._run_collective(
            "MPI_Allgather",
            lambda inst: _coll.allgather(self, sendbuf, recvbuf, inst),
            bytes_sent=sendbuf.nbytes,
            bytes_recv=recvbuf.nbytes,
        )

    def alltoall(self, sendbuf: MpiBuf, recvbuf: MpiBuf) -> None:
        """``MPI_Alltoall`` (pairwise exchange).

        Both buffers hold ``size * chunk`` elements; rank ``i`` receives
        chunk ``i`` of every peer.  As an NxN operation it synchronizes
        everyone with everyone -- the *imbalance at alltoall / wait at
        NxN* property.
        """
        sendbuf.check_usable()
        recvbuf.check_usable()
        sz = self.size()
        if sendbuf.cnt % sz or recvbuf.cnt < sendbuf.cnt:
            raise MpiError(
                "alltoall buffers must hold size*chunk elements"
            )
        self._run_collective(
            "MPI_Alltoall",
            lambda inst: _coll.alltoall(self, sendbuf, recvbuf, inst),
            bytes_sent=sendbuf.nbytes,
            bytes_recv=recvbuf.nbytes,
        )

    def scan(self, sendbuf: MpiBuf, recvbuf: MpiBuf, op: Op) -> None:
        """``MPI_Scan`` (linear chain prefix reduction)."""
        sendbuf.check_usable()
        recvbuf.check_usable()
        self._run_collective(
            "MPI_Scan",
            lambda inst: _coll.scan(self, sendbuf, recvbuf, op, inst),
            bytes_sent=sendbuf.nbytes,
        )

    def exscan(self, sendbuf: MpiBuf, recvbuf: MpiBuf, op: Op) -> None:
        """``MPI_Exscan`` (exclusive prefix; rank 0 gets zeros)."""
        sendbuf.check_usable()
        recvbuf.check_usable()
        self._run_collective(
            "MPI_Exscan",
            lambda inst: _coll.exscan(self, sendbuf, recvbuf, op, inst),
            bytes_sent=sendbuf.nbytes,
        )

    def reduce_scatter_block(
        self, sendbuf: MpiBuf, recvbuf: MpiBuf, op: Op
    ) -> None:
        """``MPI_Reduce_scatter_block``: reduce, then scatter equal
        blocks.  ``sendbuf`` holds ``size * recvbuf.cnt`` elements."""
        sendbuf.check_usable()
        recvbuf.check_usable()
        if sendbuf.cnt != recvbuf.cnt * self.size():
            raise MpiError(
                "reduce_scatter_block needs sendbuf of size*recv count"
            )
        self._run_collective(
            "MPI_Reduce_scatter",
            lambda inst: _coll.reduce_scatter_block(
                self, sendbuf, recvbuf, op, inst
            ),
            bytes_sent=sendbuf.nbytes,
            bytes_recv=recvbuf.nbytes,
        )

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------

    def split(self, color: int, key: int = 0) -> Optional["Communicator"]:
        """``MPI_Comm_split``: partition into sub-communicators by color.

        Ranks passing a negative color receive ``None`` (the analogue
        of ``MPI_UNDEFINED``).  Within a color, new ranks are ordered by
        ``(key, old rank)``.
        """

        def algo(instance: int) -> Optional["Communicator"]:
            me = self.rank()
            sz = self.size()
            record = np.array(
                [color, key, self.global_rank(me)], dtype=np.int64
            )
            table = np.zeros(3 * sz, dtype=np.int64)
            _coll.allgather_raw(self, record, table, instance, step_base=0)
            rows = table.reshape(sz, 3)
            if color < 0:
                return None
            members = sorted(
                (
                    (int(k), int(g))
                    for c, k, g in rows
                    if int(c) == color
                ),
            )
            group = tuple(g for _, g in members)
            comm_id = self.world.comm_id_for(
                (self.comm_id, instance, color), group
            )
            return Communicator(
                self.world,
                group,
                comm_id,
                f"{self.name}.split({color})",
            )

        return self._run_collective("MPI_Comm_split", algo)

    def dup(self) -> "Communicator":
        """``MPI_Comm_dup``: a congruent communicator in a new context."""

        def algo(instance: int) -> "Communicator":
            # Synchronize like a barrier; context creation is collective.
            _coll.barrier(self, instance)
            comm_id = self.world.comm_id_for(
                (self.comm_id, instance, "dup"), self.group
            )
            return Communicator(
                self.world, self.group, comm_id, f"{self.name}.dup"
            )

        return self._run_collective("MPI_Comm_dup", algo)

    def __repr__(self) -> str:
        return (
            f"<Communicator {self.name} id={self.comm_id} "
            f"size={len(self.group)}>"
        )
