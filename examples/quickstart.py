#!/usr/bin/env python
"""Quickstart: run one ATS property function and analyze it.

The three-step workflow of the APART Test Suite:

1. pick a performance property function from the registry,
2. run it as a synthetic test program (simulated MPI ranks),
3. feed the trace to an automatic performance analysis tool -- here
   the bundled EXPERT-style analyzer -- and check it finds exactly the
   property the program was built to exhibit.
"""

from repro import analyze_run, format_expert_report, get_property


def main() -> None:
    # 1. the paper's flagship pattern: a receiver blocked by a late send
    spec = get_property("late_sender")
    print(f"property function: {spec.name} -- {spec.description}")
    print(f"expected analyzer finding(s): {', '.join(spec.expected)}\n")

    # 2. run it on 8 simulated ranks with default severity parameters
    result = spec.run(size=8)
    print(result.timeline(width=100, title="late_sender on 8 ranks"))

    # 3. automatic analysis: the EXPERT-style three-pane report
    analysis = analyze_run(result)
    print(format_expert_report(analysis))

    detected = analysis.detected(threshold=0.01)
    assert "late_sender" in detected, "the tool missed the property!"
    print(f"detected above 1% severity: {', '.join(detected)}")
    print("the synthetic program exhibits exactly what it promised.")


if __name__ == "__main__":
    main()
