"""Simulated OpenMP runtime.

Fork/join thread teams on the discrete-event kernel: parallel regions,
explicit and implicit barriers, worksharing loops with static/dynamic/
guided schedules, critical sections, single/master/sections constructs
and team reductions -- everything the OpenMP performance properties of
the paper (and the hybrid compositions of section 3.3) need.
"""

from .locks import LOCK_REGION, OmpLock
from .region import (
    EXPLICIT_BARRIER,
    IBARRIER_FOR,
    IBARRIER_PARALLEL,
    IBARRIER_SECTIONS,
    IBARRIER_SINGLE,
    omp_barrier,
    omp_critical,
    omp_for,
    omp_master,
    omp_parallel,
    omp_sections,
    omp_single,
)
from .runtime import OmpRunResult, run_omp
from .team import (
    OmpError,
    Team,
    current_team,
    omp_get_num_threads,
    omp_get_thread_num,
    require_team,
)

__all__ = [
    "EXPLICIT_BARRIER",
    "IBARRIER_FOR",
    "IBARRIER_PARALLEL",
    "IBARRIER_SECTIONS",
    "IBARRIER_SINGLE",
    "LOCK_REGION",
    "OmpLock",
    "OmpError",
    "OmpRunResult",
    "Team",
    "current_team",
    "omp_barrier",
    "omp_critical",
    "omp_for",
    "omp_get_num_threads",
    "omp_get_thread_num",
    "omp_master",
    "omp_parallel",
    "omp_sections",
    "omp_single",
    "require_team",
    "run_omp",
]
