"""A 2-D wavefront sweep (Sweep3D/LU-style dependency pattern).

The grid's rows are distributed across the ranks; computing block
``(row, col)`` requires block ``(row-1, col)`` from the previous rank.
A diagonal wave therefore sweeps the grid.  Documented performance
behaviour: pipelined startup/drain skew -- rank ``r`` idles ``r`` block
times at the start of each sweep (*late sender* at the first columns),
shrinking relative to total as ``ncols`` grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simmpi.buffers import alloc_mpi_buf
from ..simmpi.communicator import Communicator
from ..simmpi.datatypes import MPI_DOUBLE
from ..trace.api import region
from ..work import do_work

TAG_WAVE = 9


@dataclass(frozen=True)
class WavefrontConfig:
    """Parameters of one sweep."""

    ncols: int = 12
    block_time: float = 0.002
    sweeps: int = 2


def wavefront(
    comm: Communicator, config: WavefrontConfig = WavefrontConfig()
) -> float:
    """Run the sweeps; returns this rank's accumulated boundary value."""
    me = comm.rank()
    sz = comm.size()
    edge = alloc_mpi_buf(MPI_DOUBLE, 1)
    acc = 0.0
    with region("wavefront"):
        for sweep in range(config.sweeps):
            for col in range(config.ncols):
                if me > 0:
                    comm.recv(edge, me - 1, TAG_WAVE)
                    upstream = float(edge.data[0])
                else:
                    upstream = float(sweep + col)
                do_work(config.block_time)
                value = upstream + 1.0  # each row adds one
                acc += value
                if me + 1 < sz:
                    edge.data[0] = value
                    comm.send(edge, me + 1, TAG_WAVE)
    return acc
