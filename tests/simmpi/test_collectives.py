"""Collective operation semantics and timing dependencies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Val2Distr, df_linear
from repro.simmpi import (
    MPI_DOUBLE,
    MPI_INT,
    MPI_MAX,
    MPI_MIN,
    MPI_PROD,
    MPI_SUM,
    MpiError,
    alloc_mpi_buf,
    alloc_mpi_vbuf,
    run_mpi,
)
from repro.simkernel import SimulationCrashed
from repro.work import do_work

FAST = dict(model_init_overhead=False)


@pytest.mark.parametrize("size", [1, 2, 3, 4, 7, 8])
def test_barrier_releases_at_last_arrival(size):
    exits = {}

    def main(comm):
        me = comm.rank()
        do_work(0.01 * (me + 1))
        comm.barrier()
        exits[me] = comm.world.sim.now

    run_mpi(main, size, **FAST)
    slowest_arrival = 0.01 * size
    for me, t in exits.items():
        assert t >= slowest_arrival - 1e-9


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast_delivers_root_data(size, root):
    root = size - 1 if root == "last" else root

    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 16)
        if comm.rank() == root:
            buf.data[:] = np.arange(16) + 100
        comm.bcast(buf, root=root)
        assert list(buf.data) == list(range(100, 116))

    run_mpi(main, size, **FAST)


def test_bcast_nonroots_wait_for_late_root():
    exits = {}

    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 4)
        if comm.rank() == 2:
            do_work(0.1)  # late root
        comm.bcast(buf, root=2)
        exits[comm.rank()] = comm.world.sim.now

    run_mpi(main, 4, **FAST)
    for rank, t in exits.items():
        assert t >= 0.1  # nobody can finish before the root enters


@pytest.mark.parametrize(
    "op,expected",
    [
        (MPI_SUM, sum(range(5))),
        (MPI_MAX, 4),
        (MPI_MIN, 0),
        (MPI_PROD, 0),
    ],
)
def test_reduce_operations(op, expected):
    def main(comm):
        me = comm.rank()
        sb = alloc_mpi_buf(MPI_DOUBLE, 3)
        sb.fill(me)
        rb = alloc_mpi_buf(MPI_DOUBLE, 3) if me == 1 else None
        comm.reduce(sb, rb, op, root=1)
        if me == 1:
            assert np.all(rb.data == expected)

    run_mpi(main, 5, **FAST)


def test_reduce_root_waits_for_contributors():
    elapsed = {}

    def main(comm):
        me = comm.rank()
        sb = alloc_mpi_buf(MPI_DOUBLE, 1)
        rb = alloc_mpi_buf(MPI_DOUBLE, 1) if me == 0 else None
        if me != 0:
            do_work(0.05)  # contributors are late; root enters early
        t0 = comm.world.sim.now
        comm.reduce(sb, rb, MPI_SUM, root=0)
        elapsed[me] = comm.world.sim.now - t0

    run_mpi(main, 4, **FAST)
    assert elapsed[0] == pytest.approx(0.05, rel=0.05)  # early reduce wait


def test_allreduce_everyone_gets_result():
    def main(comm):
        me, sz = comm.rank(), comm.size()
        sb = alloc_mpi_buf(MPI_INT, 2)
        sb.fill(me + 1)
        rb = alloc_mpi_buf(MPI_INT, 2)
        comm.allreduce(sb, rb, MPI_SUM)
        assert np.all(rb.data == sz * (sz + 1) // 2)

    for size in (1, 2, 3, 6, 8):
        run_mpi(main, size, **FAST)


def test_scatter_distributes_chunks():
    def main(comm):
        me, sz = comm.rank(), comm.size()
        k = 3
        sb = alloc_mpi_buf(MPI_INT, k * sz) if me == 1 else None
        if me == 1:
            sb.data[:] = np.arange(k * sz)
        rb = alloc_mpi_buf(MPI_INT, k)
        comm.scatter(sb, rb, root=1)
        assert list(rb.data) == [me * k, me * k + 1, me * k + 2]

    run_mpi(main, 5, **FAST)


def test_gather_collects_chunks():
    def main(comm):
        me, sz = comm.rank(), comm.size()
        sb = alloc_mpi_buf(MPI_INT, 2)
        sb.fill(me)
        rb = alloc_mpi_buf(MPI_INT, 2 * sz) if me == 0 else None
        comm.gather(sb, rb, root=0)
        if me == 0:
            assert list(rb.data) == [0, 0, 1, 1, 2, 2, 3, 3]

    run_mpi(main, 4, **FAST)


def test_scatterv_gatherv_with_distribution_counts():
    def main(comm):
        me, sz = comm.rank(), comm.size()
        dd = Val2Distr(low=1.0, high=float(sz))
        vbuf = alloc_mpi_vbuf(MPI_INT, df_linear, dd, 1.0, comm)
        # counts are 1..sz by the linear distribution
        assert vbuf.counts == [round(1 + (sz - 1) * i / (sz - 1)) if sz > 1
                               else 1 for i in range(sz)]
        if me == 0:
            vbuf.rootbuf.data[:] = np.arange(vbuf.total)
        comm.scatterv(vbuf, root=0)
        lo = vbuf.displs[me]
        assert list(vbuf.buf.data) == list(range(lo, lo + vbuf.counts[me]))
        # round trip: gather the chunks back
        vbuf.rootbuf.data[:] = -1
        comm.gatherv(vbuf, root=0)
        if me == 0:
            assert list(vbuf.rootbuf.data) == list(range(vbuf.total))

    run_mpi(main, 4, **FAST)


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
def test_allgather_ring(size):
    def main(comm):
        me, sz = comm.rank(), comm.size()
        sb = alloc_mpi_buf(MPI_INT, 2)
        sb.data[:] = [me, me * 10]
        rb = alloc_mpi_buf(MPI_INT, 2 * sz)
        comm.allgather(sb, rb)
        expected = []
        for r in range(sz):
            expected += [r, r * 10]
        assert list(rb.data) == expected

    run_mpi(main, size, **FAST)


@pytest.mark.parametrize("size", [1, 2, 4, 6])
def test_alltoall_pairwise(size):
    def main(comm):
        me, sz = comm.rank(), comm.size()
        sb = alloc_mpi_buf(MPI_INT, sz)
        sb.data[:] = me * 100 + np.arange(sz)
        rb = alloc_mpi_buf(MPI_INT, sz)
        comm.alltoall(sb, rb)
        assert list(rb.data) == [p * 100 + me for p in range(sz)]

    run_mpi(main, size, **FAST)


def test_scan_prefix_sums():
    def main(comm):
        me = comm.rank()
        sb = alloc_mpi_buf(MPI_INT, 1)
        sb.data[0] = me + 1
        rb = alloc_mpi_buf(MPI_INT, 1)
        comm.scan(sb, rb, MPI_SUM)
        assert rb.data[0] == (me + 1) * (me + 2) // 2

    run_mpi(main, 6, **FAST)


def test_collectives_compose_in_sequence():
    """Several different collectives back to back must not cross-match."""

    def main(comm):
        me, sz = comm.rank(), comm.size()
        b = alloc_mpi_buf(MPI_INT, 4)
        if me == 0:
            b.fill(1)
        comm.bcast(b, 0)
        comm.barrier()
        s = alloc_mpi_buf(MPI_INT, 4)
        s.fill(me)
        r = alloc_mpi_buf(MPI_INT, 4)
        comm.allreduce(s, r, MPI_MAX)
        assert np.all(r.data == sz - 1)
        comm.barrier()
        comm.bcast(b, sz - 1)
        assert np.all(b.data == 1)

    run_mpi(main, 7, **FAST)


def test_reduce_without_root_buffer_rejected():
    def main(comm):
        sb = alloc_mpi_buf(MPI_INT, 1)
        comm.reduce(sb, None, MPI_SUM, root=comm.rank())

    with pytest.raises(SimulationCrashed) as info:
        run_mpi(main, 1, **FAST)
    assert isinstance(info.value.original, MpiError)


def test_scatter_undersized_root_buffer_rejected():
    def main(comm):
        me, sz = comm.rank(), comm.size()
        sb = alloc_mpi_buf(MPI_INT, sz)  # needs sz * 2
        rb = alloc_mpi_buf(MPI_INT, 2)
        comm.scatter(sb if me == 0 else None, rb, root=0)

    with pytest.raises(SimulationCrashed) as info:
        run_mpi(main, 3, **FAST)
    assert isinstance(info.value.original, MpiError)


def test_alltoall_requires_divisible_buffers():
    def main(comm):
        sb = alloc_mpi_buf(MPI_INT, 5)  # not divisible by size 3
        rb = alloc_mpi_buf(MPI_INT, 5)
        comm.alltoall(sb, rb)

    with pytest.raises(SimulationCrashed) as info:
        run_mpi(main, 3, **FAST)
    assert isinstance(info.value.original, MpiError)


@given(
    size=st.integers(min_value=1, max_value=9),
    values=st.lists(
        st.integers(min_value=-1000, max_value=1000),
        min_size=9,
        max_size=9,
    ),
)
@settings(max_examples=15, deadline=None)
def test_allreduce_matches_numpy_reference(size, values):
    results = {}

    def main(comm):
        me = comm.rank()
        sb = alloc_mpi_buf(MPI_INT, 1)
        sb.data[0] = values[me]
        rb = alloc_mpi_buf(MPI_INT, 1)
        comm.allreduce(sb, rb, MPI_SUM)
        results[me] = int(rb.data[0])

    run_mpi(main, size, **FAST)
    expected = sum(values[:size])
    assert all(v == expected for v in results.values())
