"""Simulated processes.

Each :class:`SimProcess` wraps an OS thread, but at most one thread in a
simulation ever runs at a time: a process runs until it performs a
blocking kernel call (``hold``, ``passivate``, a sync-primitive wait),
at which point control transfers back to the scheduler.  This gives
coroutine-like determinism while letting user code -- the ATS property
functions -- be written in the natural blocking style of the paper's C
API, with no ``yield``/``await`` noise.
"""

from __future__ import annotations

import enum
import threading
from typing import TYPE_CHECKING, Any, Callable, Optional

from .errors import NotInProcessError, ProcessKilled

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import Simulator


class ProcState(enum.Enum):
    """Lifecycle states of a simulated process."""

    CREATED = "created"       # spawned, thread not yet started
    SCHEDULED = "scheduled"   # in the event heap, will run at a known time
    RUNNING = "running"       # currently executing (exactly one at a time)
    PASSIVE = "passive"       # blocked, waiting for an activate()
    FINISHED = "finished"     # body returned normally
    FAILED = "failed"         # body raised an exception
    KILLED = "killed"         # torn down by the simulator


_tls = threading.local()


def current_process() -> "SimProcess":
    """Return the :class:`SimProcess` executing on the calling thread.

    Raises :class:`NotInProcessError` when called from outside a
    simulation (e.g. from the scheduler thread or plain user code).
    """
    proc = getattr(_tls, "process", None)
    if proc is None:
        raise NotInProcessError(
            "this operation is only valid inside a simulated process"
        )
    return proc


def maybe_current_process() -> Optional["SimProcess"]:
    """Like :func:`current_process` but returns ``None`` outside processes."""
    return getattr(_tls, "process", None)


class SimProcess:
    """One simulated locus of execution (an MPI rank, an OpenMP thread...).

    Created via :meth:`repro.simkernel.Simulator.spawn`; not instantiated
    directly by user code.
    """

    def __init__(
        self,
        sim: "Simulator",
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        name: str,
        pid: int,
    ):
        self.sim = sim
        self.name = name
        self.pid = pid
        self._fn = fn
        self._args = args
        self._kwargs = kwargs
        self.state = ProcState.CREATED
        self.result: Any = None
        self.exception: BaseException | None = None
        #: free-form note describing what the process is blocked on;
        #: surfaced in DeadlockError messages.
        self.waiting_on: str = ""
        #: arbitrary per-process storage used by higher layers (MPI rank,
        #: OpenMP team bindings, trace location, RNG stream ...).
        self.context: dict[str, Any] = {}
        self._kill_requested = False
        self._resume = threading.Semaphore(0)
        self._yielded = threading.Semaphore(0)
        self._thread = threading.Thread(
            target=self._bootstrap, name=f"sim:{name}", daemon=True
        )
        self._started = False

    # ------------------------------------------------------------------
    # thread-side machinery
    # ------------------------------------------------------------------

    def _bootstrap(self) -> None:
        _tls.process = self
        self._resume.acquire()
        try:
            if self._kill_requested:
                self.state = ProcState.KILLED
                return
            try:
                self.result = self._fn(*self._args, **self._kwargs)
                self.state = ProcState.FINISHED
            except ProcessKilled:
                self.state = ProcState.KILLED
            except BaseException as exc:  # noqa: BLE001 - report any crash
                self.exception = exc
                self.state = ProcState.FAILED
        finally:
            _tls.process = None
            self._yielded.release()

    def _switch_out(self) -> None:
        """Yield control to the scheduler; return when resumed.

        Must only be called from the process's own thread.  All shared
        simulator state must be updated *before* calling, because the
        scheduler thread resumes as soon as ``_yielded`` is released.
        """
        self._yielded.release()
        self._resume.acquire()
        if self._kill_requested:
            raise ProcessKilled()

    # ------------------------------------------------------------------
    # scheduler-side machinery
    # ------------------------------------------------------------------

    def _resume_and_wait(self) -> None:
        """Run the process until it blocks again (scheduler side)."""
        self.state = ProcState.RUNNING
        if not self._started:
            self._started = True
            self._thread.start()
        self._resume.release()
        self._yielded.acquire()

    def _teardown(self) -> None:
        """Force the process's thread to exit (scheduler side)."""
        if self.state in (
            ProcState.FINISHED,
            ProcState.FAILED,
            ProcState.KILLED,
        ):
            return
        self._kill_requested = True
        if not self._started:
            # Thread never ran; nothing to unwind.
            self.state = ProcState.KILLED
            return
        self._resume.release()
        self._yielded.acquire()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        """True while the process has not finished, failed or been killed."""
        return self.state in (
            ProcState.CREATED,
            ProcState.SCHEDULED,
            ProcState.RUNNING,
            ProcState.PASSIVE,
        )

    def __repr__(self) -> str:
        return f"<SimProcess {self.name} pid={self.pid} {self.state.value}>"
