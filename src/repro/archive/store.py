"""Content-addressed blob store + append-only run manifest.

The store is a directory::

    <root>/
      manifest.jsonl      append-only run journal (healed like a
                          resilience checkpoint: a partial final line
                          from a killed process is cut, never fatal)
      objects/ab/cdef...  gzip-compressed blobs

Blobs come in two flavours sharing one object directory:

* **content-addressed** (:meth:`put_blob`): named by the SHA-256 of
  the *uncompressed* payload, so identical traces deduplicate for free
  and the digest doubles as the trace's identity in cache keys;
* **key-addressed** (:meth:`put_named`): named by the SHA-256 of a
  caller-supplied key string -- how the incremental analysis cache
  finds a ``(trace digest, detector fingerprint)`` cell without any
  index file.

All blobs go through the deterministic gzip codec traces use
(:func:`repro.trace.io.gzip_bytes`, ``mtime=0``), so a trace blob
copied to a ``.jsonl.gz`` file *is* a readable trace.  Writes are
atomic (temp file + rename) so concurrent batch analysis never
exposes a half-written cell.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
import threading
from pathlib import Path
from typing import Dict, Optional, Union

from ..obs.instruments import archive_metrics
from ..resilience.checkpoint import CheckpointError, CheckpointJournal
from ..trace.io import gunzip_bytes, gzip_bytes

MANIFEST_FORMAT = "ats-archive-manifest"


def _chaos_injector():
    """The installed host-fault injector, or None (see chaos.inject)."""
    mod = sys.modules.get("repro.chaos.inject")
    return None if mod is None else mod.active()


class ArchiveError(Exception):
    """A structural problem with an archive (missing blob, bad root)."""


def sha256_hex(data: Union[str, bytes]) -> str:
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def canonical_json(obj) -> str:
    """Stable serialization for identities and fingerprints."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class ArchiveStore:
    """One archive directory: blobs + the run manifest journal."""

    def __init__(self, root: Union[str, Path], fsync: bool = False):
        self.root = Path(root)
        self.objects = self.root / "objects"
        #: durable mode: blob temp files are fsync'd before the rename
        #: and manifest records before acknowledgment -- what the
        #: crash-safe analysis service runs with.
        self.fsync = fsync
        self._manifest = CheckpointJournal(
            self.root / "manifest.jsonl", fmt=MANIFEST_FORMAT,
            fsync=fsync,
        )
        #: queued ``(run_id, payload)`` records while deferred (see
        #: :meth:`begin_deferred`); ``None`` means write-through.
        self._deferred: Optional[list] = None
        #: serializes manifest appends/reads: blob writes are already
        #: atomic-rename safe under concurrency, but the journal is one
        #: shared buffered fd, and the analysis service records runs
        #: from multiple worker threads at once.
        self._manifest_lock = threading.Lock()

    # ------------------------------------------------------------------
    # blobs
    # ------------------------------------------------------------------

    def _blob_path(self, digest: str) -> Path:
        return self.objects / digest[:2] / digest[2:]

    def _write_blob(self, digest: str, data: bytes) -> bool:
        """Compress and atomically store; False when already present."""
        path = self._blob_path(digest)
        if path.exists():
            return False
        path.parent.mkdir(parents=True, exist_ok=True)
        compressed = gzip_bytes(data)
        injector = _chaos_injector()
        if injector is not None:
            injector.blob_write(path, compressed)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".blob"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(compressed)
                if self.fsync:
                    fh.flush()
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        metrics = archive_metrics()
        if metrics is not None:
            metrics.blob_bytes.inc(len(compressed))
        return True

    def put_blob(self, data: bytes) -> str:
        """Store content-addressed; returns the payload digest."""
        digest = sha256_hex(data)
        self._write_blob(digest, data)
        return digest

    def has_blob(self, digest: str) -> bool:
        return self._blob_path(digest).exists()

    def get_blob(self, digest: str) -> bytes:
        """Load and decompress a content-addressed blob."""
        path = self._blob_path(digest)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            raise ArchiveError(
                f"archive {self.root}: missing blob {digest[:12]}"
            ) from None
        data = gunzip_bytes(raw)
        if sha256_hex(data) != digest:
            raise ArchiveError(
                f"archive {self.root}: blob {digest[:12]} fails its "
                "digest check (corrupt object)"
            )
        return data

    # ------------------------------------------------------------------
    # key-addressed cells (the analysis cache)
    # ------------------------------------------------------------------

    def put_named(self, key: str, data: bytes) -> str:
        """Store under the digest of ``key``; returns that digest."""
        digest = sha256_hex(key)
        self._write_blob(digest, data)
        return digest

    def get_named(self, key: str) -> Optional[bytes]:
        """Load a key-addressed cell, or None when absent."""
        path = self._blob_path(sha256_hex(key))
        try:
            return gunzip_bytes(path.read_bytes())
        except FileNotFoundError:
            return None

    def has_named(self, key: str) -> bool:
        return self._blob_path(sha256_hex(key)).exists()

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------

    def record_run(self, run_id: str, payload: dict) -> None:
        """Append one run record (flushed immediately, kill-safe).

        In deferred mode the record is queued instead of written --
        see :meth:`begin_deferred`.
        """
        if self._deferred is not None:
            self._deferred.append([run_id, payload])
            return
        with self._manifest_lock:
            self._manifest.record(run_id, payload)

    def begin_deferred(self) -> None:
        """Queue manifest records in memory instead of writing them.

        Blob writes are fork-safe -- atomic (temp file + rename) and
        content-addressed, so concurrent children storing the same
        trace race benignly.  The manifest journal is *not*: it is a
        shared append-only fd, and forked children each inherit a copy
        whose buffered appends would interleave or duplicate.  A forked
        sweep therefore flips its child-side archive into deferred
        mode: children write blobs directly but queue manifest records,
        ship them home on the result envelope
        (:meth:`drain_deferred`), and the parent replays them through
        its own journal in a single writer.
        """
        if self._deferred is None:
            self._deferred = []

    def drain_deferred(self) -> list:
        """Return and clear the queued records (JSON-safe pairs).

        The store stays in deferred mode; each ``[run_id, payload]``
        pair is meant to be replayed with :meth:`record_run` on the
        parent's store.
        """
        if self._deferred is None:
            return []
        drained = self._deferred
        self._deferred = []
        return drained

    def load_manifest(self) -> Dict[str, dict]:
        """``run_id -> payload`` in first-recorded order (last wins).

        A partial final line (killed writer) is healed away exactly
        like a resilience checkpoint; deeper corruption raises
        :class:`ArchiveError`.
        """
        try:
            with self._manifest_lock:
                return self._manifest.load()
        except CheckpointError as exc:
            raise ArchiveError(str(exc)) from exc

    def flush(self) -> None:
        """Force buffered manifest records to disk (drain/shutdown)."""
        with self._manifest_lock:
            self._manifest.flush()

    def close(self) -> None:
        self._manifest.close()

    def __enter__(self) -> "ArchiveStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
