"""Detector edge cases on hand-built traces, and suite-wide
consistency between registry, detectors, ASL catalog and hierarchy."""

import pytest

from repro.analysis import AnalysisConfig
from repro.analysis.detectors import (
    DEFAULT_DETECTORS,
    EarlyRootDetector,
    InitOverheadDetector,
    LateRootDetector,
    OmpImbalanceDetector,
    WaitAtNxNDetector,
)
from repro.trace import Location, TraceRecorder

L0, L1, L2 = Location(0, 0), Location(1, 0), Location(2, 0)
CFG = AnalysisConfig(noise_floor=1e-6)


def test_late_root_without_root_event_is_skipped():
    """A collective whose root is outside the traced location set
    (e.g. a filtered trace slice) must not crash the detector."""
    rec = TraceRecorder()
    rec.coll_exit(1.0, L1, op="MPI_Bcast", comm_id=0, instance=0,
                  root=5, enter_time=0.5)
    assert list(LateRootDetector().detect(rec.events, CFG)) == []


def test_late_root_prompt_root_produces_nothing():
    rec = TraceRecorder()
    for loc, enter in ((L0, 0.0), (L1, 0.5), (L2, 0.5)):
        rec.coll_exit(0.6, loc, op="MPI_Bcast", comm_id=0, instance=0,
                      root=0, enter_time=enter)
    # root entered FIRST: nobody waits for it
    assert list(LateRootDetector().detect(rec.events, CFG)) == []


def test_early_root_without_contributors_is_skipped():
    rec = TraceRecorder()
    rec.coll_exit(1.0, L0, op="MPI_Reduce", comm_id=0, instance=0,
                  root=0, enter_time=0.0)
    assert list(EarlyRootDetector().detect(rec.events, CFG)) == []


def test_early_root_late_root_produces_nothing():
    rec = TraceRecorder()
    rec.coll_exit(1.0, L0, op="MPI_Reduce", comm_id=0, instance=0,
                  root=0, enter_time=0.9)  # root arrives last
    rec.coll_exit(1.0, L1, op="MPI_Reduce", comm_id=0, instance=0,
                  root=0, enter_time=0.1)
    assert list(EarlyRootDetector().detect(rec.events, CFG)) == []


def test_nxn_single_participant_no_wait():
    rec = TraceRecorder()
    rec.coll_exit(1.0, L0, op="MPI_Alltoall", comm_id=0, instance=0,
                  root=-1, enter_time=0.0)
    assert list(WaitAtNxNDetector().detect(rec.events, CFG)) == []


def test_nxn_distinct_instances_not_mixed():
    rec = TraceRecorder()
    # instance 0: both enter at 0.0 (balanced)
    for loc in (L0, L1):
        rec.coll_exit(0.1, loc, op="MPI_Alltoall", comm_id=0,
                      instance=0, root=-1, enter_time=0.0)
    # instance 1: L1 late
    rec.coll_exit(1.1, L0, op="MPI_Alltoall", comm_id=0, instance=1,
                  root=-1, enter_time=0.2)
    rec.coll_exit(1.1, L1, op="MPI_Alltoall", comm_id=0, instance=1,
                  root=-1, enter_time=1.0)
    findings = list(WaitAtNxNDetector().detect(rec.events, CFG))
    assert len(findings) == 1
    assert findings[0].loc == L0
    assert findings[0].wait_time == pytest.approx(0.8)


def test_init_overhead_counts_both_init_and_finalize():
    rec = TraceRecorder()
    rec.enter(0.0, L0, "MPI_Init")
    rec.exit(0.5, L0, "MPI_Init")
    rec.enter(9.0, L0, "MPI_Finalize")
    rec.exit(9.25, L0, "MPI_Finalize")
    findings = list(InitOverheadDetector().detect(rec.events, CFG))
    assert sum(f.wait_time for f in findings) == pytest.approx(0.75)


def test_omp_imbalance_ignores_unknown_regions():
    rec = TraceRecorder()
    rec.enter(0.0, L0, "omp_something_else")
    rec.exit(1.0, L0, "omp_something_else")
    assert list(OmpImbalanceDetector().detect(rec.events, CFG)) == []


# ----------------------------------------------------------------------
# suite-wide consistency
# ----------------------------------------------------------------------

def test_every_detector_output_is_in_asl_catalog():
    from repro.asl import ANALYZER_PROPERTY_IDS

    producible = set()
    for detector in DEFAULT_DETECTORS:
        producible |= set(detector.produces)
    missing = producible - set(ANALYZER_PROPERTY_IDS)
    assert not missing, f"detector outputs missing from ASL: {missing}"


def test_every_detector_output_is_in_hierarchy():
    from repro.analysis.hierarchy import PARENT

    producible = set()
    for detector in DEFAULT_DETECTORS:
        producible |= set(detector.produces)
    missing = producible - set(PARENT)
    assert not missing, f"detector outputs missing from hierarchy: {missing}"


def test_every_registry_expectation_is_producible():
    from repro.core import list_properties

    producible = set()
    for detector in DEFAULT_DETECTORS:
        producible |= set(detector.produces)
    for spec in list_properties():
        unknown = set(spec.expected) - producible
        assert not unknown, (
            f"{spec.name} expects {unknown} which no detector produces"
        )


def test_registry_names_are_unique_regions():
    """Property function names double as trace regions; collisions with
    runtime region names would corrupt call-path localization."""
    from repro.core import list_properties

    runtime_regions = {
        "MPI_Send", "MPI_Recv", "MPI_Isend", "MPI_Irecv", "MPI_Wait",
        "MPI_Waitall", "MPI_Waitany", "MPI_Sendrecv", "MPI_Probe",
        "MPI_Barrier", "MPI_Bcast", "MPI_Reduce", "MPI_Allreduce",
        "MPI_Scatter", "MPI_Scatterv", "MPI_Gather", "MPI_Gatherv",
        "MPI_Allgather", "MPI_Alltoall", "MPI_Scan", "MPI_Exscan",
        "MPI_Reduce_scatter", "MPI_Comm_split", "MPI_Comm_dup",
        "MPI_Cart_create", "MPI_Init", "MPI_Finalize",
        "omp_parallel", "omp_barrier", "omp_for", "omp_sections",
        "omp_critical", "omp_lock", "omp_ibarrier_parallel",
        "omp_ibarrier_for", "omp_ibarrier_sections",
        "omp_ibarrier_single", "omp_ibarrier_reduce",
        "work", "io_read", "io_write",
    }
    for spec in list_properties():
        assert spec.name not in runtime_regions, spec.name
