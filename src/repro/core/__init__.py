"""The ATS framework core (the paper's primary contribution).

Layers, mirroring paper figure 3.1: base buffer configuration,
performance property functions, the property registry, composite
program builders, and the single-property test program generator.
"""

from . import properties
from .base import (
    alloc_base_buf,
    base_cnt,
    base_type,
    reset_base_comm,
    set_base_comm,
)
from .composite import (
    ALL_MPI_PROPERTY_CHAIN,
    Step,
    run_all_mpi_properties,
    run_chain,
    run_hybrid_composite,
    run_split_program,
)
from .generator import (
    generate_single_property_script,
    write_generated_programs,
)
from .registry import (
    DistParam,
    DuplicatePropertyError,
    PropertySpec,
    get_property,
    has_property,
    list_properties,
    register_property,
)

__all__ = [
    "ALL_MPI_PROPERTY_CHAIN",
    "DistParam",
    "DuplicatePropertyError",
    "PropertySpec",
    "Step",
    "alloc_base_buf",
    "base_cnt",
    "base_type",
    "generate_single_property_script",
    "get_property",
    "has_property",
    "list_properties",
    "properties",
    "register_property",
    "reset_base_comm",
    "run_all_mpi_properties",
    "run_chain",
    "run_hybrid_composite",
    "run_split_program",
    "set_base_comm",
    "write_generated_programs",
]
