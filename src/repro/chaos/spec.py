"""Host-level fault specifications for the chaos harness.

The :mod:`repro.faults` package perturbs what happens *inside* a
simulation; this module perturbs the host the analysis service runs
on: processes get SIGKILLed, archive writes hit ``ENOSPC``, journal
appends tear mid-record, client connections drop.  The design mirrors
:class:`repro.faults.spec.FaultPlan` deliberately -- every fault is a
small frozen value object, a :class:`ChaosPlan` composes any number of
them with a seed, and all serialization is plain JSON so a plan can
ride an environment variable into the server process it sabotages.

Two delivery mechanisms share the plan:

* **injected faults** (:class:`StuckJob`, :class:`ArchiveWriteFault`,
  :class:`JournalWriteFault`, :class:`DropConnection`) are armed inside
  the server process by :class:`repro.chaos.inject.HostFaultInjector`
  and fire at exact, counted call sites -- the *n*-th blob write, the
  *n*-th journal record -- so a seeded plan reproduces the same fault
  at the same point on every run;
* **external faults** (:class:`KillServer`, :class:`TornJournalTail`)
  are applied by the harness from outside: a real ``SIGKILL`` against
  a real PID, file surgery on the journal between kill and recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Tuple, Type

from ..simkernel.rng import Lcg64

__all__ = [
    "ArchiveWriteFault",
    "ChaosPlan",
    "DropConnection",
    "HostFault",
    "JournalWriteFault",
    "KillServer",
    "StuckJob",
    "TornJournalTail",
    "host_fault_from_dict",
]


@dataclass(frozen=True)
class HostFault:
    """Base class: one named host-level fault."""

    kind = "host-fault"

    #: faults the injector arms inside the server process.
    injected = False

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            d[f.name] = list(value) if isinstance(value, tuple) else value
        return d


@dataclass(frozen=True)
class KillServer(HostFault):
    """SIGKILL the server once ``after_resolved`` jobs have resolved.

    Applied by the harness, which polls ``/status`` until the resolved
    count (done + failed) reaches the threshold and then kills the
    process mid-flight -- no drain, no journal flush, exactly the crash
    the durable journal exists for.
    """

    after_resolved: int = 1

    kind = "kill_server"

    def __post_init__(self) -> None:
        if self.after_resolved < 0:
            raise ValueError("after_resolved must be >= 0")


@dataclass(frozen=True)
class StuckJob(HostFault):
    """The ``nth`` executed job wedges for ``hold`` wall-clock seconds.

    Injected around the service's job execution, so when the kill
    lands there is a genuinely in-flight job for recovery to deal
    with (resume for campaigns, orphan/requeue otherwise).
    """

    nth: int = 1
    hold: float = 3600.0

    kind = "stuck_job"
    injected = True

    def __post_init__(self) -> None:
        if self.nth < 1:
            raise ValueError("nth must be >= 1")
        if self.hold < 0:
            raise ValueError("hold must be >= 0")


@dataclass(frozen=True)
class ArchiveWriteFault(HostFault):
    """Blob writes ``nth .. nth+count-1`` raise ``OSError(errno)``.

    Fires *before* the temp file is created, so the atomic
    tmp+rename discipline guarantees no partial blob ever appears --
    the write simply fails and the job reports the error.
    """

    nth: int = 1
    count: int = 1
    error: str = "ENOSPC"

    kind = "archive_write_fault"
    injected = True

    def __post_init__(self) -> None:
        if self.nth < 1 or self.count < 1:
            raise ValueError("nth and count must be >= 1")


@dataclass(frozen=True)
class JournalWriteFault(HostFault):
    """Journal record ``nth`` fails -- cleanly, or as a torn write.

    With ``torn`` the injector writes a prefix of the record before
    raising, leaving exactly the partial final line the journal's
    tail-healing is specified against.  Either way the exception
    propagates, so the caller never acknowledges the record.
    """

    nth: int = 1
    count: int = 1
    torn: bool = False
    error: str = "EIO"

    kind = "journal_write_fault"
    injected = True

    def __post_init__(self) -> None:
        if self.nth < 1 or self.count < 1:
            raise ValueError("nth and count must be >= 1")


@dataclass(frozen=True)
class TornJournalTail(HostFault):
    """After the kill, cut ``drop_bytes`` off the service journal tail.

    Harness-applied file surgery simulating a torn final write that the
    kernel never completed: recovery must heal the partial record and
    lose nothing that was acknowledged before it.
    """

    drop_bytes: int = 7

    kind = "torn_journal_tail"

    def __post_init__(self) -> None:
        if self.drop_bytes < 1:
            raise ValueError("drop_bytes must be >= 1")


@dataclass(frozen=True)
class DropConnection(HostFault):
    """Close connections ``nth .. nth+count-1`` before responding.

    Exercises the client side of crash safety: an idempotent GET must
    reconnect and retry; an interrupted submission must be observable
    via ``/jobs/<id>`` after the fact.
    """

    nth: int = 1
    count: int = 1

    kind = "drop_connection"
    injected = True

    def __post_init__(self) -> None:
        if self.nth < 1 or self.count < 1:
            raise ValueError("nth and count must be >= 1")


_FAULT_TYPES: Dict[str, Type[HostFault]] = {
    cls.kind: cls
    for cls in (
        KillServer, StuckJob, ArchiveWriteFault, JournalWriteFault,
        TornJournalTail, DropConnection,
    )
}


def host_fault_from_dict(d: Dict[str, Any]) -> HostFault:
    kind = d.get("kind")
    cls = _FAULT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown host fault kind {kind!r}")
    kwargs = {k: v for k, v in d.items() if k != "kind"}
    for f in fields(cls):
        if f.name in kwargs and isinstance(kwargs[f.name], list):
            kwargs[f.name] = tuple(kwargs[f.name])
    return cls(**kwargs)


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded composition of host faults applied to one service run."""

    faults: Tuple[HostFault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for f in self.faults:
            if not isinstance(f, HostFault):
                raise TypeError(f"not a HostFault: {f!r}")

    @classmethod
    def of(cls, *faults: HostFault, seed: int = 0) -> "ChaosPlan":
        return cls(tuple(faults), seed=seed)

    @property
    def is_noop(self) -> bool:
        return not self.faults

    @property
    def injected_faults(self) -> Tuple[HostFault, ...]:
        return tuple(f for f in self.faults if f.injected)

    @property
    def external_faults(self) -> Tuple[HostFault, ...]:
        return tuple(f for f in self.faults if not f.injected)

    def only(self, *kinds: Type[HostFault]) -> "ChaosPlan":
        return ChaosPlan(
            tuple(f for f in self.faults if isinstance(f, kinds)),
            seed=self.seed,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [f.to_dict() for f in self.faults],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ChaosPlan":
        return cls(
            tuple(host_fault_from_dict(f) for f in d.get("faults", ())),
            seed=int(d.get("seed", 0)),
        )

    def describe(self) -> str:
        if not self.faults:
            return "no-op plan"
        return " + ".join(f.kind for f in self.faults)


def mixed_plans(seed: int, count: int) -> Tuple[ChaosPlan, ...]:
    """``count`` seeded plans cycling through the fault families.

    The canonical acceptance battery: SIGKILL-mid-campaign, IO faults
    on archive writes, torn journal records, stuck cells and dropped
    connections, each parameterized from an :class:`Lcg64` stream
    spawned off ``(seed, index)`` so run *i* of seed *s* is the same
    plan on every host.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    plans = []
    root = Lcg64(seed)
    for index in range(count):
        stream = root.spawn(index)
        after = 1 + stream.randrange(4)
        nth = 1 + stream.randrange(5)
        family = index % 5
        if family == 0:
            faults: Tuple[HostFault, ...] = (
                KillServer(after_resolved=after),
            )
        elif family == 1:
            faults = (
                ArchiveWriteFault(
                    nth=nth, count=1 + stream.randrange(2)
                ),
                KillServer(after_resolved=after),
            )
        elif family == 2:
            faults = (
                JournalWriteFault(nth=nth, torn=True),
                KillServer(after_resolved=after),
            )
        elif family == 3:
            faults = (
                StuckJob(nth=1 + stream.randrange(3)),
                KillServer(after_resolved=after),
                TornJournalTail(drop_bytes=1 + stream.randrange(24)),
            )
        else:
            faults = (
                DropConnection(nth=nth, count=1 + stream.randrange(2)),
                KillServer(after_resolved=after),
            )
        plans.append(
            ChaosPlan(faults, seed=Lcg64(seed).spawn(index).seed)
        )
    return tuple(plans)
