"""Registry snapshot/export consistency under concurrent mutation.

The hammer tests drive writer threads into a histogram while readers
snapshot and export continuously.  Before the per-histogram lock,
``observe()``'s three-field update (``counts[i] += 1``, ``sum += v``,
``count += 1``) could be observed half-applied by an exporting reader
-- a torn read showing ``count`` ahead of ``sum`` or the bucket
vector.  The invariant checked here (every observation is exactly
1.0, so ``sum == count == sum(counts)`` at every instant) fails
within milliseconds on the unlocked implementation.
"""

import threading

from repro.obs import reset_metrics, to_json, to_prometheus

WRITERS = 4
OBSERVATIONS = 2_000


def _hammer(target, check, threads=WRITERS):
    """Run writer threads against ``target`` while ``check`` polls."""
    stop = threading.Event()
    errors = []

    def write():
        for _ in range(OBSERVATIONS):
            target()

    def read():
        while not stop.is_set():
            try:
                check()
            except AssertionError as exc:  # pragma: no cover - failure
                errors.append(exc)
                return

    writers = [
        threading.Thread(target=write) for _ in range(threads)
    ]
    reader = threading.Thread(target=read)
    reader.start()
    for w in writers:
        w.start()
    for w in writers:
        w.join()
    stop.set()
    reader.join()
    if errors:
        raise errors[0]


def test_histogram_snapshot_never_torn():
    reg = reset_metrics()
    h = reg.histogram("t_hammer", "help", buckets=(0.5, 2.0))

    def check():
        counts, total_sum, total = h.snapshot()
        assert total_sum == total, "sum torn from count"
        assert sum(counts) == total, "buckets torn from count"

    _hammer(lambda: h.observe(1.0), check)
    counts, total_sum, total = h.snapshot()
    assert total == WRITERS * OBSERVATIONS
    assert total_sum == total
    assert counts == [0, total, 0]


def test_exporters_consistent_under_concurrent_observe():
    reg = reset_metrics()
    h = reg.histogram("t_export_hammer", "help", buckets=(0.5, 2.0))

    def check():
        # Prometheus text: the +Inf cumulative bucket must equal the
        # _count line, and _sum must equal _count (all values 1.0).
        text = to_prometheus(reg)
        inf = total_sum = count = None
        for line in text.splitlines():
            if line.startswith('t_export_hammer_bucket{le="+Inf"}'):
                inf = float(line.rsplit(" ", 1)[1])
            elif line.startswith("t_export_hammer_sum"):
                total_sum = float(line.rsplit(" ", 1)[1])
            elif line.startswith("t_export_hammer_count"):
                count = float(line.rsplit(" ", 1)[1])
        assert inf == count, "cumulative +Inf torn from count"
        assert total_sum == count, "sum torn from count"

    _hammer(lambda: h.observe(1.0), check)


def test_labeled_family_creation_race_yields_one_child():
    reg = reset_metrics()
    family = reg.counter("t_family_race", "help", labelnames=("k",))
    barrier = threading.Barrier(8)
    children = []

    def create():
        barrier.wait()
        children.append(family.labels(k="same"))

    threads = [threading.Thread(target=create) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # every thread must have gotten the *same* child: increments from
    # distinct child objects would silently split the series.
    assert all(c is children[0] for c in children)
    for c in children:
        c.inc()
    assert children[0].value == 8


def test_json_export_during_family_creation():
    reg = reset_metrics()
    stop = threading.Event()
    errors = []

    def create_families():
        for i in range(200):
            reg.counter(f"t_dyn_{i}_total", "help").inc()

    def export():
        while not stop.is_set():
            try:
                to_json(reg)
                to_prometheus(reg)
            except RuntimeError as exc:  # pragma: no cover - failure
                errors.append(exc)
                return

    reader = threading.Thread(target=export)
    writer = threading.Thread(target=create_families)
    reader.start()
    writer.start()
    writer.join()
    stop.set()
    reader.join()
    assert not errors, f"export raced family creation: {errors[0]}"
    assert len(reg.collect()) >= 200
