"""A-GRIND -- the Grindstone predecessor suite (paper section 2.3).

The paper's chapter 2 catalogs Grindstone ("A Test Suite for Parallel
Performance Tools", 9 PVM programs) as the closest existing work.
This bench runs the reimplemented Grindstone archetypes and verifies
each one's canonical diagnosis -- plus the discrimination test: a
profile-only tool sees the communication-bound programs but misses the
pattern properties ATS adds.
"""

from repro.analysis import analyze_run
from repro.analysis.tools import pattern_tool, profile_only_tool
from repro.apps import (
    GrindstoneConfig,
    big_message,
    intensive_server,
    random_barrier,
    small_messages,
)
from repro.asl import CommunicationBound, PerformanceData
from repro.simmpi import run_mpi
from repro.trace import comm_matrix

FAST = dict(model_init_overhead=False)
CFG = GrindstoneConfig()


def test_grindstone_communication_bound_pair(benchmark):
    """big_message and small_messages: same verdict, opposite cause."""

    def run():
        big = run_mpi(big_message, 4, CFG, **FAST)
        small = run_mpi(small_messages, 4, CFG, **FAST)
        return big, small

    big, small = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, result in (("big_message", big),
                         ("small_messages", small)):
        data = PerformanceData.from_run(result)
        matrix = comm_matrix(result.events)
        rows.append((
            name,
            CommunicationBound().severity(data),
            matrix.total_messages,
            matrix.total_bytes,
        ))
    print("\nA-GRIND communication-bound programs:")
    for name, sev, msgs, volume in rows:
        print(f"  {name:<16} mpi-fraction={sev:.1%}"
              f"  msgs={msgs}  bytes={volume}")
    assert all(sev > 0.2 for _, sev, _, _ in rows)
    assert rows[0][3] > 100 * rows[1][3]   # big: volume
    assert rows[1][2] > 10 * rows[0][2]    # small: count


def test_grindstone_intensive_server(benchmark):
    def run():
        return run_mpi(intensive_server, 6, CFG, **FAST)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    analysis = analyze_run(result)
    sev = analysis.severity(property="late_sender")
    hot = comm_matrix(result.events).hottest_receiver()
    print(f"\nA-GRIND intensive_server: late_sender={sev:.1%}, "
          f"hottest receiver=rank {hot}")
    assert sev > 0.3
    assert hot == 0


def test_grindstone_random_barrier(benchmark):
    def run():
        return run_mpi(
            random_barrier, 6, GrindstoneConfig(repetitions=24), **FAST
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    analysis = analyze_run(result)
    locs = analysis.locations_of("wait_at_barrier")
    print(f"\nA-GRIND random_barrier: wait spread over "
          f"{len(locs)} of 6 ranks")
    assert {loc.rank for loc in locs} == set(range(6))


def test_grindstone_discriminates_tool_classes(benchmark):
    """ATS's pattern properties go beyond what Grindstone-era
    profile tools could check: a profile-only tool flags the
    communication-bound programs but cannot name the server's
    late-sender pattern."""

    def run():
        result = run_mpi(intensive_server, 6, CFG, **FAST)
        return (
            pattern_tool(0.05)(result),
            profile_only_tool()(result),
        )

    pattern_verdict, profile_verdict = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(f"\n  pattern tool:      {pattern_verdict}")
    print(f"  profile-only tool: {profile_verdict}")
    assert "late_sender" in pattern_verdict
    assert "late_sender" not in profile_verdict
