"""Tests for the property registry and base configuration."""

import pytest

from repro.core import (
    DistParam,
    PropertySpec,
    alloc_base_buf,
    base_cnt,
    base_type,
    get_property,
    list_properties,
    register_property,
    reset_base_comm,
    set_base_comm,
)
from repro.simmpi import MPI_DOUBLE, MPI_INT, RunResult
from repro.simomp import OmpRunResult


PAPER_PROPERTY_FUNCTIONS = [
    # the complete list from paper section 3.1.5
    "late_sender",
    "late_receiver",
    "imbalance_at_mpi_barrier",
    "imbalance_at_mpi_alltoall",
    "late_broadcast",
    "late_scatter",
    "late_scatterv",
    "early_reduce",
    "early_gather",
    "early_gatherv",
    "imbalance_in_omp_pregion",
    "imbalance_at_omp_barrier",
    "imbalance_in_omp_loop",
]


def test_every_paper_property_function_is_registered():
    names = {s.name for s in list_properties()}
    missing = set(PAPER_PROPERTY_FUNCTIONS) - names
    assert not missing, f"paper property functions missing: {missing}"


def test_registry_has_negative_programs():
    negatives = list_properties(negative=True)
    assert len(negatives) >= 4
    assert all(s.expected == () for s in negatives)


def test_registry_filters_by_paradigm():
    assert all(s.paradigm == "omp" for s in list_properties(paradigm="omp"))
    assert all(s.paradigm == "mpi" for s in list_properties(paradigm="mpi"))
    assert len(list_properties(paradigm="hybrid")) >= 3


def test_get_property_unknown_name():
    with pytest.raises(KeyError, match="late_sender"):
        get_property("nonexistent_property")


def test_register_duplicate_rejected():
    spec = get_property("late_sender")
    with pytest.raises(ValueError, match="already registered"):
        register_property(spec)


def test_register_duplicate_raises_typed_error_with_both_specs():
    from repro.core import DuplicatePropertyError

    existing = get_property("late_sender")
    clone = PropertySpec(
        name="late_sender", func=lambda: None, paradigm="mpi", expected=()
    )
    with pytest.raises(DuplicatePropertyError) as exc:
        register_property(clone)
    assert exc.value.spec is clone
    assert exc.value.existing is existing
    # The collision must not shadow the original registration.
    assert get_property("late_sender") is existing


def test_has_property():
    from repro.core import has_property

    assert has_property("late_sender")
    assert not has_property("nonexistent_property")


def test_bad_paradigm_rejected():
    with pytest.raises(ValueError, match="paradigm"):
        PropertySpec(
            name="x", func=lambda: None, paradigm="cuda", expected=()
        )


def test_materialize_expands_dist_params():
    spec = get_property("imbalance_at_mpi_barrier")
    params = spec.materialize()
    assert "df" in params and "dd" in params and "r" in params
    assert "dist" not in params


def test_materialize_rejects_unknown_override():
    spec = get_property("late_sender")
    with pytest.raises(KeyError, match="bogus"):
        spec.materialize({"bogus": 1})


def test_materialize_applies_overrides():
    spec = get_property("late_sender")
    params = spec.materialize({"extrawork": 0.5})
    assert params["extrawork"] == 0.5
    assert params["basework"] == 0.005


def test_scaled_params_scales_severity_knobs_only():
    spec = get_property("late_sender")
    scaled = spec.scaled_params(3.0)
    assert scaled["extrawork"] == pytest.approx(0.06)
    assert scaled["basework"] == 0.005  # not a severity param
    assert scaled["r"] == 3


def test_scaled_params_scales_distributions():
    spec = get_property("imbalance_at_mpi_barrier")
    scaled = spec.scaled_params(2.0)
    dist = scaled["dist"]
    assert isinstance(dist, DistParam)
    assert dist.values == (0.01, 0.05)


def test_dist_param_resolve():
    dp = DistParam("cyclic2", (1.0, 2.0))
    df, dd = dp.resolve()
    assert df(0, 4, 1.0, dd) == 1.0
    assert df(1, 4, 1.0, dd) == 2.0


def test_run_mpi_spec_returns_run_result():
    result = get_property("late_sender").run(size=4)
    assert isinstance(result, RunResult)
    assert result.size == 4
    assert len(result.events) > 0


def test_run_omp_spec_returns_omp_result():
    result = get_property("imbalance_at_omp_barrier").run(num_threads=3)
    assert isinstance(result, OmpRunResult)
    assert result.num_threads == 3


def test_run_rejects_too_small_world():
    with pytest.raises(ValueError, match="at least"):
        get_property("late_sender").run(size=1)


def test_run_params_override_changes_duration():
    spec = get_property("late_sender")
    short = spec.run(size=4, params={"r": 1})
    long = spec.run(size=4, params={"r": 5})
    assert long.final_time > short.final_time


# ----------------------------------------------------------------------
# base communication configuration (paper 3.1.3)
# ----------------------------------------------------------------------

def test_set_base_comm_changes_allocations():
    try:
        set_base_comm(MPI_INT, 64)
        assert base_type() is MPI_INT
        assert base_cnt() == 64
        buf = alloc_base_buf()
        assert buf.cnt == 64 and buf.type is MPI_INT
        big = alloc_base_buf(factor=3)
        assert big.cnt == 192
    finally:
        reset_base_comm()


def test_reset_base_comm_restores_defaults():
    set_base_comm(MPI_INT, 7)
    reset_base_comm()
    assert base_type() is MPI_DOUBLE
    assert base_cnt() == 256


def test_negative_base_cnt_rejected():
    with pytest.raises(ValueError):
        set_base_comm(MPI_INT, -1)
