"""OpenMP pattern detectors.

The simulated OpenMP barrier releases all threads exactly at the last
arrival, so a thread's time inside a barrier region *is* its imbalance
wait.  Which property the wait belongs to is determined by which
construct's barrier absorbed it -- explicit barrier, or the implicit
barrier of a parallel region / worksharing loop / sections construct
(the distinct region names the runtime records).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ...trace.events import Event
from ..model import Finding
from .base import AnalysisConfig, iter_region_visits

#: barrier region name -> property charged with the time spent in it
_BARRIER_PROPERTIES = {
    "omp_barrier": "imbalance_at_omp_barrier",
    "omp_ibarrier_parallel": "imbalance_in_omp_pregion",
    "omp_ibarrier_for": "imbalance_in_omp_loop",
    "omp_ibarrier_sections": "imbalance_in_omp_sections",
    "omp_ibarrier_single": "imbalance_at_omp_single",
    "omp_ibarrier_reduce": "imbalance_at_omp_reduce",
}


class OmpImbalanceDetector:
    """Thread imbalance at OpenMP synchronization points."""

    produces = tuple(sorted(set(_BARRIER_PROPERTIES.values())))

    def detect(
        self, events: Sequence[Event], config: AnalysisConfig
    ) -> Iterable[Finding]:
        for visit in iter_region_visits(events):
            prop = _BARRIER_PROPERTIES.get(visit.region)
            if prop is None:
                continue
            if visit.inclusive > config.noise_floor:
                yield Finding(prop, visit.path, visit.loc, visit.inclusive)


class OmpCriticalContentionDetector:
    """Lock-acquisition waits in critical sections and explicit locks.

    A critical region's *exclusive* time (total minus the nested work
    executed while holding the lock) is the time spent queueing for
    the lock; an ``omp_lock`` region covers the acquisition wait
    directly, so its inclusive time counts in full.
    """

    produces = ("omp_critical_contention", "omp_lock_contention")

    def detect(
        self, events: Sequence[Event], config: AnalysisConfig
    ) -> Iterable[Finding]:
        for visit in iter_region_visits(events):
            if visit.region == "omp_critical":
                wait = visit.exclusive
                prop = "omp_critical_contention"
            elif visit.region == "omp_lock":
                wait = visit.inclusive
                prop = "omp_lock_contention"
            else:
                continue
            if wait > config.noise_floor:
                yield Finding(prop, visit.path, visit.loc, wait)


