"""The predefined ATS distribution functions (paper section 3.1.2).

Every function has the signature of the paper's ``distr_func_t``::

    value = df(me, sz, scale, dd)

where ``me`` is the participant's rank in the group, ``sz`` the group
size, ``scale`` a proportional scale factor and ``dd`` a descriptor
from :mod:`repro.distributions.descriptors`.  The returned value is
``scale`` times the descriptor-determined share for rank ``me``.
"""

from __future__ import annotations

from typing import Callable, Protocol

from .descriptors import (
    DistrDescriptor,
    Val1Distr,
    Val2Distr,
    Val2NDistr,
    Val3Distr,
)


class DistrFunc(Protocol):
    """Callable signature of a distribution function (``distr_func_t``)."""

    def __call__(
        self, me: int, sz: int, scale: float, dd: DistrDescriptor
    ) -> float: ...  # pragma: no cover - typing only


def _check_group(me: int, sz: int) -> None:
    if sz < 1:
        raise ValueError(f"group size must be >= 1, got {sz}")
    if not 0 <= me < sz:
        raise ValueError(f"rank {me} outside group of size {sz}")


def _expect(dd: DistrDescriptor, kind: type, fname: str):
    if not isinstance(dd, kind):
        raise TypeError(
            f"{fname} expects a {kind.__name__} descriptor, "
            f"got {type(dd).__name__}"
        )
    return dd


def df_same(me: int, sz: int, scale: float, dd: DistrDescriptor) -> float:
    """SAME distribution: every participant gets the same value."""
    _check_group(me, sz)
    d = _expect(dd, Val1Distr, "df_same")
    return scale * d.val


def df_cyclic2(me: int, sz: int, scale: float, dd: DistrDescriptor) -> float:
    """CYCLIC2 distribution: alternate between low (even) and high (odd)."""
    _check_group(me, sz)
    d = _expect(dd, Val2Distr, "df_cyclic2")
    return scale * (d.low if me % 2 == 0 else d.high)


def df_block2(me: int, sz: int, scale: float, dd: DistrDescriptor) -> float:
    """BLOCK2 distribution: first half low, second half high.

    For odd group sizes the low block gets the extra participant
    (``ceil(sz/2)`` low values).
    """
    _check_group(me, sz)
    d = _expect(dd, Val2Distr, "df_block2")
    return scale * (d.low if me < (sz + 1) // 2 else d.high)


def df_linear(me: int, sz: int, scale: float, dd: DistrDescriptor) -> float:
    """LINEAR distribution: interpolate from low (rank 0) to high (last).

    A single-participant group receives ``low``.
    """
    _check_group(me, sz)
    d = _expect(dd, Val2Distr, "df_linear")
    if sz == 1:
        return scale * d.low
    return scale * (d.low + (d.high - d.low) * me / (sz - 1))


def df_peak(me: int, sz: int, scale: float, dd: DistrDescriptor) -> float:
    """PEAK distribution: participant ``n`` gets high, everyone else low.

    ``n`` is taken modulo the group size so a descriptor written for a
    large group still works -- property functions must be callable "with
    little context" (paper section 3.1.4).
    """
    _check_group(me, sz)
    d = _expect(dd, Val2NDistr, "df_peak")
    return scale * (d.high if me == d.n % sz else d.low)


def df_cyclic3(me: int, sz: int, scale: float, dd: DistrDescriptor) -> float:
    """CYCLIC3 distribution: cycle through low, med, high by rank."""
    _check_group(me, sz)
    d = _expect(dd, Val3Distr, "df_cyclic3")
    return scale * (d.low, d.med, d.high)[me % 3]


def df_block3(me: int, sz: int, scale: float, dd: DistrDescriptor) -> float:
    """BLOCK3 distribution: three consecutive blocks of low, med, high.

    Block boundaries follow the usual block-partitioning rule: the first
    ``sz mod 3`` blocks get one extra participant.
    """
    _check_group(me, sz)
    d = _expect(dd, Val3Distr, "df_block3")
    base, extra = divmod(sz, 3)
    # Sizes of the three blocks.
    sizes = [base + (1 if b < extra else 0) for b in range(3)]
    values = (d.low, d.med, d.high)
    bound = 0
    for block, block_size in enumerate(sizes):
        bound += block_size
        if me < bound:
            return scale * values[block]
    raise AssertionError("unreachable")  # pragma: no cover
