#!/usr/bin/env python
"""Hybrid MPI+OpenMP composition and the program generator.

Demonstrates the two forward-looking parts of the paper's section 3.2
and 3.3: generating standalone single-property test programs from
function signatures, and composing property functions from *different
paradigms* in one program so hybrid tools can be tested.
"""

import subprocess
import sys
import tempfile
from pathlib import Path

from repro import analyze_run, format_expert_report
from repro.core import (
    generate_single_property_script,
    run_hybrid_composite,
    write_generated_programs,
)


def hybrid_demo() -> None:
    print("=" * 70)
    print("hybrid composite: MPI late_sender + OpenMP barrier imbalance")
    print("=" * 70)
    result = run_hybrid_composite(
        mpi_steps=["late_sender"],
        omp_steps=["imbalance_at_omp_barrier"],
        size=4,
        num_threads=4,
    )
    analysis = analyze_run(result)
    print(format_expert_report(analysis))
    detected = analysis.detected(0.005)
    assert "late_sender" in detected
    assert "imbalance_at_omp_barrier" in detected
    omp_locs = analysis.locations_of("imbalance_at_omp_barrier")
    threads = sorted({(l.rank, l.thread) for l in omp_locs})
    print(f"OpenMP imbalance located at (rank, thread): {threads}\n")


def generator_demo() -> None:
    print("=" * 70)
    print("the single-property program generator (paper section 3.2)")
    print("=" * 70)
    source = generate_single_property_script("late_broadcast")
    print("generated CLI surface:")
    for line in source.splitlines():
        if "add_argument" in line:
            print("   " + line.strip())
    with tempfile.TemporaryDirectory() as tmp:
        paths = write_generated_programs(tmp, paradigm="mpi")
        print(f"\ngenerated {len(paths)} MPI test programs in {tmp}")
        target = Path(tmp) / "test_late_broadcast.py"
        proc = subprocess.run(
            [sys.executable, str(target), "--size", "6", "--root", "2",
             "--r", "2", "--analyze"],
            capture_output=True, text=True,
        )
        print(f"running {target.name} --size 6 --root 2 --r 2 --analyze:")
        print(proc.stdout)
        assert proc.returncode == 0


if __name__ == "__main__":
    hybrid_demo()
    generator_demo()
