"""Analysis-as-a-service: the async job server behind ``ats serve``.

Everything the rest of the test suite does in-process -- execute a
property function, analyze an archived trace, diff two runs, sweep a
validation campaign -- becomes an **asynchronous job** submitted over
HTTP, queued, executed on the shared pooled workers, and observable
while it runs.  The layers, bottom up:

* :mod:`~repro.service.ratelimit` -- per-tenant token buckets (429 +
  ``Retry-After`` for over-budget tenants);
* :mod:`~repro.service.jobs` -- the :class:`Job` model, coalescing
  keys, and :class:`CampaignProgress` (Supervisor events -> live
  counters);
* :mod:`~repro.service.server` -- :class:`AnalysisService`: the work
  queue, request coalescing on ``(trace digest, detector
  fingerprint)``, graceful drain, and end-to-end request tracing into
  obs spans;
* :mod:`~repro.service.http` -- the stdlib asyncio HTTP front end
  (``/submit-run``, ``/analyze``, ``/diff``, ``/campaign``,
  ``/history``, ``/jobs/<id>``, ``/status``, ``/dashboard``,
  ``/metrics``, ``/metrics.json``, ``/drain``);
* :mod:`~repro.service.dashboard` -- the ``ats watch`` terminal view
  and the self-refreshing HTML status page;
* :mod:`~repro.service.client` -- the urllib client the CLI, bench
  and tests use.

See ``docs/SERVICE.md`` for the HTTP contract and operational notes.
"""

from .client import ServiceClient, ServiceHTTPError
from .dashboard import render_html, render_watch
from .http import ServiceHTTP, ServiceHandle, run_service_in_thread
from .jobs import JOB_KINDS, JOB_STATES, CampaignProgress, Job
from .ratelimit import RateLimiter, TokenBucket
from .server import (
    AnalysisService,
    JobError,
    RateLimited,
    ServiceDraining,
)

__all__ = [
    "AnalysisService",
    "CampaignProgress",
    "JOB_KINDS",
    "JOB_STATES",
    "Job",
    "JobError",
    "RateLimited",
    "RateLimiter",
    "ServiceClient",
    "ServiceDraining",
    "ServiceHTTP",
    "ServiceHTTPError",
    "ServiceHandle",
    "TokenBucket",
    "render_html",
    "render_watch",
    "run_service_in_thread",
]
