"""Campaign execution: parity across modes, archiving, scoring."""

import json

import pytest

from repro.archive import Archive
from repro.faults import FaultPlan
from repro.resilience import Supervisor
from repro.synth import (
    CampaignError,
    CampaignSpec,
    NoiseConfig,
    run_campaign,
    score_campaign_json,
    score_result,
)
from repro.work.forkexec import fork_available


def _spec(**over):
    kwargs = dict(
        name="camp", strategy="grid", scenarios=10,
        sizes=(4,), threads=2, seed=9,
        noise=NoiseConfig(
            plan=FaultPlan.default(), magnitudes=(0.0, 0.6)
        ),
    )
    kwargs.update(over)
    return CampaignSpec(**kwargs)


def test_campaign_runs_and_grades_against_manifests():
    result = run_campaign(_spec())
    assert len(result.cells) == 10
    assert not result.errors
    for cell in result.cells:
        assert cell.manifest.scenario == cell.scenario.name
        assert set(cell.missing) <= set(cell.manifest.expected)
    report = score_result(result)
    assert report.cells == 10
    total = sum(d.tp + d.fn for d in report.detectors)
    assert total == sum(
        len(c.manifest.expected) for c in result.cells
    )


def test_campaign_is_deterministic():
    a = run_campaign(_spec())
    b = run_campaign(_spec())
    assert a.to_json_str() == b.to_json_str()
    assert score_result(a).to_json_str() == score_result(b).to_json_str()


def test_score_round_trips_through_json_artifact():
    result = run_campaign(_spec(scenarios=6))
    payload = json.loads(result.to_json_str())
    assert payload["format"] == "ats-synth-campaign"
    from_artifact = score_campaign_json(payload)
    assert from_artifact.to_json_str() == score_result(result).to_json_str()


def test_archive_records_carry_ground_truth_manifests(tmp_path):
    archive = Archive(tmp_path / "arch")
    result = run_campaign(_spec(scenarios=6), archive=archive)
    manifest = archive.store.load_manifest()
    assert len(manifest) == 6
    for cell in result.cells:
        assert cell.run_id in manifest
        payload = manifest[cell.run_id]
        assert payload["manifest"] == cell.manifest.to_dict()
        run = archive.resolve(cell.run_id)
        assert run.manifest == cell.manifest.to_dict()
        assert run.program == cell.scenario.name


def test_adversarial_strategy_extends_disagreement_cells():
    # Noise makes disagreements likely; the adversarial loop must stay
    # deterministic whether or not any appear.
    spec = _spec(
        strategy="adversarial",
        scenarios=8,
        adversarial_rounds=1,
        adversarial_top=2,
        noise=NoiseConfig(
            plan=FaultPlan.default(), magnitudes=(1.5,)
        ),
    )
    a = run_campaign(spec)
    b = run_campaign(spec)
    assert a.to_json_str() == b.to_json_str()
    assert len(a.cells) >= 8
    if a.disagreements():
        assert len(a.cells) > 8


def test_max_failures_aborts_with_partial_result():
    # An impossible time budget fails every cell.
    spec = _spec(scenarios=6, max_failures=1)
    with pytest.raises(CampaignError) as exc:
        run_campaign(spec, time_budget=1e-9)
    partial = exc.value.result
    assert len(partial.errors) >= 2
    assert len(partial.cells) < 6 or partial.errors


@pytest.mark.skipif(
    not fork_available(), reason="fork executor needs POSIX"
)
def test_forked_campaign_byte_identical_to_serial():
    serial = run_campaign(_spec())
    forked = run_campaign(_spec(), workers=3)
    assert serial.to_json_str() == forked.to_json_str()


@pytest.mark.skipif(
    not fork_available(), reason="fork executor needs POSIX"
)
def test_supervised_archived_parity_serial_vs_forked(tmp_path):
    a1 = Archive(tmp_path / "a1")
    a2 = Archive(tmp_path / "a2")
    s1 = run_campaign(
        _spec(), supervisor=Supervisor(timeout=120.0), archive=a1
    )
    s2 = run_campaign(
        _spec(),
        supervisor=Supervisor(timeout=120.0),
        archive=a2,
        workers=3,
    )
    assert s1.to_json_str() == s2.to_json_str()
    assert a1.store.load_manifest() == a2.store.load_manifest()


def test_resume_is_byte_identical(tmp_path):
    spec = _spec(scenarios=8)
    baseline = run_campaign(spec)

    # First run writes a checkpoint; a fresh supervisor resumes from it
    # and must replay recorded cells instead of recomputing.
    checkpoint = tmp_path / "cells.ckpt"
    first = run_campaign(
        spec, supervisor=Supervisor(checkpoint=str(checkpoint))
    )
    assert first.to_json_str() == baseline.to_json_str()

    # A fresh supervisor pointed at the populated journal replays
    # recorded cells instead of recomputing them.
    resumed_sup = Supervisor(checkpoint=str(checkpoint))
    resumed = run_campaign(spec, supervisor=resumed_sup)
    assert resumed_sup.completed_keys
    assert resumed.to_json_str() == baseline.to_json_str()


@pytest.mark.skipif(
    not fork_available(), reason="fork executor needs POSIX"
)
def test_resume_crosses_executors(tmp_path):
    spec = _spec(scenarios=8)
    baseline = run_campaign(spec)
    checkpoint = tmp_path / "cells.ckpt"
    run_campaign(spec, supervisor=Supervisor(checkpoint=str(checkpoint)))
    resumed = run_campaign(
        spec,
        supervisor=Supervisor(checkpoint=str(checkpoint)),
        workers=3,
    )
    assert resumed.to_json_str() == baseline.to_json_str()
