"""Host-fault specs: validation, serialization, seeded batteries."""

import pytest

from repro.chaos.spec import (
    ArchiveWriteFault,
    ChaosPlan,
    DropConnection,
    JournalWriteFault,
    KillServer,
    StuckJob,
    TornJournalTail,
    host_fault_from_dict,
    mixed_plans,
)

ALL_FAULTS = [
    KillServer(after_resolved=2),
    StuckJob(nth=3, hold=12.5),
    ArchiveWriteFault(nth=2, count=3, error="EDQUOT"),
    JournalWriteFault(nth=4, torn=True),
    TornJournalTail(drop_bytes=11),
    DropConnection(nth=1, count=2),
]


class TestFaults:
    @pytest.mark.parametrize(
        "fault", ALL_FAULTS, ids=lambda f: f.kind
    )
    def test_dict_roundtrip(self, fault):
        assert host_fault_from_dict(fault.to_dict()) == fault

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown host fault"):
            host_fault_from_dict({"kind": "meteor_strike"})

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: KillServer(after_resolved=-1),
            lambda: StuckJob(nth=0),
            lambda: StuckJob(hold=-1.0),
            lambda: ArchiveWriteFault(nth=0),
            lambda: JournalWriteFault(count=0),
            lambda: TornJournalTail(drop_bytes=0),
            lambda: DropConnection(count=0),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            bad()

    def test_injected_flags(self):
        injected = {f.kind for f in ALL_FAULTS if f.injected}
        assert injected == {
            "stuck_job", "archive_write_fault",
            "journal_write_fault", "drop_connection",
        }


class TestPlan:
    def test_roundtrip(self):
        plan = ChaosPlan.of(*ALL_FAULTS, seed=42)
        again = ChaosPlan.from_dict(plan.to_dict())
        assert again == plan
        assert again.seed == 42

    def test_json_safe(self):
        import json

        plan = ChaosPlan.of(*ALL_FAULTS, seed=7)
        wire = json.dumps(plan.to_dict())
        assert ChaosPlan.from_dict(json.loads(wire)) == plan

    def test_injected_external_split(self):
        plan = ChaosPlan.of(*ALL_FAULTS)
        assert all(f.injected for f in plan.injected_faults)
        assert {f.kind for f in plan.external_faults} == {
            "kill_server", "torn_journal_tail",
        }

    def test_noop_and_describe(self):
        assert ChaosPlan().is_noop
        assert ChaosPlan().describe() == "no-op plan"
        plan = ChaosPlan.of(KillServer(), TornJournalTail())
        assert plan.describe() == "kill_server + torn_journal_tail"

    def test_only_filters_by_type(self):
        plan = ChaosPlan.of(*ALL_FAULTS, seed=3)
        kills = plan.only(KillServer)
        assert len(kills.faults) == 1
        assert kills.seed == 3

    def test_rejects_non_faults(self):
        with pytest.raises(TypeError):
            ChaosPlan(("not-a-fault",))


class TestMixedPlans:
    def test_deterministic_per_seed(self):
        assert mixed_plans(9, 10) == mixed_plans(9, 10)
        assert mixed_plans(9, 10) != mixed_plans(10, 10)

    def test_cycles_all_five_families(self):
        plans = mixed_plans(1, 5)
        families = [
            tuple(sorted(f.kind for f in p.faults)) for p in plans
        ]
        assert len(set(families)) == 5
        # every plan in the battery crashes the server
        for plan in plans:
            kinds = {f.kind for f in plan.faults}
            assert "kill_server" in kinds

    def test_count_validated(self):
        with pytest.raises(ValueError):
            mixed_plans(1, 0)

    def test_plans_survive_the_wire(self):
        for plan in mixed_plans(5, 10):
            assert ChaosPlan.from_dict(plan.to_dict()) == plan
