"""Supervision and recovery layer for long-running sweeps.

The counterpart to :mod:`repro.faults`: that package makes programs
misbehave on purpose; this one keeps the harness alive while they do.
Three cooperating pieces:

* the kernel watchdog (:mod:`repro.simkernel.watchdog`) turns
  no-progress states into structured ``DeadlockReport``/``HangReport``,
* the :class:`Supervisor` runs each sweep cell with wall-clock
  timeouts, failure classification, seed-deterministic retry and
  quarantine,
* the :class:`CheckpointJournal` makes completed cells durable so an
  interrupted sweep resumes instead of restarting.

:func:`run_cells_forked` (:mod:`repro.resilience.forked`) lifts the
whole cell lifecycle onto the fork-per-cell executor for true multicore
sweeps with identical journals and artifacts.
"""

from .checkpoint import (
    CheckpointError,
    CheckpointJournal,
    coerce_journal,
)
from .forked import run_cells_forked
from .supervisor import (
    FAILURE_KINDS,
    PROGRESS_EVENTS,
    CellFailure,
    CellOutcome,
    CellTimeout,
    FailureReport,
    Supervisor,
    classify_failure,
)

__all__ = [
    "FAILURE_KINDS",
    "CellFailure",
    "CellOutcome",
    "CellTimeout",
    "CheckpointError",
    "CheckpointJournal",
    "FailureReport",
    "PROGRESS_EVENTS",
    "Supervisor",
    "classify_failure",
    "coerce_journal",
    "run_cells_forked",
]
