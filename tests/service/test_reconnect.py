"""ServiceClient restart tolerance: GET retries, POST never."""

import io
import json

import pytest

from repro.service.client import (
    ServiceClient,
    ServiceHTTPError,
    ServiceUnreachable,
)


class FakeResponse:
    def __init__(self, payload):
        self._payload = payload
        self.status = 200

    def read(self):
        return json.dumps(self._payload).encode()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class FlakyTransport:
    """urlopen stand-in failing the first ``failures`` calls."""

    def __init__(self, failures, payload=None, exc=ConnectionRefusedError):
        self.failures = failures
        self.payload = payload if payload is not None else {"ok": True}
        self.exc = exc
        self.calls = []

    def __call__(self, req, timeout=None):
        self.calls.append((req.get_method(), req.full_url))
        if len(self.calls) <= self.failures:
            raise self.exc("connection refused")
        return FakeResponse(self.payload)


@pytest.fixture
def sleeps():
    return []


def _client(monkeypatch, transport, sleeps, **kw):
    monkeypatch.setattr(
        "repro.service.client.urlrequest.urlopen", transport
    )
    kw.setdefault("retries", 4)
    return ServiceClient(
        "http://127.0.0.1:1", sleep=sleeps.append, **kw
    )


class TestGetRetries:
    def test_rides_through_restart(self, monkeypatch, sleeps):
        transport = FlakyTransport(failures=2)
        client = _client(monkeypatch, transport, sleeps)
        assert client.status() == {"ok": True}
        assert len(transport.calls) == 3
        assert len(sleeps) == 2

    def test_exhaustion_raises_unreachable(self, monkeypatch, sleeps):
        transport = FlakyTransport(failures=99)
        client = _client(monkeypatch, transport, sleeps, retries=3)
        with pytest.raises(ServiceUnreachable) as exc:
            client.status()
        assert exc.value.attempts == 4
        assert "/status" in str(exc.value)
        assert isinstance(exc.value.last, ConnectionRefusedError)

    def test_zero_retries_disables_reconnect(self, monkeypatch, sleeps):
        transport = FlakyTransport(failures=1)
        client = _client(monkeypatch, transport, sleeps, retries=0)
        with pytest.raises(ServiceUnreachable):
            client.status()
        assert len(transport.calls) == 1
        assert sleeps == []


class TestPostNeverRetries:
    def test_submission_fails_fast(self, monkeypatch, sleeps):
        transport = FlakyTransport(failures=1)
        client = _client(monkeypatch, transport, sleeps)
        with pytest.raises(ServiceUnreachable) as exc:
            client.submit_run("balanced_omp_loop", size=4)
        assert exc.value.attempts == 1
        assert len(transport.calls) == 1
        assert sleeps == []

    def test_http_error_never_retried(self, monkeypatch, sleeps):
        class HTTPErrorTransport:
            calls = 0

            def __call__(self, req, timeout=None):
                import urllib.error

                type(self).calls += 1
                raise urllib.error.HTTPError(
                    req.full_url, 404, "not found", {},
                    io.BytesIO(b'{"error": "no such job"}'),
                )

        transport = HTTPErrorTransport()
        client = _client(monkeypatch, transport, sleeps)
        with pytest.raises(ServiceHTTPError) as exc:
            client.job("job-000001")
        assert exc.value.status == 404
        assert type(transport).calls == 1
        assert sleeps == []


class TestBackoff:
    def test_schedule_is_deterministic_per_seed(self):
        a = ServiceClient("http://x", backoff_seed=7)
        b = ServiceClient("http://x", backoff_seed=7)
        c = ServiceClient("http://x", backoff_seed=8)
        sched_a = [a._backoff(i) for i in range(6)]
        sched_b = [b._backoff(i) for i in range(6)]
        sched_c = [c._backoff(i) for i in range(6)]
        assert sched_a == sched_b
        assert sched_a != sched_c

    def test_exponential_and_capped(self):
        client = ServiceClient(
            "http://x", backoff_base=0.1, backoff_cap=2.0
        )
        delays = [client._backoff(i) for i in range(10)]
        # jitter keeps every delay within [base/2, base] of its rung
        for i, delay in enumerate(delays):
            rung = min(2.0, 0.1 * (2 ** i))
            assert rung * 0.5 <= delay <= rung
        assert max(delays) <= 2.0

    def test_sleeps_follow_backoff(self, monkeypatch, sleeps):
        transport = FlakyTransport(failures=3)
        client = _client(
            monkeypatch, transport, sleeps, backoff_seed=11
        )
        client.status()
        oracle = ServiceClient("http://x", backoff_seed=11)
        expected = [oracle._backoff(i) for i in range(3)]
        assert sleeps == expected
