"""Property hierarchy (EXPERT tree pane) tests."""

import pytest

from repro.analysis import (
    AnalysisResult,
    Finding,
    analyze_run,
    format_property_tree,
    severity_tree,
)
from repro.analysis.hierarchy import PARENT, ROOT, ancestors, children_of
from repro.asl import ANALYZER_PROPERTY_IDS
from repro.core import get_property, run_all_mpi_properties
from repro.trace import Location

L0 = Location(0, 0)


def test_every_analyzer_property_reaches_the_root():
    for prop in ANALYZER_PROPERTY_IDS:
        chain = ancestors(prop)
        assert chain, f"{prop} has no parent"
        assert chain[-1] == ROOT


def test_children_of_inverse_of_parent():
    for child, parent in PARENT.items():
        assert child in children_of(parent)


def test_tree_aggregates_severities():
    findings = [
        Finding("late_sender", ("a",), L0, 2.0),
        Finding("late_broadcast", ("b",), L0, 3.0),
    ]
    result = AnalysisResult(
        findings=findings, total_time=10.0, locations=[L0]
    )
    root = severity_tree(result)
    assert root.inclusive == pytest.approx(0.5)
    comm = next(n for n in root.children
                if n.name == "parallel_inefficiency")
    assert comm.inclusive == pytest.approx(0.5)

    def find(node, name):
        if node.name == name:
            return node
        for child in node.children:
            got = find(child, name)
            if got:
                return got
        return None

    p2p = find(root, "p2p_communication")
    coll = find(root, "collective_communication")
    assert p2p.inclusive == pytest.approx(0.2)
    assert coll.inclusive == pytest.approx(0.3)


def test_wrong_order_subset_does_not_double_count():
    findings = [
        Finding("late_sender", ("a",), L0, 2.0),
        Finding("messages_in_wrong_order", ("a",), L0, 2.0),
    ]
    result = AnalysisResult(
        findings=findings, total_time=10.0, locations=[L0]
    )
    root = severity_tree(result)
    # the wrong-order waits ARE the late-sender waits: total is 0.2
    assert root.inclusive == pytest.approx(0.2)


def test_empty_tree():
    result = AnalysisResult(findings=[], total_time=1.0, locations=[L0])
    root = severity_tree(result)
    assert root.inclusive == 0.0
    assert root.children == []


def test_tree_rendering_indented_and_ordered():
    result = analyze_run(run_all_mpi_properties(size=8))
    text = format_property_tree(result, threshold=0.001)
    lines = text.splitlines()
    assert any("total" in l for l in lines)
    # hierarchy: mpi_communication indented deeper than communication
    comm_line = next(l for l in lines if l.endswith(" communication"))
    mpi_line = next(l for l in lines if "mpi_communication" in l)
    assert mpi_line.index("mpi_communication") > comm_line.index(
        "communication"
    )
    # children sorted by severity: collective before p2p in this run
    assert text.index("collective_communication") < text.index(
        "p2p_communication"
    )


def test_tree_threshold_prunes():
    result = analyze_run(get_property("late_sender").run(size=4))
    full = format_property_tree(result, threshold=0.0)
    pruned = format_property_tree(result, threshold=0.99)
    assert "late_sender" in full
    assert "late_sender" not in pruned


def test_parent_severity_at_least_max_child():
    result = analyze_run(run_all_mpi_properties(size=8))
    root = severity_tree(result)

    def check(node):
        for child in node.children:
            assert node.inclusive >= child.inclusive - 1e-12
            check(child)

    check(root)
