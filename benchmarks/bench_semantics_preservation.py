"""T-SEM -- semantics preservation (paper chapter 2).

"First, the test suite is executed on the target system.  Second ...
with instrumentation added by the performance analysis tool.  The
result of both runs must be the same."

Shape claims: every application computes bit-identical results with
and without instrumentation (even with intrusive instrumentation), and
the harness *catches* a deliberately semantics-violating program.
"""

import pytest

from repro.apps import (
    CgConfig,
    FarmConfig,
    JacobiConfig,
    PipelineConfig,
    WavefrontConfig,
    cg_like,
    jacobi,
    master_worker,
    pipeline,
    wavefront,
)
from repro.validation import check_semantics

APPS = [
    ("jacobi", jacobi, JacobiConfig(iterations=6), 4),
    ("master_worker", master_worker, FarmConfig(ntasks=10), 4),
    ("pipeline", pipeline, PipelineConfig(nitems=6), 4),
    ("wavefront", wavefront, WavefrontConfig(ncols=5, sweeps=1), 4),
    ("cg_like", cg_like, CgConfig(iterations=4), 4),
]


def check_all(intrusion=0.0):
    reports = []
    for name, fn, config, size in APPS:
        reports.append(
            check_semantics(
                lambda comm, fn=fn, config=config: fn(comm, config),
                size=size,
                intrusion=intrusion,
                name=name,
                model_init_overhead=False,
            )
        )
    return reports


def test_all_apps_semantics_preserved(benchmark):
    reports = benchmark.pedantic(check_all, rounds=1, iterations=1)
    print("\nT-SEM semantics preservation (clean instrumentation):")
    for report in reports:
        print("  " + report.format().strip())
    assert all(r.semantics_preserved for r in reports)
    assert all(r.timing_distortion == 0.0 for r in reports)


def test_semantics_survive_intrusive_instrumentation(benchmark):
    reports = benchmark.pedantic(
        check_all, args=(1e-4,), rounds=1, iterations=1
    )
    print("\nT-SEM with intrusive instrumentation (0.1ms/event):")
    for report in reports:
        print("  " + report.format().strip())
    # results stay identical even though timing is visibly distorted
    assert all(r.semantics_preserved for r in reports)
    assert all(r.timing_distortion > 0 for r in reports)


def test_harness_catches_semantics_violation(benchmark):
    """Control experiment: a program that behaves differently when
    instrumented must be flagged."""

    def sneaky(comm):
        from repro.trace.api import current_instrumentation

        rec, _ = current_instrumentation()
        return comm.rank() + (1000 if rec is not None else 0)

    report = benchmark.pedantic(
        check_semantics,
        args=(sneaky,),
        kwargs=dict(size=2, name="sneaky", model_init_overhead=False),
        rounds=1,
        iterations=1,
    )
    print("\nT-SEM control: " + report.format().strip())
    assert not report.semantics_preserved
