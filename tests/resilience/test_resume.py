"""Checkpoint/resume: a resumed sweep reproduces the uninterrupted artifact."""

import pytest

from repro.core.registry import get_property
from repro.resilience import CheckpointJournal, Supervisor
from repro.validation import run_robustness, run_validation_matrix


@pytest.fixture(scope="module")
def specs():
    return [get_property("late_sender")]


def _sweep(specs, supervisor=None):
    return run_robustness(
        specs=specs,
        magnitudes=(0.0, 1.0),
        seeds=(0,),
        size=4,
        num_threads=2,
        supervisor=supervisor,
    )


def test_supervised_sweep_matches_direct_sweep(specs):
    direct = _sweep(specs)
    supervised = _sweep(specs, supervisor=Supervisor())
    assert supervised.to_json_str() == direct.to_json_str()


def test_resume_from_complete_journal_never_reruns(tmp_path, specs):
    path = tmp_path / "ck.jsonl"
    sup = Supervisor(checkpoint=path)
    baseline = _sweep(specs, supervisor=sup)
    sup.close()

    resumed_sup = Supervisor(checkpoint=path)
    assert len(resumed_sup.completed_keys) == len(baseline.cells)

    # every cell must replay from the journal: poison the run path
    calls = {"n": 0}
    real_run_cell = resumed_sup.run_cell

    def counting_run_cell(key, fn, **kwargs):
        def poisoned():
            calls["n"] += 1
            return fn()

        return real_run_cell(key, poisoned, **kwargs)

    resumed_sup.run_cell = counting_run_cell
    resumed = _sweep(specs, supervisor=resumed_sup)
    resumed_sup.close()
    assert calls["n"] == 0
    assert resumed.to_json_str() == baseline.to_json_str()


def test_resume_after_partial_journal_is_byte_identical(tmp_path, specs):
    baseline = _sweep(specs)

    path = tmp_path / "ck.jsonl"
    sup = Supervisor(checkpoint=path)
    _sweep(specs, supervisor=sup)
    sup.close()

    # simulate a kill: keep the header + first record, cut the second
    # record mid-line (the interrupted write)
    lines = path.read_text().splitlines(keepends=True)
    assert len(lines) == 3  # header + 2 cells
    path.write_text(lines[0] + lines[1] + lines[2][: len(lines[2]) // 2])

    resumed_sup = Supervisor(checkpoint=path)
    assert len(resumed_sup.completed_keys) == 1
    resumed = _sweep(specs, supervisor=resumed_sup)
    resumed_sup.close()
    assert resumed.to_json_str() == baseline.to_json_str()
    # the journal healed: both cells journaled again, loadable
    assert len(CheckpointJournal(path).load()) == 2


def test_validation_matrix_supervised_matches_direct(tmp_path, specs):
    direct = run_validation_matrix(
        specs=specs, size=4, num_threads=2
    )
    path = tmp_path / "ck.jsonl"
    sup = Supervisor(checkpoint=path)
    supervised = run_validation_matrix(
        specs=specs, size=4, num_threads=2, supervisor=sup
    )
    sup.close()
    assert [r.to_dict() for r in supervised.rows] == [
        r.to_dict() for r in direct.rows
    ]
    # and resuming replays the journaled rows
    resumed_sup = Supervisor(checkpoint=path)
    resumed = run_validation_matrix(
        specs=specs, size=4, num_threads=2, supervisor=resumed_sup
    )
    resumed_sup.close()
    assert [r.to_dict() for r in resumed.rows] == [
        r.to_dict() for r in direct.rows
    ]
