"""1-D Jacobi heat diffusion: the canonical halo-exchange application.

A real computation (numpy stencil updates, verifiable result) whose
*time* behaviour is modeled with ``do_work`` proportional to local
cell count.  Documented performance behaviour:

* **balanced** (default): nearest-neighbour sendrecv + allreduce, no
  significant waiting -- a negative test at application scale,
* **imbalanced** (``imbalance > 0``): strip sizes grow linearly across
  ranks; the spread shows up as *wait at NxN* at the residual
  allreduce and late-sender waits at the halo exchange.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simmpi.buffers import MpiBuf, alloc_mpi_buf
from ..simmpi.communicator import Communicator
from ..simmpi.datatypes import MPI_DOUBLE, MPI_SUM
from ..trace.api import region
from ..work import do_work

#: modeled computation cost per cell per iteration (seconds)
SECONDS_PER_CELL = 2e-7


@dataclass(frozen=True)
class JacobiConfig:
    """Parameters of one Jacobi run."""

    total_cells: int = 4096
    iterations: int = 10
    #: 0 = equal strips; s > 0 skews strip sizes linearly by (1 + s*frac)
    imbalance: float = 0.0
    #: physical diffusion coefficient (affects the numbers, not timing)
    alpha: float = 0.25

    def strip_sizes(self, size: int) -> list[int]:
        """Per-rank cell counts; linear skew, exact total."""
        if size == 1:
            return [self.total_cells]
        weights = [
            1.0 + self.imbalance * (r / (size - 1)) for r in range(size)
        ]
        total_w = sum(weights)
        sizes = [
            max(4, int(self.total_cells * w / total_w)) for w in weights
        ]
        sizes[-1] += self.total_cells - sum(sizes)
        return sizes


def jacobi(comm: Communicator, config: JacobiConfig = JacobiConfig()):
    """Run the solver; returns (local strip checksum, global residual)."""
    me = comm.rank()
    sz = comm.size()
    sizes = config.strip_sizes(sz)
    n_local = sizes[me]
    # Initial condition: a hot spot in rank 0's strip.
    u = np.zeros(n_local + 2)  # with ghost cells
    if me == 0:
        u[1] = 100.0
    halo = alloc_mpi_buf(MPI_DOUBLE, 1)
    resid_send = alloc_mpi_buf(MPI_DOUBLE, 1)
    resid_recv = alloc_mpi_buf(MPI_DOUBLE, 1)

    residual = 0.0
    with region("jacobi"):
        for _ in range(config.iterations):
            with region("halo_exchange"):
                # Send right edge up, receive left ghost from below.
                if me + 1 < sz:
                    halo.data[0] = u[n_local]
                    comm.send(halo, me + 1, tag=1)
                if me > 0:
                    comm.recv(halo, me - 1, tag=1)
                    u[0] = halo.data[0]
                # Send left edge down, receive right ghost from above.
                if me > 0:
                    halo.data[0] = u[1]
                    comm.send(halo, me - 1, tag=2)
                if me + 1 < sz:
                    comm.recv(halo, me + 1, tag=2)
                    u[n_local + 1] = halo.data[0]
            # The actual stencil (real numbers) plus its modeled time.
            new = u[1:-1] + config.alpha * (
                u[:-2] - 2 * u[1:-1] + u[2:]
            )
            do_work(n_local * SECONDS_PER_CELL)
            local_resid = float(np.sum((new - u[1:-1]) ** 2))
            u[1:-1] = new
            resid_send.data[0] = local_resid
            comm.allreduce(resid_send, resid_recv, MPI_SUM)
            residual = float(resid_recv.data[0])
    return float(np.sum(u[1:-1])), residual
