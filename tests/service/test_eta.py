"""Campaign ETA math driven by synthetic supervisor events."""

import pytest

from repro.service.jobs import CampaignProgress


def _started(key, ts, attempt=1):
    return {"event": "cell-started", "key": key, "ts": ts,
            "attempt": attempt}


def _done(key, ts):
    return {"event": "cell-done", "key": key, "ts": ts}


def _quarantined(key, ts):
    return {"event": "cell-quarantined", "key": key, "ts": ts}


def _resumed(key, ts):
    return {"event": "cell-resumed", "key": key, "ts": ts}


class TestEta:
    def test_no_estimate_before_first_resolution(self):
        progress = CampaignProgress("job-1", total=4)
        progress.on_event(_started("a", 100.0))
        snap = progress.snapshot()
        assert snap["eta_seconds"] is None
        assert snap["cells_per_second"] is None
        assert snap["avg_cell_seconds"] is None

    def test_rate_is_executed_cells_over_span(self):
        progress = CampaignProgress("job-1", total=4)
        progress.on_event(_started("a", 100.0))
        progress.on_event(_done("a", 102.0))
        progress.on_event(_started("b", 102.0))
        progress.on_event(_done("b", 104.0))
        snap = progress.snapshot()
        # 2 cells over a 4s span -> 0.5 cells/s; 2 remaining -> 4s eta
        assert snap["cells_per_second"] == pytest.approx(0.5)
        assert snap["eta_seconds"] == pytest.approx(4.0)
        assert snap["avg_cell_seconds"] == pytest.approx(2.0)

    def test_quarantined_cells_count_as_executed(self):
        progress = CampaignProgress("job-1", total=2)
        progress.on_event(_started("a", 10.0))
        progress.on_event(_quarantined("a", 12.0))
        snap = progress.snapshot()
        assert snap["cells_per_second"] == pytest.approx(0.5)
        assert snap["eta_seconds"] == pytest.approx(2.0)

    def test_resumed_cells_reduce_remaining_not_rate(self):
        # 10 cells: 8 replayed from a checkpoint near-instantly, then
        # one executed for real.  The rate must come from the executed
        # cell alone, but the replayed ones are already resolved.
        progress = CampaignProgress("job-1", total=10)
        for i in range(8):
            progress.on_event(_resumed(f"r{i}", 50.0))
        progress.on_event(_started("a", 50.0))
        progress.on_event(_done("a", 52.0))
        snap = progress.snapshot()
        assert snap["resumed"] == 8
        # 1 executed over 2s span; remaining = 10 - (1 + 8) = 1
        assert snap["cells_per_second"] == pytest.approx(0.5)
        assert snap["eta_seconds"] == pytest.approx(2.0)

    def test_finished_campaign_eta_is_zero(self):
        progress = CampaignProgress("job-1", total=2)
        progress.on_event(_started("a", 0.0))
        progress.on_event(_done("a", 1.0))
        progress.on_event(_started("b", 1.0))
        progress.on_event(_done("b", 2.0))
        assert progress.snapshot()["eta_seconds"] == pytest.approx(0.0)

    def test_zero_span_yields_no_estimate(self):
        progress = CampaignProgress("job-1", total=4)
        progress.on_event(_started("a", 100.0))
        progress.on_event(_done("a", 100.0))
        snap = progress.snapshot()
        assert snap["cells_per_second"] is None
        assert snap["eta_seconds"] is None

    def test_retry_attempts_do_not_double_count_start(self):
        progress = CampaignProgress("job-1", total=2)
        progress.on_event(_started("a", 0.0))
        progress.on_event({"event": "cell-retry", "key": "a", "ts": 1.0})
        progress.on_event(_started("a", 1.0, attempt=2))
        progress.on_event(_done("a", 3.0))
        snap = progress.snapshot()
        assert snap["started"] == 1
        assert snap["retried"] == 1
        # wall time measured from the latest start of the cell
        assert snap["avg_cell_seconds"] == pytest.approx(2.0)


class TestFormatting:
    def test_fmt_eta(self):
        from repro.service.dashboard import _fmt_eta

        assert _fmt_eta(None) == "eta -"
        assert _fmt_eta(42.4) == "eta 42s"
        assert _fmt_eta(150.0) == "eta 2.5m"
        assert _fmt_eta(7300.0) == "eta 2.0h"
        assert _fmt_eta(-3.0) == "eta 0s"

    def test_watch_line_carries_eta(self):
        from repro.service.dashboard import render_watch

        status = {
            "jobs_by_state": {"running": 1},
            "queue_depth": 0,
            "campaigns": [
                {
                    "job_id": "job-000001",
                    "total": 4,
                    "started": 2,
                    "done": 1,
                    "failed": 0,
                    "retried": 0,
                    "resumed": 0,
                    "recent": [],
                    "avg_cell_seconds": 2.0,
                    "cells_per_second": 0.5,
                    "eta_seconds": 6.0,
                }
            ],
        }
        text = render_watch(status)
        assert "eta 6s" in text
