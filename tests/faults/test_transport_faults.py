"""Message-level faults observed through real MPI runs."""

from repro.faults import (
    FaultPlan,
    MessageLatencyNoise,
    MessageReorder,
    RankStragglers,
)
from repro.simmpi import ANY_SOURCE, MPI_INT, alloc_mpi_buf, run_mpi
from repro.work import do_work

FAST = dict(model_init_overhead=False)


def _manymsg(comm):
    """Ranks 1..n-1 each send 4 tagged messages to rank 0 (wildcard)."""
    me = comm.rank()
    buf = alloc_mpi_buf(MPI_INT, 8)
    if me == 0:
        sources = []
        for _ in range(4 * (comm.size() - 1)):
            status = comm.recv(buf, ANY_SOURCE)
            sources.append(status.source)
        return sources
    do_work(0.001 * me)
    for _ in range(4):
        comm.send(buf, 0)
        do_work(0.0005)
    return None


def test_latency_noise_slows_the_run():
    clean = run_mpi(_manymsg, 4, seed=0, **FAST)
    noisy = run_mpi(
        _manymsg,
        4,
        seed=0,
        # base latency is 5us; magnitude 5000 pushes the last arrival
        # past the senders' trailing compute, so the receiver finishes
        # last and the noise is visible in the final time
        faults=FaultPlan.of(MessageLatencyNoise(magnitude=5000.0)),
        **FAST,
    )
    assert noisy.final_time > clean.final_time


def test_straggler_rank_dominates_runtime():
    clean = run_mpi(_manymsg, 4, seed=0, **FAST)
    slow = run_mpi(
        _manymsg,
        4,
        seed=0,
        faults=FaultPlan.of(RankStragglers(ranks=(3,), slowdown=5.0)),
        **FAST,
    )
    assert slow.final_time > clean.final_time


def test_reorder_changes_wildcard_match_order_but_loses_nothing():
    plan = FaultPlan.of(MessageReorder(probability=1.0, window=4))
    clean = run_mpi(_manymsg, 4, seed=0, **FAST)
    noisy = run_mpi(_manymsg, 4, seed=0, faults=plan, **FAST)
    # every message is still matched exactly once (strict mode would
    # have raised on leftovers) and the multiset of sources is intact
    assert sorted(noisy.results[0]) == sorted(clean.results[0])


def test_message_faults_are_deterministic():
    plan = FaultPlan.of(
        MessageLatencyNoise(magnitude=10.0),
        MessageReorder(probability=0.5, window=3),
    )
    a = run_mpi(_manymsg, 4, seed=9, faults=plan, **FAST)
    b = run_mpi(_manymsg, 4, seed=9, faults=plan, **FAST)
    assert a.final_time == b.final_time
    assert a.results[0] == b.results[0]
    assert [e.to_dict() for e in a.events] == [e.to_dict() for e in b.events]
