"""Trace slicing tests."""

import pytest

from repro.trace import (
    Enter,
    Exit,
    Location,
    TraceRecorder,
    by_callpath_prefix,
    by_location,
    by_predicate,
    by_time_window,
    profile_trace,
)

L0, L1 = Location(0, 0), Location(1, 2)


def sample():
    rec = TraceRecorder()
    rec.enter(0.0, L0, "main")
    rec.enter(1.0, L0, "phase_a")
    rec.exit(3.0, L0, "phase_a")
    rec.enter(3.0, L0, "phase_b")
    rec.exit(6.0, L0, "phase_b")
    rec.exit(7.0, L0, "main")
    rec.enter(0.0, L1, "main")
    rec.exit(7.0, L1, "main")
    return rec.events


def test_by_location_rank_filter():
    sliced = by_location(sample(), ranks=[0])
    assert all(e.loc.rank == 0 for e in sliced)
    assert len(sliced) == 6


def test_by_location_thread_filter():
    sliced = by_location(sample(), threads=[2])
    assert all(e.loc == L1 for e in sliced)


def test_by_location_combined_filters():
    assert by_location(sample(), ranks=[1], threads=[0]) == []


def test_by_callpath_prefix():
    sliced = by_callpath_prefix(sample(), "phase_a")
    regions = [e.region for e in sliced]
    assert regions == ["phase_a", "phase_a"]


def test_by_callpath_prefix_includes_descendants():
    rec = TraceRecorder()
    rec.enter(0.0, L0, "outer")
    rec.enter(1.0, L0, "inner")
    rec.exit(2.0, L0, "inner")
    rec.exit(3.0, L0, "outer")
    sliced = by_callpath_prefix(rec.events, "outer")
    assert len(sliced) == 4  # inner events carry the outer prefix


def test_time_window_basic():
    sliced = by_time_window(sample(), 1.0, 3.0)
    times = [e.time for e in sliced]
    assert all(1.0 <= t <= 3.0 for t in times)


def test_time_window_rebalances_spanning_regions():
    # window (2.0, 5.0): main and phase_a open at start; phase_b open
    # at end -> synthetic enters/exits keep the slice balanced
    sliced = by_time_window(sample(), 2.0, 5.0)
    profile = profile_trace(sliced)  # would mis-nest if unbalanced
    main = profile.per_region[("main", L0)]
    assert main.inclusive == pytest.approx(3.0)
    phase_b = profile.per_region[("phase_b", L0)]
    assert phase_b.inclusive == pytest.approx(2.0)


def test_time_window_validates_bounds():
    with pytest.raises(ValueError):
        by_time_window(sample(), 5.0, 1.0)


def test_time_window_whole_span_is_identity_profile():
    full = profile_trace(sample())
    sliced = profile_trace(by_time_window(sample(), 0.0, 100.0))
    assert sliced.region_total("main") == pytest.approx(
        full.region_total("main")
    )


def test_by_predicate():
    only_exits = by_predicate(sample(), lambda e: isinstance(e, Exit))
    assert len(only_exits) == 4


def test_sliced_trace_feeds_analyzer():
    """Slice a composite run down to one half and analyze just it."""
    from repro.analysis import analyze_events
    from repro.core import run_split_program

    result = run_split_program(
        lower=["imbalance_at_mpi_barrier"],
        upper=["late_broadcast"],
        size=8,
    )
    upper_events = by_location(result.events, ranks=range(4, 8))
    analysis = analyze_events(
        upper_events, total_time=result.final_time
    )
    detected = analysis.detected(0.005)
    assert "late_broadcast" in detected
    assert "wait_at_barrier" not in detected
