"""T-POS -- positive correctness: the full detection matrix.

Paper section 1: "Positive correctness: Positive synthetic test cases
for each known and defined performance property and combinations of
them."  Every positive property function in the registry is run as a
standalone program, analyzed, and must exhibit all (and only) its
intended properties.  Shape claim: the diagonal of the matrix is 100%.
"""

from repro.core import list_properties
from repro.validation import run_validation_matrix


def run_positive_matrix():
    specs = list_properties(negative=False)
    return run_validation_matrix(specs=specs, size=8, num_threads=4)


def test_positive_detection_matrix(benchmark):
    matrix = benchmark.pedantic(
        run_positive_matrix, rounds=1, iterations=1
    )
    print("\nT-POS detection matrix (positive programs):")
    print(matrix.format_table())
    assert matrix.positive_detection_rate == 1.0
    assert matrix.all_passed, [
        (r.name, r.missing, r.spurious)
        for r in matrix.rows
        if not r.passed
    ]


def test_matrix_robust_across_sizes(benchmark):
    """The paper requires property functions to work 'with little
    context'; the matrix must stay perfect at other world sizes."""

    def run():
        return [
            run_validation_matrix(
                specs=list_properties(negative=False, paradigm="mpi"),
                size=size,
            )
            for size in (4, 12)
        ]

    matrices = benchmark.pedantic(run, rounds=1, iterations=1)
    for size, matrix in zip((4, 12), matrices):
        print(f"\n  size={size}: positive rate "
              f"{matrix.positive_detection_rate:.0%}")
        assert matrix.positive_detection_rate == 1.0


def test_matrix_robust_across_seeds(benchmark):
    def run():
        return [
            run_validation_matrix(
                specs=list_properties(negative=False, paradigm="mpi"),
                size=8,
                seed=seed,
            )
            for seed in (1, 2)
        ]

    matrices = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(m.positive_detection_rate == 1.0 for m in matrices)
