"""Distribution descriptors.

These mirror the paper's predefined C structs (``val1_distr_t`` ..
``val3_distr_t``): small parameter records with one to three values,
passed to a distribution function.  They are frozen dataclasses so a
descriptor can be reused across ranks and repetitions without aliasing
surprises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class Val1Distr:
    """One-parameter descriptor: a single value for everyone."""

    val: float

    def __post_init__(self) -> None:
        if self.val < 0:
            raise ValueError("distribution value must be non-negative")


@dataclass(frozen=True)
class Val2Distr:
    """Two-parameter descriptor: a low and a high value."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < 0:
            raise ValueError("distribution values must be non-negative")


@dataclass(frozen=True)
class Val2NDistr:
    """Two values plus a participant index ``n`` (for peak-style shapes)."""

    low: float
    high: float
    n: int

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < 0:
            raise ValueError("distribution values must be non-negative")
        if self.n < 0:
            raise ValueError("peak index n must be non-negative")


@dataclass(frozen=True)
class Val3Distr:
    """Three-parameter descriptor: low, medium and high values."""

    low: float
    high: float
    med: float

    def __post_init__(self) -> None:
        if min(self.low, self.high, self.med) < 0:
            raise ValueError("distribution values must be non-negative")


DistrDescriptor = Union[Val1Distr, Val2Distr, Val2NDistr, Val3Distr]
