"""Trace persistence: JSON-lines writer and reader.

The format is deliberately simple and line-oriented so traces can be
inspected with standard text tools, diffed across runs (determinism
checks) and loaded back for offline analysis -- the workflow the paper
envisions between the ATS programs and the analysis tools under test.

:class:`TraceWriter` buffers serialized lines and writes them in large
chunks; it is a context manager with explicit ``flush``/``close`` so
buffered tails cannot be silently dropped when a run crashes --
``close`` always drains the buffer first.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

from .events import Event, event_from_dict

FORMAT_VERSION = 1

#: buffered lines before an automatic drain to the file
_BUFFER_LINES = 1024


class TraceWriter:
    """Buffered JSONL trace writer.

    Opens ``path`` immediately and queues the header; event lines are
    serialized eagerly but written in chunks of ``buffer_lines``.
    Always use as a context manager (or call :meth:`close`)::

        with TraceWriter(path, metadata={"program": name}) as writer:
            writer.write_many(recorder.events)
    """

    def __init__(
        self,
        path: Union[str, Path],
        metadata: dict | None = None,
        buffer_lines: int = _BUFFER_LINES,
    ):
        self.path = Path(path)
        self.count = 0
        self.closed = False
        self._buffer_lines = max(1, buffer_lines)
        self._buf: list[str] = []
        self._fh = self.path.open("w", encoding="utf-8")
        header = {"format": "ats-trace", "version": FORMAT_VERSION}
        if metadata:
            header["metadata"] = metadata
        self._buf.append(json.dumps(header) + "\n")

    def write(self, event: Event) -> None:
        """Queue one event line (drains when the buffer fills)."""
        if self.closed:
            raise ValueError("write to closed TraceWriter")
        buf = self._buf
        buf.append(json.dumps(event.to_dict()) + "\n")
        self.count += 1
        if len(buf) >= self._buffer_lines:
            self._drain()

    def write_many(self, events: Iterable[Event]) -> int:
        """Queue a batch of events; returns how many were queued."""
        n = 0
        for event in events:
            self.write(event)
            n += 1
        return n

    def _drain(self) -> None:
        if self._buf:
            self._fh.write("".join(self._buf))
            self._buf.clear()

    def flush(self) -> None:
        """Drain the line buffer and flush the underlying file."""
        self._drain()
        self._fh.flush()

    def close(self) -> None:
        """Drain, flush and close (idempotent)."""
        if self.closed:
            return
        try:
            self._drain()
            self._fh.flush()
        finally:
            self.closed = True
            self._fh.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def write_trace(
    path: Union[str, Path],
    events: Iterable[Event],
    metadata: dict | None = None,
) -> int:
    """Write events to ``path`` in JSONL format; returns event count.

    The first line is a header record with the format version and
    optional run metadata (program name, size, transport parameters...).
    """
    with TraceWriter(path, metadata) as writer:
        return writer.write_many(events)


def read_trace(path: Union[str, Path]) -> tuple[list[Event], dict]:
    """Read a JSONL trace; returns ``(events, metadata)``."""
    path = Path(path)
    events: list[Event] = []
    metadata: dict = {}
    with path.open("r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(first)
        if header.get("format") != "ats-trace":
            raise ValueError(f"{path}: not an ats-trace file")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported trace version {header.get('version')}"
            )
        metadata = header.get("metadata", {})
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(event_from_dict(json.loads(line)))
            except (json.JSONDecodeError, ValueError, TypeError) as exc:
                raise ValueError(f"{path}:{lineno}: bad event: {exc}") from exc
    return events, metadata
