"""A CG-style iterative solver skeleton.

Each iteration does the communication pattern of a conjugate-gradient
step on a 1-D-partitioned sparse matrix: halo sendrecv for the matvec,
computation proportional to local rows, and two dot products
(allreduce).  The numeric content is a simple tridiagonal matvec so
results are verifiable.  Documented performance behaviour:

* balanced rows: only allreduce latency (negative case),
* ``row_imbalance > 0``: linear row skew makes the two allreduces per
  iteration absorb the spread -- *wait at NxN* dominating as iteration
  count grows (the behaviour NPB CG exhibits under bad partitioning).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simmpi.buffers import alloc_mpi_buf
from ..simmpi.communicator import Communicator
from ..simmpi.datatypes import MPI_DOUBLE, MPI_SUM
from ..trace.api import region
from ..work import do_work

SECONDS_PER_ROW = 3e-7
TAG_HALO_UP = 11
TAG_HALO_DOWN = 12


@dataclass(frozen=True)
class CgConfig:
    """Parameters of one CG-like run."""

    total_rows: int = 8192
    iterations: int = 8
    row_imbalance: float = 0.0

    def rows_of(self, rank: int, size: int) -> int:
        if size == 1:
            return self.total_rows
        weights = [
            1.0 + self.row_imbalance * (r / (size - 1))
            for r in range(size)
        ]
        total_w = sum(weights)
        rows = [
            max(8, int(self.total_rows * w / total_w))
            for w in weights
        ]
        rows[-1] += self.total_rows - sum(rows)
        return rows[rank]


def cg_like(comm: Communicator, config: CgConfig = CgConfig()) -> float:
    """Run the solver skeleton; every rank returns the final 'rho'."""
    me = comm.rank()
    sz = comm.size()
    n = config.rows_of(me, sz)
    x = np.linspace(me, me + 1, n)
    halo = alloc_mpi_buf(MPI_DOUBLE, 1)
    dot_s = alloc_mpi_buf(MPI_DOUBLE, 1)
    dot_r = alloc_mpi_buf(MPI_DOUBLE, 1)
    rho = 0.0
    with region("cg_like"):
        for _ in range(config.iterations):
            with region("matvec"):
                lo_ghost = hi_ghost = 0.0
                if me + 1 < sz:
                    halo.data[0] = x[-1]
                    comm.send(halo, me + 1, TAG_HALO_UP)
                if me > 0:
                    comm.recv(halo, me - 1, TAG_HALO_UP)
                    lo_ghost = float(halo.data[0])
                    halo.data[0] = x[0]
                    comm.send(halo, me - 1, TAG_HALO_DOWN)
                if me + 1 < sz:
                    comm.recv(halo, me + 1, TAG_HALO_DOWN)
                    hi_ghost = float(halo.data[0])
                padded = np.concatenate(([lo_ghost], x, [hi_ghost]))
                y = 2 * padded[1:-1] - padded[:-2] - padded[2:]
                do_work(n * SECONDS_PER_ROW)
            with region("dot_products"):
                dot_s.data[0] = float(np.dot(x, y))
                comm.allreduce(dot_s, dot_r, MPI_SUM)
                rho = float(dot_r.data[0])
                dot_s.data[0] = float(np.dot(y, y))
                comm.allreduce(dot_s, dot_r, MPI_SUM)
                norm = float(dot_r.data[0])
            # A fake update step keeping numbers bounded.
            if norm > 0:
                x = x + (rho / norm) * y * 1e-3
    return rho
