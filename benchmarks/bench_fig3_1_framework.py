"""F3.1 -- Figure 3.1: the layered structure of the ATS framework.

The figure is architectural: modules and their used-by relationships.
This bench verifies the reproduction exposes the same layer stack with
the same inventories (distribution functions, buffer managers,
communication patterns, property functions, composition entry points)
and reports the per-layer counts.
"""

import importlib

from repro.core import ALL_MPI_PROPERTY_CHAIN, list_properties
from repro.distributions import list_distributions

#: figure 3.1's layers, bottom to top, as (module, required attributes)
LAYERS = [
    ("repro.work", ["do_work", "par_do_mpi_work", "par_do_omp_work"]),
    ("repro.distributions", [
        "df_same", "df_cyclic2", "df_block2", "df_linear", "df_peak",
        "df_cyclic3", "df_block3",
    ]),
    ("repro.simmpi", [
        "alloc_mpi_buf", "free_mpi_buf", "alloc_mpi_vbuf",
        "free_mpi_vbuf", "mpi_commpattern_sendrecv",
        "mpi_commpattern_shift",
    ]),
    ("repro.simomp", ["omp_parallel", "omp_barrier", "omp_for"]),
    ("repro.core.properties", [
        "late_sender", "late_receiver", "imbalance_at_mpi_barrier",
        "imbalance_at_mpi_alltoall", "late_broadcast", "late_scatter",
        "late_scatterv", "early_reduce", "early_gather",
        "early_gatherv", "imbalance_in_omp_pregion",
        "imbalance_at_omp_barrier", "imbalance_in_omp_loop",
    ]),
    ("repro.core", [
        "run_chain", "run_split_program", "run_hybrid_composite",
        "generate_single_property_script",
    ]),
]


def check_layers():
    report = []
    for module_name, attrs in LAYERS:
        module = importlib.import_module(module_name)
        missing = [a for a in attrs if not hasattr(module, a)]
        report.append((module_name, len(attrs), missing))
    return report


def test_fig3_1_layer_stack(benchmark):
    report = benchmark.pedantic(check_layers, rounds=1, iterations=1)
    print("\nF3.1 framework structure (paper figure 3.1):")
    for module_name, count, missing in report:
        status = "ok" if not missing else f"MISSING {missing}"
        print(f"  {module_name:<28} {count:>3} interface items  {status}")
    assert all(not missing for _, _, missing in report)


def test_fig3_1_inventories(benchmark):
    """The paper's concrete per-layer inventories are complete."""
    dist_names = benchmark.pedantic(
        lambda: {s.name for s in list_distributions()},
        rounds=1, iterations=1,
    )
    assert {
        "same", "cyclic2", "block2", "linear", "peak", "cyclic3",
        "block3",
    } <= dist_names

    property_names = {s.name for s in list_properties()}
    assert set(ALL_MPI_PROPERTY_CHAIN) <= property_names
    print(f"\n  distributions: {len(dist_names)}  "
          f"property functions: {len(property_names)} "
          f"(paper prototype had 7 and 13)")
