"""Collective algorithms, implemented over internal point-to-point.

Rather than assigning collective operations an opaque cost, every
collective is the real algorithm an MPI library would run (binomial
trees, dissemination barrier, ring allgather, pairwise alltoall) built
from internal messages that traverse the same transport cost model as
user traffic.  This makes the *timing dependencies* between
participants emerge naturally -- a broadcast's non-roots really cannot
finish before the root arrives -- which is exactly what the collective
performance properties (late broadcast, early reduce, wait-at-NxN...)
need to exhibit.

All functions are internal; user code calls the corresponding
:class:`~repro.simmpi.communicator.Communicator` methods.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from .buffers import MpiBuf, MpiVBuf
from .datatypes import (
    ALL_DATATYPES,
    MPI_BYTE,
    Datatype,
    Op,
)
from .errors import MpiError

if TYPE_CHECKING:  # pragma: no cover
    from .communicator import Communicator

_NP_TO_DATATYPE = {dt.np_dtype.str: dt for dt in ALL_DATATYPES}


def dtype_for_array(arr: np.ndarray) -> Datatype:
    """Map a numpy array's dtype to the matching MPI datatype."""
    try:
        return _NP_TO_DATATYPE[arr.dtype.str]
    except KeyError:
        raise MpiError(
            f"no MPI datatype for numpy dtype {arr.dtype}"
        ) from None


_EMPTY = np.zeros(0, dtype=np.uint8)


def barrier(comm: "Communicator", instance: int) -> None:
    """Barrier; algorithm selected by the world's collective tuning."""
    if comm.world.collectives.barrier == "linear":
        barrier_linear(comm, instance)
    else:
        barrier_dissemination(comm, instance)


def barrier_dissemination(comm: "Communicator", instance: int) -> None:
    """Dissemination barrier: ceil(log2(size)) rounds of 0-byte messages."""
    me = comm.rank()
    sz = comm.size()
    if sz == 1:
        return
    step = 0
    dist = 1
    while dist < sz:
        tag = comm._coll_tag(instance, step)
        dst = (me + dist) % sz
        src = (me - dist) % sz
        rreq = comm._int_irecv(
            np.zeros(0, dtype=np.uint8), MPI_BYTE, src, tag
        )
        comm._int_send(_EMPTY, MPI_BYTE, dst, tag)
        rreq.wait()
        dist <<= 1
        step += 1


def barrier_linear(comm: "Communicator", instance: int) -> None:
    """Central-coordinator barrier: gather at 0, then release messages."""
    me = comm.rank()
    sz = comm.size()
    if sz == 1:
        return
    gather_tag = comm._coll_tag(instance, 0)
    release_tag = comm._coll_tag(instance, 1)
    if me == 0:
        for src in range(1, sz):
            comm._int_recv(
                np.zeros(0, dtype=np.uint8), MPI_BYTE, src, gather_tag
            )
        for dst in range(1, sz):
            comm._int_send(_EMPTY, MPI_BYTE, dst, release_tag)
    else:
        comm._int_send(_EMPTY, MPI_BYTE, 0, gather_tag)
        comm._int_recv(
            np.zeros(0, dtype=np.uint8), MPI_BYTE, 0, release_tag
        )


def bcast(
    comm: "Communicator", buf: MpiBuf, root: int, instance: int
) -> None:
    """Broadcast; algorithm selected by the world's collective tuning."""
    if comm.world.collectives.bcast == "linear":
        bcast_linear(comm, buf, root, instance)
    else:
        bcast_binomial(comm, buf, root, instance)


def bcast_binomial(
    comm: "Communicator", buf: MpiBuf, root: int, instance: int
) -> None:
    """Binomial-tree broadcast from ``root`` (log2(size) depth)."""
    me = comm.rank()
    sz = comm.size()
    if sz == 1:
        return
    tag = comm._coll_tag(instance, 0)
    vr = (me - root) % sz
    mask = 1
    while mask < sz:
        if vr & mask:
            parent = ((vr - mask) + root) % sz
            comm._int_recv(buf.data, buf.type, parent, tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vr + mask < sz:
            child = ((vr + mask) + root) % sz
            comm._int_send(buf.data, buf.type, child, tag)
        mask >>= 1


def bcast_linear(
    comm: "Communicator", buf: MpiBuf, root: int, instance: int
) -> None:
    """Linear broadcast: the root sends to every rank in turn.

    O(size) root-sequential -- the naive algorithm, provided so tools
    can be exercised against different collective implementations (the
    paper's portability question in section 3.3).
    """
    me = comm.rank()
    sz = comm.size()
    if sz == 1:
        return
    tag = comm._coll_tag(instance, 0)
    if me == root:
        for dst in range(sz):
            if dst != root:
                comm._int_send(buf.data, buf.type, dst, tag)
    else:
        comm._int_recv(buf.data, buf.type, root, tag)


def reduce(
    comm: "Communicator",
    sendbuf: MpiBuf,
    recvbuf: Optional[MpiBuf],
    op: Op,
    root: int,
    instance: int,
    tag_step: int = 0,
) -> None:
    """Reduction; algorithm selected by the world's collective tuning."""
    if comm.world.collectives.reduce == "linear":
        reduce_linear(
            comm, sendbuf, recvbuf, op, root, instance, tag_step
        )
    else:
        reduce_binomial(
            comm, sendbuf, recvbuf, op, root, instance, tag_step
        )


def reduce_linear(
    comm: "Communicator",
    sendbuf: MpiBuf,
    recvbuf: Optional[MpiBuf],
    op: Op,
    root: int,
    instance: int,
    tag_step: int = 0,
) -> None:
    """Linear reduction: the root receives and combines in rank order."""
    me = comm.rank()
    sz = comm.size()
    tag = comm._coll_tag(instance, tag_step)
    if me == root:
        assert recvbuf is not None
        acc = np.array(sendbuf.data, copy=True)
        tmp = np.empty_like(acc)
        for src in range(sz):
            if src == root:
                continue
            comm._int_recv(tmp, sendbuf.type, src, tag)
            acc = op(acc, tmp)
        recvbuf.data[: len(acc)] = acc
    else:
        comm._int_send(sendbuf.data, sendbuf.type, root, tag)


def reduce_binomial(
    comm: "Communicator",
    sendbuf: MpiBuf,
    recvbuf: Optional[MpiBuf],
    op: Op,
    root: int,
    instance: int,
    tag_step: int = 0,
) -> None:
    """Binomial-tree reduction to ``root`` (commutative operations)."""
    me = comm.rank()
    sz = comm.size()
    tag = comm._coll_tag(instance, tag_step)
    vr = (me - root) % sz
    acc = np.array(sendbuf.data, copy=True)
    tmp = np.empty_like(acc)
    mask = 1
    while mask < sz:
        if vr & mask == 0:
            peer_vr = vr | mask
            if peer_vr < sz:
                peer = (peer_vr + root) % sz
                comm._int_recv(tmp, sendbuf.type, peer, tag)
                acc = op(acc, tmp)
        else:
            parent = ((vr - mask) + root) % sz
            comm._int_send(acc, sendbuf.type, parent, tag)
            break
        mask <<= 1
    if me == root:
        assert recvbuf is not None
        recvbuf.data[: len(acc)] = acc


def allreduce(
    comm: "Communicator",
    sendbuf: MpiBuf,
    recvbuf: MpiBuf,
    op: Op,
    instance: int,
) -> None:
    """Reduce to rank 0 followed by a broadcast of the result."""
    reduce(comm, sendbuf, recvbuf, op, root=0, instance=instance, tag_step=0)
    # Non-roots broadcast into their recv buffers; tag slot 1 keeps the
    # two phases in disjoint envelope spaces.
    me = comm.rank()
    sz = comm.size()
    if sz == 1:
        if me == 0:
            return
    tag = comm._coll_tag(instance, 1)
    vr = me  # root is 0
    mask = 1
    while mask < sz:
        if vr & mask:
            comm._int_recv(recvbuf.data, recvbuf.type, vr - mask, tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vr + mask < sz:
            comm._int_send(recvbuf.data, recvbuf.type, vr + mask, tag)
        mask >>= 1


def scatter(
    comm: "Communicator",
    sendbuf: Optional[MpiBuf],
    recvbuf: MpiBuf,
    root: int,
    instance: int,
) -> None:
    """Linear scatter: the root sends each rank its chunk."""
    me = comm.rank()
    sz = comm.size()
    tag = comm._coll_tag(instance, 0)
    k = recvbuf.cnt
    if me == root:
        assert sendbuf is not None
        for r in range(sz):
            chunk = sendbuf.data[r * k : (r + 1) * k]
            if r == me:
                recvbuf.data[:] = chunk
            else:
                comm._int_send(chunk, recvbuf.type, r, tag)
    else:
        comm._int_recv(recvbuf.data, recvbuf.type, root, tag)


def scatterv(
    comm: "Communicator", vbuf: MpiVBuf, root: int, instance: int
) -> None:
    """Linear irregular scatter with v-buffer counts/displacements."""
    me = comm.rank()
    sz = comm.size()
    tag = comm._coll_tag(instance, 0)
    if me == root:
        for r in range(sz):
            lo = vbuf.displs[r]
            chunk = vbuf.rootbuf.data[lo : lo + vbuf.counts[r]]
            if r == me:
                vbuf.buf.data[: len(chunk)] = chunk
            else:
                comm._int_send(chunk, vbuf.type, r, tag)
    else:
        comm._int_recv(vbuf.buf.data, vbuf.type, root, tag)


def gather(
    comm: "Communicator",
    sendbuf: MpiBuf,
    recvbuf: Optional[MpiBuf],
    root: int,
    instance: int,
) -> None:
    """Linear gather: every rank sends its chunk to the root."""
    me = comm.rank()
    sz = comm.size()
    tag = comm._coll_tag(instance, 0)
    k = sendbuf.cnt
    if me == root:
        assert recvbuf is not None
        requests = []
        for r in range(sz):
            if r == me:
                recvbuf.data[r * k : (r + 1) * k] = sendbuf.data
            else:
                requests.append(
                    comm._int_irecv(
                        recvbuf.data[r * k : (r + 1) * k],
                        sendbuf.type,
                        r,
                        tag,
                    )
                )
        for req in requests:
            req.wait()
    else:
        comm._int_send(sendbuf.data, sendbuf.type, root, tag)


def gatherv(
    comm: "Communicator", vbuf: MpiVBuf, root: int, instance: int
) -> None:
    """Linear irregular gather with v-buffer counts/displacements."""
    me = comm.rank()
    sz = comm.size()
    tag = comm._coll_tag(instance, 0)
    if me == root:
        requests = []
        for r in range(sz):
            lo = vbuf.displs[r]
            target = vbuf.rootbuf.data[lo : lo + vbuf.counts[r]]
            if r == me:
                target[:] = vbuf.buf.data[: vbuf.counts[r]]
            else:
                requests.append(
                    comm._int_irecv(target, vbuf.type, r, tag)
                )
        for req in requests:
            req.wait()
    else:
        comm._int_send(
            vbuf.buf.data[: vbuf.counts[me]], vbuf.type, root, tag
        )


def allgather_raw(
    comm: "Communicator",
    own: np.ndarray,
    out: np.ndarray,
    instance: int,
    step_base: int = 0,
) -> None:
    """Ring allgather over raw numpy arrays (used by allgather and split)."""
    me = comm.rank()
    sz = comm.size()
    k = len(own)
    dtype = dtype_for_array(out)
    out[me * k : (me + 1) * k] = own
    if sz == 1:
        return
    right = (me + 1) % sz
    left = (me - 1) % sz
    tag = comm._coll_tag(instance, step_base)
    for step in range(sz - 1):
        send_block = (me - step) % sz
        recv_block = (me - step - 1) % sz
        rreq = comm._int_irecv(
            out[recv_block * k : (recv_block + 1) * k], dtype, left, tag
        )
        comm._int_send(
            out[send_block * k : (send_block + 1) * k], dtype, right, tag
        )
        rreq.wait()


def allgather(
    comm: "Communicator",
    sendbuf: MpiBuf,
    recvbuf: MpiBuf,
    instance: int,
) -> None:
    """Ring allgather."""
    allgather_raw(comm, sendbuf.data, recvbuf.data, instance)


def alltoall(
    comm: "Communicator",
    sendbuf: MpiBuf,
    recvbuf: MpiBuf,
    instance: int,
) -> None:
    """Pairwise-exchange alltoall.

    In step ``s`` every rank sends to ``(me+s) % size`` and receives
    from ``(me-s) % size``; all pairs therefore exchange exactly once
    and the operation completes only when the slowest participant has
    arrived -- the NxN completion semantics.
    """
    me = comm.rank()
    sz = comm.size()
    k = sendbuf.cnt // sz
    tag = comm._coll_tag(instance, 0)
    recvbuf.data[me * k : (me + 1) * k] = sendbuf.data[
        me * k : (me + 1) * k
    ]
    for step in range(1, sz):
        dst = (me + step) % sz
        src = (me - step) % sz
        rreq = comm._int_irecv(
            recvbuf.data[src * k : (src + 1) * k], sendbuf.type, src, tag
        )
        comm._int_send(
            sendbuf.data[dst * k : (dst + 1) * k], sendbuf.type, dst, tag
        )
        rreq.wait()


def scan(
    comm: "Communicator",
    sendbuf: MpiBuf,
    recvbuf: MpiBuf,
    op: Op,
    instance: int,
) -> None:
    """Linear-chain inclusive prefix reduction."""
    me = comm.rank()
    sz = comm.size()
    tag = comm._coll_tag(instance, 0)
    acc = np.array(sendbuf.data, copy=True)
    if me > 0:
        tmp = np.empty_like(acc)
        comm._int_recv(tmp, sendbuf.type, me - 1, tag)
        acc = op(tmp, acc)
    recvbuf.data[: len(acc)] = acc
    if me < sz - 1:
        comm._int_send(acc, sendbuf.type, me + 1, tag)


def exscan(
    comm: "Communicator",
    sendbuf: MpiBuf,
    recvbuf: MpiBuf,
    op: Op,
    instance: int,
) -> None:
    """Linear-chain exclusive prefix reduction.

    Rank 0's receive buffer is zero-filled (MPI leaves it undefined;
    zeroing keeps simulated programs deterministic).
    """
    me = comm.rank()
    sz = comm.size()
    tag = comm._coll_tag(instance, 0)
    if me == 0:
        recvbuf.data[:] = 0
        acc = np.array(sendbuf.data, copy=True)
    else:
        prefix = np.empty_like(np.asarray(sendbuf.data))
        comm._int_recv(prefix, sendbuf.type, me - 1, tag)
        recvbuf.data[: len(prefix)] = prefix
        acc = op(prefix, np.asarray(sendbuf.data))
    if me < sz - 1:
        comm._int_send(acc, sendbuf.type, me + 1, tag)


def reduce_scatter_block(
    comm: "Communicator",
    sendbuf: MpiBuf,
    recvbuf: MpiBuf,
    op: Op,
    instance: int,
) -> None:
    """Reduce-scatter with equal blocks: reduce at 0, then scatter.

    ``sendbuf`` holds ``size * recvbuf.cnt`` elements at every rank;
    rank ``i`` receives the reduction of everyone's block ``i``.
    """
    me = comm.rank()
    tmp = MpiBuf(type=sendbuf.type, cnt=sendbuf.cnt)
    reduce(
        comm, sendbuf, tmp if me == 0 else None, op, 0, instance,
        tag_step=0,
    )
    # Scatter the reduced vector from rank 0 (tag slot separated).
    sz = comm.size()
    k = recvbuf.cnt
    tag = comm._coll_tag(instance, 1)
    if me == 0:
        for r in range(sz):
            chunk = tmp.data[r * k : (r + 1) * k]
            if r == 0:
                recvbuf.data[:] = chunk
            else:
                comm._int_send(chunk, recvbuf.type, r, tag)
    else:
        comm._int_recv(recvbuf.data, recvbuf.type, 0, tag)
