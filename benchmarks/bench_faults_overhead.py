#!/usr/bin/env python
"""Fault-injection hook overhead benchmark.

The fault hooks sit on hot paths -- every ``hold``, every message
transfer, every trace record -- so their cost must be near zero when
injection is off and modest when it is on.  This benchmark runs the
hybrid-64 composite (the shape ``bench_perf_core`` sweeps) in three
modes and records wall-time deltas into ``BENCH_FAULTS.json`` at the
repository root:

* ``off``   -- no injector bound (``faults=None``); the hooks reduce to
  one ``is not None`` test each, and this mode must stay within noise
  of the clean baseline,
* ``noop``  -- a zero-magnitude plan; ``FaultInjector.coerce`` resolves
  it to ``None``, so this must match ``off`` exactly,
* ``on``    -- the canonical ``FaultPlan.default()`` with every
  perturbation domain active.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_faults_overhead.py           # full
    PYTHONPATH=src python benchmarks/bench_faults_overhead.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import run_hybrid_composite  # noqa: E402
from repro.faults import FaultInjector, FaultPlan  # noqa: E402

from bench_perf_core import (  # noqa: E402
    HYBRID_MPI_STEPS,
    HYBRID_OMP_STEPS,
)

OUT_PATH = REPO_ROOT / "BENCH_FAULTS.json"

MODES = ("off", "noop", "on")


def _plan(mode: str):
    if mode == "off":
        return None
    if mode == "noop":
        return FaultPlan.default().scaled(0.0)
    return FaultPlan.default()


def _measure(size: int, num_threads: int, repeats: int, mode: str) -> dict:
    """Best-of-``repeats`` wall time for one fault mode."""
    best = None
    events = 0
    for _ in range(repeats):
        faults = FaultInjector.coerce(_plan(mode))
        t0 = time.perf_counter()
        result = run_hybrid_composite(
            HYBRID_MPI_STEPS,
            HYBRID_OMP_STEPS,
            size=size,
            num_threads=num_threads,
            faults=faults,
        )
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
        events = len(result.recorder.events)
    return {"wall_s": round(best, 6), "events": events}


def run_modes(size: int, num_threads: int, repeats: int) -> dict:
    rows = {}
    for mode in MODES:
        rows[mode] = _measure(size, num_threads, repeats, mode)
        print(f"{mode:>6}: {rows[mode]['wall_s']*1000:8.1f} ms "
              f"({rows[mode]['events']} events)")
    off = rows["off"]["wall_s"]
    for mode in ("noop", "on"):
        rel = rows[mode]["wall_s"] / off - 1.0 if off else 0.0
        rows[mode]["overhead_vs_off"] = round(rel, 4)
        print(f"{mode:>6} overhead vs off: {rel:+.2%}")
    return {
        "size": size,
        "num_threads": num_threads,
        "repeats": repeats,
        "modes": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny parameters for CI smoke runs (no BENCH_FAULTS.json "
        "write)",
    )
    parser.add_argument("--size", type=int, default=64)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    if args.quick:
        run_modes(size=4, num_threads=2, repeats=1)
        print("quick smoke ok")
        return 0

    measurement = run_modes(args.size, args.threads, args.repeats)
    existing = {}
    if OUT_PATH.exists():
        existing = json.loads(OUT_PATH.read_text())
    existing[f"hybrid-{args.size}"] = measurement
    OUT_PATH.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
