"""Declarative campaign specs for the scenario synthesis engine.

A :class:`CampaignSpec` is the whole experiment in one (JSON-safe)
value: which property pool to sample, how severe, where the pathology
lands (rank placement), which benign app skeleton surrounds it, under
how much injected noise, and with which sampling strategy -- grid,
random, or adversarial.  Everything downstream (scenario generation,
execution, archiving, scoring) is a pure function of the spec and its
seed, which is what makes synthesized ground truth trustworthy: the
manifest and the program are derived from the *same* sampling
decisions, so the oracle cannot drift from the workload.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Tuple

from ..core.registry import has_property
from ..faults import FaultPlan

#: severity bands and the scale factor applied to a property's
#: severity parameters (via PropertySpec.scaled_params)
BAND_FACTORS = {"low": 0.6, "medium": 1.0, "high": 1.8}
BANDS: Tuple[str, ...] = ("low", "medium", "high")
STRATEGIES: Tuple[str, ...] = ("grid", "random", "adversarial")
GENERATORS: Tuple[str, ...] = ("mix",)
PLACEMENTS: Tuple[str, ...] = ("all", "lower", "upper")

#: campaign names may not contain "/" (reserved for scenario names) or
#: "|" (reserved for checkpoint cell keys)
_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9_.-]*")


class SynthError(ValueError):
    """An invalid campaign spec or synthesis request."""


@dataclass(frozen=True)
class NoiseConfig:
    """Fault-plan noise applied to synthesized scenarios.

    ``magnitudes`` is the pool of plan scale factors scenarios sample
    from; the default is noiseless (a single 0.0 entry, which
    :meth:`~repro.faults.FaultInjector.coerce` resolves to the exact
    clean path).
    """

    plan: FaultPlan = field(default_factory=FaultPlan)
    magnitudes: Tuple[float, ...] = (0.0,)

    def __post_init__(self) -> None:
        if not self.magnitudes:
            raise SynthError("noise config needs at least one magnitude")
        for m in self.magnitudes:
            if m < 0:
                raise SynthError(f"negative noise magnitude {m!r}")

    @classmethod
    def default(cls) -> "NoiseConfig":
        """The robustness sweep's default plan at three magnitudes."""
        return cls(plan=FaultPlan.default(), magnitudes=(0.0, 0.35, 0.7))

    def to_dict(self) -> dict:
        return {
            "plan": self.plan.to_dict(),
            "magnitudes": list(self.magnitudes),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "NoiseConfig":
        return cls(
            plan=FaultPlan.from_dict(d.get("plan", {})),
            magnitudes=tuple(d.get("magnitudes", (0.0,))),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative synthesis campaign (see module docstring)."""

    name: str
    generator: str = "mix"
    strategy: str = "grid"
    #: number of base scenarios (adversarial rounds add more on top)
    scenarios: int = 100
    #: property pool to sample doses from; empty = every registered
    #: program (positives and negatives -- negatives yield clean cells)
    properties: Tuple[str, ...] = ()
    #: benign app skeletons run before the property phase
    skeletons: Tuple[str, ...] = ("none",)
    sizes: Tuple[int, ...] = (4,)
    threads: int = 2
    bands: Tuple[str, ...] = BANDS
    placements: Tuple[str, ...] = PLACEMENTS
    #: maximum property doses mixed into one scenario
    max_properties: int = 2
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    #: abort the campaign after this many errored cells (-1: unlimited)
    max_failures: int = -1
    #: supervisor retries per cell (consumed by the CLI/service layer)
    max_retries: int = 0
    seed: int = 0
    #: adversarial strategy: how many refinement rounds, and how many
    #: top-disagreement cells each round perturbs
    adversarial_rounds: int = 2
    adversarial_top: int = 4

    def __post_init__(self) -> None:
        if not self.name or not _NAME_RE.fullmatch(self.name):
            raise SynthError(
                f"bad campaign name {self.name!r} "
                "(letters, digits, '_', '.', '-' only)"
            )
        if has_property(self.name):
            # A synthesized scenario family must never shadow a
            # hand-written registry program: lookups and archive
            # records key on the name.
            raise SynthError(
                f"campaign name {self.name!r} collides with a "
                "registered property program; pick a distinct name"
            )
        if self.generator not in GENERATORS:
            raise SynthError(
                f"unknown generator {self.generator!r} "
                f"(choose from {', '.join(GENERATORS)})"
            )
        if self.strategy not in STRATEGIES:
            raise SynthError(
                f"unknown strategy {self.strategy!r} "
                f"(choose from {', '.join(STRATEGIES)})"
            )
        if self.scenarios < 1:
            raise SynthError("scenarios must be >= 1")
        if self.max_properties < 1:
            raise SynthError("max_properties must be >= 1")
        if self.threads < 1:
            raise SynthError("threads must be >= 1")
        if self.max_retries < 0:
            raise SynthError("max_retries must be >= 0")
        if self.adversarial_rounds < 0 or self.adversarial_top < 1:
            raise SynthError("bad adversarial configuration")
        if not self.sizes or any(s < 1 for s in self.sizes):
            raise SynthError("sizes must be a non-empty tuple of >= 1")
        if not self.bands:
            raise SynthError("need at least one severity band")
        for band in self.bands:
            if band not in BAND_FACTORS:
                raise SynthError(
                    f"unknown severity band {band!r} "
                    f"(choose from {', '.join(BANDS)})"
                )
        if not self.placements:
            raise SynthError("need at least one placement")
        for placement in self.placements:
            if placement not in PLACEMENTS:
                raise SynthError(
                    f"unknown placement {placement!r} "
                    f"(choose from {', '.join(PLACEMENTS)})"
                )
        if not self.skeletons:
            raise SynthError("need at least one skeleton")

    def scenario_name(self, index: int) -> str:
        return f"{self.name}/{index:05d}"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "generator": self.generator,
            "strategy": self.strategy,
            "scenarios": self.scenarios,
            "properties": list(self.properties),
            "skeletons": list(self.skeletons),
            "sizes": list(self.sizes),
            "threads": self.threads,
            "bands": list(self.bands),
            "placements": list(self.placements),
            "max_properties": self.max_properties,
            "noise": self.noise.to_dict(),
            "max_failures": self.max_failures,
            "max_retries": self.max_retries,
            "seed": self.seed,
            "adversarial_rounds": self.adversarial_rounds,
            "adversarial_top": self.adversarial_top,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CampaignSpec":
        try:
            name = d["name"]
        except KeyError:
            raise SynthError("campaign spec needs a 'name'") from None
        defaults = cls.__dataclass_fields__
        unknown = set(d) - set(defaults)
        if unknown:
            raise SynthError(
                f"unknown campaign spec key(s): {sorted(unknown)}"
            )
        kwargs = {"name": name}
        for key in (
            "generator",
            "strategy",
            "scenarios",
            "threads",
            "max_properties",
            "max_failures",
            "max_retries",
            "seed",
            "adversarial_rounds",
            "adversarial_top",
        ):
            if key in d:
                kwargs[key] = d[key]
        for key in (
            "properties",
            "skeletons",
            "sizes",
            "bands",
            "placements",
        ):
            if key in d:
                kwargs[key] = tuple(d[key])
        if "noise" in d:
            kwargs["noise"] = NoiseConfig.from_dict(d["noise"])
        return cls(**kwargs)
