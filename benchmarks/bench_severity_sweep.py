"""T-SEV -- parameterized severity.

Paper section 3.1: "automatic performance tools have different
thresholds/sensitivities.  Therefore it is important that the test
suite is parametrized so that the relative severity of the properties
can be controlled by the user."

Shape claims: for representative properties from each family, the
measured waiting time is monotone (and near-linear) in the severity
parameter, and a tool's detection flips from 'absent' to 'present' as
the parameter crosses its threshold.
"""

import pytest

from repro.analysis import analyze_run
from repro.core import get_property

SWEEP_FACTORS = (0.25, 0.5, 1.0, 2.0, 4.0)

SWEEP_SPECS = [
    # (spec name, analyzer property id)
    ("late_sender", "late_sender"),
    ("late_receiver", "late_receiver"),
    ("imbalance_at_mpi_barrier", "wait_at_barrier"),
    ("late_broadcast", "late_broadcast"),
    ("early_reduce", "early_reduce"),
    ("imbalance_at_omp_barrier", "imbalance_at_omp_barrier"),
    ("imbalance_in_omp_loop", "imbalance_in_omp_loop"),
]


def sweep(name, prop):
    spec = get_property(name)
    rows = []
    for factor in SWEEP_FACTORS:
        result = spec.run(
            size=8, num_threads=4, params=spec.scaled_params(factor)
        )
        analysis = analyze_run(result)
        wait = (
            analysis.severity(property=prop)
            * analysis.total_allocation
        )
        rows.append((factor, wait))
    return rows


@pytest.mark.parametrize("name,prop", SWEEP_SPECS)
def test_severity_monotone_in_parameter(benchmark, name, prop):
    rows = benchmark.pedantic(
        sweep, args=(name, prop), rounds=1, iterations=1
    )
    print(f"\nT-SEV {name} ({prop}): factor -> accumulated wait")
    for factor, wait in rows:
        print(f"  {factor:>5.2f}x  {wait:.5f}s")
    waits = [w for _, w in rows]
    assert all(b > a for a, b in zip(waits, waits[1:])), waits
    # near-linear: quadrupling the parameter from 1x to 4x should
    # multiply the wait by 2.5x-6x (work baselines dilute linearity)
    ratio = waits[-1] / waits[2]
    assert 2.0 < ratio < 6.5, ratio


def test_threshold_crossing(benchmark):
    """A tool with a 5% severity threshold flips from silent to
    reporting as the severity parameter grows."""

    def run():
        spec = get_property("late_sender")
        verdicts = []
        for factor in (0.02, 0.2, 1.0, 4.0):
            result = spec.run(
                size=8, params=spec.scaled_params(factor)
            )
            detected = analyze_run(result).detected(threshold=0.05)
            verdicts.append((factor, "late_sender" in detected))
        return verdicts

    verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nT-SEV threshold crossing (tool threshold 5%):")
    for factor, hit in verdicts:
        print(f"  {factor:>5.2f}x -> {'detected' if hit else 'silent'}")
    flags = [hit for _, hit in verdicts]
    assert flags[0] is False        # far below threshold
    assert flags[-1] is True        # far above
    assert flags == sorted(flags)   # monotone flip, single crossing
