#!/usr/bin/env python
"""Archive cache benchmark: cold vs warm full-registry re-analysis.

Archives one run of every registered property function, then analyzes
the whole history twice:

* **cold** -- a fresh archive: every detector cell misses and is
  computed from the trace blob (this is what populates the cache),
* **warm** -- the same history again: every cell hits and the trace
  blobs are never read.

The ratio is the headline number (acceptance bar: warm >= 5x faster
than cold), and every warm result is asserted byte-identical (canonical
JSON) to a fresh ``analyze_events`` over the stored trace before any
number is written.  Results land in ``BENCH_ARCHIVE.json`` at the
repository root, which ``check_bench_guard.py`` validates.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_archive.py           # full
    PYTHONPATH=src python benchmarks/bench_archive.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import AnalysisConfig, analyze_events  # noqa: E402
from repro.archive import (  # noqa: E402
    Archive,
    CacheStats,
    result_to_json_bytes,
)
from repro.core import list_properties  # noqa: E402
from repro.trace.io import events_from_jsonl  # noqa: E402

OUT_PATH = REPO_ROOT / "BENCH_ARCHIVE.json"

#: modest-but-real shape; every registered program runs at this size
SIZE = 8
THREADS = 4
SEED = 0


def build_archive(root: Path, specs) -> Archive:
    archive = Archive(root)
    for spec in specs:
        archive.archive_run(
            spec, size=SIZE, num_threads=THREADS, seed=SEED
        )
    return archive


def analyze_all(archive: Archive) -> tuple[float, CacheStats, dict]:
    stats = CacheStats()
    t0 = time.perf_counter()
    results = archive.analyze_many(stats=stats)
    return time.perf_counter() - t0, stats, results


def assert_byte_identical(archive: Archive, results: dict) -> None:
    """Every cached result must equal a fresh analysis, byte for byte."""
    for run in archive.history():
        events, _ = events_from_jsonl(
            archive.store.get_blob(run.trace_digest).decode("utf-8")
        )
        config = (
            AnalysisConfig(eager_threshold=run.eager_threshold)
            if run.eager_threshold is not None
            else AnalysisConfig()
        )
        fresh = analyze_events(
            events, total_time=run.final_time, config=config
        )
        cached = results[run.run_id]
        assert result_to_json_bytes(cached) == result_to_json_bytes(
            fresh
        ), f"cached result of {run.run_id} ({run.program}) diverged"


def run_benchmark(specs, repeats: int) -> dict:
    # Cold needs a pristine store per repeat (the first pass populates
    # the cache); warm is best-of-N on the final populated store.
    cold_best = None
    for _ in range(repeats):
        with tempfile.TemporaryDirectory(prefix="ats-bench-arch-") as tmp:
            archive = build_archive(Path(tmp), specs)
            cold_s, cold_stats, _ = analyze_all(archive)
            archive.close()
        if cold_best is None or cold_s < cold_best:
            cold_best = cold_s

    with tempfile.TemporaryDirectory(prefix="ats-bench-arch-") as tmp:
        archive = build_archive(Path(tmp), specs)
        _, _, cold_results = analyze_all(archive)  # populate
        warm_best = None
        warm_stats = None
        for _ in range(repeats):
            warm_s, stats, warm_results = analyze_all(archive)
            if warm_best is None or warm_s < warm_best:
                warm_best = warm_s
                warm_stats = stats
        assert warm_stats.misses == 0, (
            f"warm pass missed {warm_stats.misses} cells"
        )
        assert_byte_identical(archive, warm_results)
        runs = len(archive.history())
        archive.close()

    return {
        "programs": len(specs),
        "runs": runs,
        "size": SIZE,
        "num_threads": THREADS,
        "repeats": repeats,
        "cold_s": round(cold_best, 6),
        "warm_s": round(warm_best, 6),
        "speedup": round(cold_best / warm_best, 2),
        "warm_cache": {
            "hits": warm_stats.hits,
            "misses": warm_stats.misses,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="subset of programs, 1 repeat (CI smoke); "
                        "does not overwrite the committed baseline")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    specs = list_properties()
    repeats = args.repeats
    if args.quick:
        specs = specs[:6]
        repeats = 1

    result = run_benchmark(specs, repeats)
    print(
        f"archive analyze-all over {result['runs']} runs "
        f"({result['programs']} programs, size {SIZE}):"
    )
    print(
        f"  cold {result['cold_s']*1000:8.1f} ms   "
        f"warm {result['warm_s']*1000:8.1f} ms   "
        f"speedup {result['speedup']:.1f}x"
    )
    print(
        f"  warm cache: {result['warm_cache']['hits']} hits, "
        f"{result['warm_cache']['misses']} misses; results "
        "byte-identical to fresh analysis"
    )

    if args.quick:
        print("quick mode: baseline not written")
        return 0
    OUT_PATH.write_text(
        json.dumps({"archive-registry": result}, indent=2) + "\n"
    )
    print(f"baseline written to {OUT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
