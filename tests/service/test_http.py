"""HTTP integration: routes, coalescing, rate limits, drain, tracing."""

import json
import threading
import time
import urllib.request

import pytest

from repro.archive import Archive
from repro.obs import set_spans_enabled, span_log
from repro.service import (
    AnalysisService,
    ServiceClient,
    ServiceHTTPError,
    run_service_in_thread,
)


# ----------------------------------------------------------------------
# basic routes
# ----------------------------------------------------------------------

def test_healthz_and_unknown_routes(service_env):
    client = ServiceClient(service_env.url)
    assert client.healthz() == {"ok": True}
    with pytest.raises(ServiceHTTPError) as excinfo:
        client._request("GET", "/nope")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceHTTPError) as excinfo:
        client._request("GET", "/analyze")
    assert excinfo.value.status == 405


def test_submit_poll_roundtrip(service_env):
    client = ServiceClient(service_env.url)
    resp = client.analyze(service_env.run.run_id)
    assert resp["job"].startswith("job-")
    done = client.job(resp["job"], wait=True)
    assert done["state"] == "done"
    assert "late_sender" in done["result"]["detected"]


def test_wait_inline_returns_result(service_env):
    client = ServiceClient(service_env.url)
    done = client.analyze(service_env.run.run_id, wait=True)
    assert done["state"] == "done"
    assert done["result"]["findings"] > 0


def test_submit_run_then_diff(service_env):
    client = ServiceClient(service_env.url)
    out = client.submit_run(
        "late_sender", size=4, threads=2, seed=2, wait=True
    )
    assert out["state"] == "done"
    other = out["result"]["run_id"]
    diff = client.diff(service_env.run.run_id, other, wait=True)
    assert diff["state"] == "done"
    assert diff["result"]["report"]["is_regression"] is False


def test_history_runs_as_job(service_env):
    client = ServiceClient(service_env.url)
    out = client.history()
    assert out["kind"] == "history"
    assert out["result"]["count"] == 1
    assert out["result"]["runs"][0]["run_id"] == service_env.run.run_id


def test_bad_submissions_are_400(service_env):
    client = ServiceClient(service_env.url)
    for call in (
        lambda: client.analyze("doesnotexist"),
        lambda: client.submit_run("not_a_property"),
        lambda: client.diff("nope", "alsono"),
    ):
        with pytest.raises(ServiceHTTPError) as excinfo:
            call()
        assert excinfo.value.status == 400


# ----------------------------------------------------------------------
# coalescing over HTTP
# ----------------------------------------------------------------------

def test_concurrent_identical_analyzes_one_cell_same_responses(
    service_env,
):
    service = service_env.service
    gate = threading.Event()
    service._job_history = lambda job: gate.wait(30) or {"count": 0}
    # occupy both workers so the analyzes stay in queue
    blockers = [
        service.submit("history", {})[0] for _ in range(2)
    ]

    n = 6
    responses = []
    errors = []

    def waiter():
        try:
            client = ServiceClient(service_env.url)
            responses.append(
                client.analyze(service_env.run.run_id, wait=True)
            )
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    threads = [threading.Thread(target=waiter) for _ in range(n)]
    for t in threads:
        t.start()
    # let every request reach the service before unblocking
    deadline = time.monotonic() + 10
    while service.counts["submitted"] < 2 + n:
        assert time.monotonic() < deadline, "submissions never arrived"
        time.sleep(0.01)
    executed_before = service.counts["executed"]
    gate.set()
    for t in threads:
        t.join(timeout=30)
    assert not errors
    assert len(responses) == n
    # one executor cell for all N requests (plus the two blockers)...
    assert service.counts["executed"] == executed_before + 2 + 1
    assert service.counts["coalesced"] == n - 1
    # ...and N identical responses (same job, same result)
    ids = {r["id"] for r in responses}
    assert len(ids) == 1
    results = {json.dumps(r["result"], sort_keys=True)
               for r in responses}
    assert len(results) == 1
    for b in blockers:
        assert b.wait(30)


# ----------------------------------------------------------------------
# rate limiting over HTTP
# ----------------------------------------------------------------------

def test_over_budget_tenant_gets_429_others_proceed(tmp_path):
    from repro.core import get_property
    from repro.obs import set_metrics_enabled

    set_metrics_enabled(True)
    archive = Archive(tmp_path / "archive")
    run = archive.archive_run(
        get_property("late_sender"), size=4, num_threads=2, seed=1
    )
    service = AnalysisService(
        archive, max_workers=2, rate=1.0, burst=2
    )
    handle = run_service_in_thread(service)
    try:
        greedy = ServiceClient(handle.url, tenant="greedy")
        calm = ServiceClient(handle.url, tenant="calm")
        greedy.analyze(run.run_id)
        greedy.analyze(run.run_id)
        with pytest.raises(ServiceHTTPError) as excinfo:
            greedy.analyze(run.run_id)
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after is not None
        assert excinfo.value.retry_after >= 1.0
        # the other tenant's bucket is untouched
        out = calm.analyze(run.run_id, wait=True)
        assert out["state"] == "done"
        status = calm.status()
        assert status["counts"]["rate_limited"] == 1
    finally:
        handle.stop(drain=False)


# ----------------------------------------------------------------------
# drain
# ----------------------------------------------------------------------

def test_drain_then_submissions_get_503(service_env):
    client = ServiceClient(service_env.url)
    client.analyze(service_env.run.run_id, wait=True)
    out = client.drain()
    assert out["drained"] is True
    with pytest.raises(ServiceHTTPError) as excinfo:
        client.analyze(service_env.run.run_id)
    assert excinfo.value.status == 503
    # read-only endpoints stay up while draining
    assert client.status()["accepting"] is False
    assert "ats_service" in client.metrics()


# ----------------------------------------------------------------------
# metrics endpoints
# ----------------------------------------------------------------------

def _parse_prometheus(text):
    """Minimal exposition-format check: returns {family: type}."""
    types = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            types[name] = kind
        elif line and not line.startswith("#"):
            # every sample line is "name{labels} value" or "name value"
            head, _, value = line.rpartition(" ")
            assert head, f"malformed sample line: {line!r}"
            float(value)
    return types


def test_metrics_is_valid_prometheus_with_service_families(
    service_env,
):
    client = ServiceClient(service_env.url)
    client.analyze(service_env.run.run_id, wait=True)
    types = _parse_prometheus(client.metrics())
    assert types["ats_service_requests_total"] == "counter"
    assert types["ats_service_request_seconds"] == "histogram"
    assert types["ats_service_queue_depth"] == "gauge"
    assert types["ats_service_coalesced_total"] == "counter"
    assert types["ats_service_cache_hits_total"] == "counter"
    text = client.metrics()
    assert 'ats_service_request_seconds_bucket{endpoint="analyze"' in text


def test_metrics_json_carries_quantiles(service_env):
    client = ServiceClient(service_env.url)
    client.analyze(service_env.run.run_id, wait=True)
    payload = client.metrics_json()
    fam = next(
        m for m in payload["metrics"]
        if m["name"] == "ats_service_request_seconds"
    )
    sample = fam["samples"][0]
    assert set(sample["quantiles"]) == {"p50", "p95", "p99"}
    assert sample["quantiles"]["p99"] is not None


def test_status_reports_latency_quantiles(service_env):
    client = ServiceClient(service_env.url)
    client.analyze(service_env.run.run_id, wait=True)
    status = client.status()
    assert "analyze" in status["latency"]
    entry = status["latency"]["analyze"]
    assert entry["count"] >= 1
    assert entry["p50"] is not None and entry["p99"] is not None


def test_dashboard_renders_html(service_env):
    client = ServiceClient(service_env.url)
    html = client._request("GET", "/dashboard", raw=True)
    assert html.startswith("<!DOCTYPE html>")
    assert "ats analysis service" in html


# ----------------------------------------------------------------------
# campaigns in /status
# ----------------------------------------------------------------------

def test_campaign_progress_visible_in_status(service_env):
    client = ServiceClient(service_env.url)
    resp = client.campaign(
        properties=["late_sender", "late_receiver"],
        size=4, threads=2,
    )
    job_id = resp["job"]
    seen_inflight = False
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        status = client.status()
        snaps = {c["job_id"]: c for c in status["campaigns"]}
        if job_id in snaps:
            snap = snaps[job_id]
            if snap["done"] + snap["failed"] < snap["total"]:
                seen_inflight = True
            if snap["done"] + snap["failed"] == snap["total"] == 2:
                break
        time.sleep(0.005)
    done = client.job(job_id, wait=True)
    assert done["state"] == "done"
    assert done["result"]["all_passed"] is True
    assert done["result"]["progress"]["done"] == 2
    final = client.status()
    snap = {c["job_id"]: c for c in final["campaigns"]}[job_id]
    assert snap["done"] == 2
    # in-flight visibility is timing-dependent but expected: the poll
    # loop races two multi-run property executions.
    assert seen_inflight or snap["done"] == 2


# ----------------------------------------------------------------------
# request tracing
# ----------------------------------------------------------------------

def test_request_id_propagates_to_job_and_spans(service_env):
    set_spans_enabled(True)
    req = urllib.request.Request(
        service_env.url + "/analyze",
        data=json.dumps(
            {"run": service_env.run.run_id, "wait": True}
        ).encode(),
        headers={
            "Content-Type": "application/json",
            "X-Request-Id": "req-traced-1",
        },
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        assert resp.headers["X-Request-Id"] == "req-traced-1"
        payload = json.loads(resp.read())
    assert payload["request_id"] == "req-traced-1"
    assert payload["state"] == "done"

    spans = [
        s for s in span_log()
        if (s.args or {}).get("request_id") == "req-traced-1"
    ]
    names = {s.name for s in spans}
    # the end-to-end thread: accept -> queue -> executor -> cache
    assert {"http-request", "queue-wait", "execute",
            "archive-cache"} <= names
