"""Shared benchmark fixtures and reporting helpers."""

import pytest


def run_once_benchmark(benchmark, fn, *args, **kwargs):
    """Benchmark a deterministic simulation with few rounds.

    Simulated runs are deterministic, so statistical repetition only
    measures host jitter; three rounds keep pytest-benchmark's
    reporting while bounding wall time.
    """
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=3, iterations=1,
        warmup_rounds=0,
    )


@pytest.fixture
def run_bench():
    return run_once_benchmark
