"""Growing-severity and nested-parallelism property functions."""

import pytest

from repro.analysis import analyze_run
from repro.analysis.detectors import collective_instances
from repro.core import get_property
from repro.trace import CollExit


def test_growing_imbalance_wait_increases_per_iteration():
    """Paper 3.1.5: severity as a function of the iteration number,
    via the distribution scale factor."""
    spec = get_property("growing_imbalance_at_mpi_barrier")
    result = spec.run(size=4, params={"r": 4})
    # group barrier instances inside the property region and measure
    # the max wait at each
    groups = collective_instances(
        [e for e in result.events if isinstance(e, CollExit)]
    )
    barrier_waits = []
    for (_, instance, op), events in sorted(groups.items()):
        if op != "MPI_Barrier":
            continue
        if not any(
            "growing_imbalance_at_mpi_barrier" in e.path for e in events
        ):
            continue
        last = max(e.enter_time for e in events)
        barrier_waits.append(
            (instance, max(last - e.enter_time for e in events))
        )
    waits = [w for _, w in sorted(barrier_waits)]
    assert len(waits) == 4
    assert all(b > a for a, b in zip(waits, waits[1:])), waits
    # linear growth in the iteration number: 4th wait = 4x the 1st
    assert waits[3] == pytest.approx(4 * waits[0], rel=0.01)


def test_growing_imbalance_detected_as_wait_at_barrier():
    spec = get_property("growing_imbalance_at_mpi_barrier")
    analysis = analyze_run(spec.run(size=4))
    assert "wait_at_barrier" in analysis.detected(0.01)


def test_nested_omp_imbalance_detected_across_inner_teams():
    spec = get_property("nested_omp_imbalance")
    analysis = analyze_run(spec.run(num_threads=3))
    assert "imbalance_in_omp_pregion" in analysis.detected(0.01)
    # two outer threads each forked inner teams: waits land on more
    # distinct thread locations than a single flat team would produce
    locs = analysis.locations_of("imbalance_in_omp_pregion")
    assert len(locs) >= 4


def test_nested_omp_callpath_shows_both_levels():
    spec = get_property("nested_omp_imbalance")
    analysis = analyze_run(spec.run(num_threads=3))
    paths = analysis.callpaths_of("imbalance_in_omp_pregion")
    deepest = max(paths, key=len)
    # property region -> outer parallel -> inner parallel -> barrier
    assert deepest.count("omp_parallel") == 2
    assert deepest[0] == "nested_omp_imbalance"
