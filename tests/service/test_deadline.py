"""Client deadline propagation: expiry, headers, serialization."""

import json
import urllib.request

import pytest

from repro.service.jobs import Job


class TestJobDeadline:
    def test_deadline_is_absolute(self):
        job = Job("history", {}, deadline=30.0)
        assert job.deadline == pytest.approx(job.created + 30.0)

    def test_no_deadline_never_expires(self):
        job = Job("history", {})
        assert job.expired(now=1e12) is False

    def test_expired_uses_injected_now(self):
        job = Job("history", {}, deadline=5.0)
        assert job.expired(now=job.created + 4.9) is False
        assert job.expired(now=job.created + 5.1) is True

    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError):
            Job("history", {}, deadline=0)
        with pytest.raises(ValueError):
            Job("history", {}, deadline=-3)

    def test_dict_carries_remaining_until_done(self):
        job = Job("history", {}, deadline=60.0)
        remaining = job.to_dict()["deadline_remaining"]
        assert 0 < remaining <= 60.0
        job.resolve({}, None)
        assert "deadline_remaining" not in job.to_dict()


class TestServiceExpiry:
    def test_queued_job_past_deadline_expires_not_runs(self, tmp_path):
        from repro.archive import Archive
        from repro.service.server import AnalysisService

        service = AnalysisService(
            Archive(tmp_path / "archive"), max_workers=1
        )
        # hold the (only) worker slot so the job stays queued, then
        # rewind its deadline into the past before releasing the pump
        with service._lock:
            service._inflight = 1
        job, _ = service.submit("history", {}, deadline=5.0)
        assert job.state == "queued"
        job.deadline = job.created - 1.0
        with service._lock:
            service._inflight = 0
            service._pump_locked()
        assert job.wait(10)
        assert job.state == "expired"
        assert "deadline expired" in job.error
        assert service.counts["expired"] == 1
        service.close()


class TestHTTPDeadline:
    def _post(self, url, path, body, headers=None):
        req = urllib.request.Request(
            url + path,
            data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json",
                     **(headers or {})},
            method="POST",
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())

    def test_header_sets_deadline(self, service_env):
        status, payload = self._post(
            service_env.url, "/analyze",
            {"run": service_env.run.run_id, "wait": True},
            headers={"X-Deadline-Ms": "60000"},
        )
        assert status == 200
        assert payload["state"] == "done"

    def test_malformed_header_is_400(self, service_env):
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as exc:
            self._post(
                service_env.url, "/analyze",
                {"run": service_env.run.run_id},
                headers={"X-Deadline-Ms": "soon"},
            )
        assert exc.value.code == 400

    def test_nonpositive_body_deadline_is_400(self, service_env):
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as exc:
            self._post(
                service_env.url, "/analyze",
                {"run": service_env.run.run_id, "deadline": -1},
            )
        assert exc.value.code == 400

    def test_client_helper_sends_header(self, service_env):
        from repro.service import ServiceClient

        client = ServiceClient(service_env.url)
        response = client.analyze(
            service_env.run.run_id, wait=True, deadline=60.0
        )
        assert response["state"] == "done"
        assert ServiceClient._deadline_headers(2.5) == {
            "X-Deadline-Ms": "2500"
        }
        assert ServiceClient._deadline_headers(None) is None
