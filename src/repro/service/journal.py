"""The durable job journal behind ``ats serve --state-dir``.

Every job the service *acknowledges* is journaled -- spec first, then
each state transition -- through the same append-only, partial-tail
-healing machinery supervised sweeps checkpoint with
(:class:`repro.resilience.checkpoint.CheckpointJournal`), under its own
format name and with ``fsync`` on: a record is forced to stable
storage before the submission is answered, so "the client got a job
id" implies "a restart will still know about that job".

One line per transition, keyed by job id; the journal's last-wins
replay semantics mean :meth:`load` yields each job's most recent
state in original acceptance order.  Specs are sanitized before
journaling: resolved runtime objects (the ``_``-prefixed params the
service attaches at submit time) are stripped, leaving exactly the
JSON the client sent -- which is what recovery re-resolves, catching
refs that stopped existing while the service was down (those jobs are
marked ``orphaned`` rather than silently dropped).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..resilience.checkpoint import CheckpointError, CheckpointJournal

__all__ = [
    "SERVICE_JOURNAL_FORMAT",
    "ServiceJournalError",
    "ServiceJournal",
    "sanitize_params",
]

SERVICE_JOURNAL_FORMAT = "ats-service-journal"


class ServiceJournalError(Exception):
    """The job journal is corrupt beyond the tolerated partial tail."""


def sanitize_params(params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """The journal-safe subset of a job's params.

    Submit-time resolution attaches live objects under ``_``-prefixed
    keys (``_spec``, ``_record``, ``_progress``...); the journal keeps
    only the client-supplied JSON so recovery re-resolves from scratch.
    """
    return {
        k: v for k, v in (params or {}).items()
        if not k.startswith("_")
    }


class ServiceJournal:
    """Durable per-job state journal (see module docstring)."""

    def __init__(self, path: Union[str, Path], fsync: bool = True):
        self.path = Path(path)
        self._journal = CheckpointJournal(
            self.path, fmt=SERVICE_JOURNAL_FORMAT, fsync=fsync
        )

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def record_state(self, job) -> None:
        """Journal one job's current state (flushed + fsync'd).

        Raises on IO failure -- callers must treat that as "the job was
        never acknowledged" and roll the submission back.
        """
        payload: Dict[str, Any] = {
            "kind": job.kind,
            "params": sanitize_params(job.params),
            "tenant": job.tenant,
            "request_id": job.request_id,
            "state": job.state,
        }
        if job.error is not None:
            payload["error"] = job.error
        if job.state == "done" and job.result is not None:
            payload["result"] = job.result
        self._journal.record(job.id, payload)

    def flush(self) -> None:
        self._journal.flush()

    def close(self) -> None:
        self._journal.close()

    # ------------------------------------------------------------------
    # reading (recovery)
    # ------------------------------------------------------------------

    def load(self) -> Dict[str, dict]:
        """``job_id -> latest journaled payload``, acceptance order.

        A partial final line (torn write from a kill) heals away; any
        deeper corruption raises :class:`ServiceJournalError`.
        """
        try:
            return self._journal.load()
        except CheckpointError as exc:
            raise ServiceJournalError(str(exc)) from exc

    def __enter__(self) -> "ServiceJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
