"""NPB-style kernel tests."""

import pytest

from repro.analysis import analyze_run
from repro.apps import EpConfig, IsConfig, ep_like, is_like
from repro.simmpi import run_mpi

FAST = dict(model_init_overhead=False)


# ----------------------------------------------------------------------
# EP
# ----------------------------------------------------------------------

def test_ep_all_ranks_agree_on_result():
    result = run_mpi(ep_like, 4, EpConfig(), **FAST)
    assert len(set(result.results)) == 1
    assert result.results[0] > 0


def test_ep_is_deterministic():
    r1 = run_mpi(ep_like, 4, EpConfig(), seed=3, **FAST)
    r2 = run_mpi(ep_like, 4, EpConfig(), seed=3, **FAST)
    assert r1.results == r2.results
    assert r1.final_time == r2.final_time


def test_ep_balanced_is_clean():
    result = run_mpi(ep_like, 8, EpConfig(), **FAST)
    assert analyze_run(result).detected(0.02) == ()


def test_ep_work_skew_lands_on_final_reduce():
    result = run_mpi(ep_like, 8, EpConfig(work_skew=1.5), **FAST)
    analysis = analyze_run(result)
    assert "wait_at_nxn" in analysis.detected(0.02)
    (path, _), *_ = list(analysis.callpaths_of("wait_at_nxn").items())
    assert "ep_like" in path and path[-1] == "MPI_Allreduce"


def test_ep_scaling_shape():
    """EP run time is roughly constant in rank count (weak scaling)."""
    t4 = run_mpi(ep_like, 4, EpConfig(), **FAST).final_time
    t8 = run_mpi(ep_like, 8, EpConfig(), **FAST).final_time
    assert t8 < 1.5 * t4


# ----------------------------------------------------------------------
# IS
# ----------------------------------------------------------------------

def test_is_keys_conserved():
    """Total checksum equals the checksum of all generated keys: the
    exchange neither loses nor duplicates keys."""
    config = IsConfig(keys_per_rank=512, iterations=2)
    result = run_mpi(is_like, 4, config, **FAST)
    assert all(isinstance(c, int) for c in result.results)
    # keys are partitioned by bucket owner: rank i holds keys in
    # [i*1000, (i+1)*1000); checksums must be increasing-ish per owner
    assert result.results == sorted(result.results)


def test_is_deterministic():
    r1 = run_mpi(is_like, 4, IsConfig(), seed=5, **FAST)
    r2 = run_mpi(is_like, 4, IsConfig(), seed=5, **FAST)
    assert r1.results == r2.results


def test_is_uniform_buckets_clean():
    result = run_mpi(is_like, 4, IsConfig(), **FAST)
    assert analyze_run(result).detected(0.05) == ()


def test_is_bucket_skew_shows_nxn_waits():
    result = run_mpi(
        is_like, 4, IsConfig(bucket_skew=3.0, iterations=6), **FAST
    )
    analysis = analyze_run(result)
    assert "wait_at_nxn" in analysis.detected(0.05)


def test_is_exchange_volume_grows_with_keys():
    from repro.trace import comm_matrix

    small = run_mpi(
        is_like, 4, IsConfig(keys_per_rank=256, iterations=1), **FAST
    )
    big = run_mpi(
        is_like, 4, IsConfig(keys_per_rank=2048, iterations=1), **FAST
    )
    vol_small = comm_matrix(
        small.events, include_internal=True
    ).total_bytes
    vol_big = comm_matrix(big.events, include_internal=True).total_bytes
    assert vol_big > 4 * vol_small
