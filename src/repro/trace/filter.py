"""Trace slicing utilities.

Large composite programs (figure 3.3/3.4 style) produce traces mixing
many phases and locations; these helpers cut out the slice a question
is about -- a time window, a set of ranks, a subtree of the call path
-- while keeping enter/exit events balanced so downstream consumers
(profiles, timelines, detectors) keep working.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from .events import Enter, Event, Exit, Location


def by_location(
    events: Sequence[Event],
    ranks: Optional[Iterable[int]] = None,
    threads: Optional[Iterable[int]] = None,
) -> list[Event]:
    """Keep events of the given ranks and/or threads."""
    rank_set = None if ranks is None else set(ranks)
    thread_set = None if threads is None else set(threads)
    out = []
    for event in events:
        if rank_set is not None and event.loc.rank not in rank_set:
            continue
        if thread_set is not None and event.loc.thread not in thread_set:
            continue
        out.append(event)
    return out


def by_callpath_prefix(
    events: Sequence[Event], prefix: str
) -> list[Event]:
    """Keep events whose call path passes through region ``prefix``.

    Events without a path attribute (none currently) are dropped.
    Enter/exit of the prefix region itself are included, so the slice
    stays balanced.
    """
    out = []
    for event in events:
        path = getattr(event, "path", None)
        if path and prefix in path:
            out.append(event)
    return out


def by_time_window(
    events: Sequence[Event], start: float, end: float
) -> list[Event]:
    """Keep events within ``[start, end)``, rebalancing regions.

    Regions entered before the window get a synthetic enter at
    ``start``; regions still open at ``end`` get a synthetic exit at
    ``end`` -- so profiles over the slice are meaningful.
    """
    if end < start:
        raise ValueError("time window end must be >= start")
    out: list[Event] = []
    open_regions: dict[Location, list[Enter]] = {}
    for event in sorted(events, key=lambda e: e.time):
        if event.time < start:
            if isinstance(event, Enter):
                open_regions.setdefault(event.loc, []).append(event)
            elif isinstance(event, Exit):
                stack = open_regions.get(event.loc, [])
                if stack and stack[-1].region == event.region:
                    stack.pop()
            continue
        if event.time >= end:
            continue
        out.append(event)
    # Synthetic enters for regions spanning the window start, placed
    # before everything else in path order (outermost first).
    synthetic: list[Event] = []
    for loc, stack in open_regions.items():
        for enter in stack:
            synthetic.append(
                Enter(start, loc, enter.region, enter.path)
            )
    out = synthetic + out
    # Synthetic exits for regions left open at the window end.
    still_open: dict[Location, list[Enter]] = {}
    for event in out:
        if isinstance(event, Enter):
            still_open.setdefault(event.loc, []).append(event)
        elif isinstance(event, Exit):
            stack = still_open.get(event.loc, [])
            if stack and stack[-1].region == event.region:
                stack.pop()
    for loc, stack in still_open.items():
        for enter in reversed(stack):
            out.append(Exit(end, loc, enter.region, enter.path))
    return out


def by_predicate(
    events: Sequence[Event], predicate: Callable[[Event], bool]
) -> list[Event]:
    """Generic filter; the caller is responsible for balance."""
    return [e for e in events if predicate(e)]
