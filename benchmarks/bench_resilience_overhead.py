#!/usr/bin/env python
"""Supervision-layer overhead benchmark.

Runs the hybrid-64 composite (the same shape ``bench_perf_core``
sweeps) under three supervision modes and records the wall-time deltas
into ``BENCH_RESILIENCE.json`` at the repository root:

* ``direct``     -- no supervisor at all (the PR 1/2 baseline path),
* ``supervised`` -- each run goes through ``Supervisor.run_cell`` with
  ``timeout=None``: the *disabled path*, a plain inline call.  Its cost
  must stay within noise of ``direct`` (< 2% is the acceptance bar),
* ``timed``      -- ``timeout`` armed: the cell runs on a watcher
  thread (the price of wall-clock protection, paid only when asked).

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_resilience_overhead.py           # full
    PYTHONPATH=src python benchmarks/bench_resilience_overhead.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import run_hybrid_composite  # noqa: E402
from repro.resilience import Supervisor  # noqa: E402

from bench_perf_core import (  # noqa: E402
    HYBRID_MPI_STEPS,
    HYBRID_OMP_STEPS,
)

OUT_PATH = REPO_ROOT / "BENCH_RESILIENCE.json"


def _run(size: int, num_threads: int):
    return run_hybrid_composite(
        HYBRID_MPI_STEPS,
        HYBRID_OMP_STEPS,
        size=size,
        num_threads=num_threads,
    )


def _measure(size: int, num_threads: int, repeats: int, mode: str) -> dict:
    """Best-of-``repeats`` wall time for one supervision mode."""
    best = None
    events = 0
    for rep in range(repeats):
        if mode == "direct":
            supervisor = None
        elif mode == "supervised":
            supervisor = Supervisor()  # timeout=None: the disabled path
        else:
            supervisor = Supervisor(timeout=300.0)
        t0 = time.perf_counter()
        if supervisor is None:
            result = _run(size, num_threads)
        else:
            outcome = supervisor.run_cell(
                f"hybrid-{size}|rep{rep}",
                lambda: _run(size, num_threads),
            )
            assert outcome.ok, outcome.failure
            result = outcome.value
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
        events = len(result.recorder.events)
    return {"wall_s": round(best, 6), "events": events}


def run_modes(size: int, num_threads: int, repeats: int) -> dict:
    _run(size, num_threads)  # warm-up: 'direct' runs first and must not eat import/JIT cost
    rows = {}
    for mode in ("direct", "supervised", "timed"):
        rows[mode] = _measure(size, num_threads, repeats, mode)
        print(f"{mode:>10}: {rows[mode]['wall_s']*1000:8.1f} ms "
              f"({rows[mode]['events']} events)")
    direct = rows["direct"]["wall_s"]
    for mode in ("supervised", "timed"):
        rel = rows[mode]["wall_s"] / direct - 1.0 if direct else 0.0
        rows[mode]["overhead_vs_direct"] = round(rel, 4)
        print(f"{mode:>10} overhead vs direct: {rel:+.2%}")
    return {
        "size": size,
        "num_threads": num_threads,
        "repeats": repeats,
        "modes": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny parameters for CI smoke runs "
             "(no BENCH_RESILIENCE.json write)",
    )
    parser.add_argument("--size", type=int, default=64)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when the disabled-path overhead exceeds 2%%",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    if args.quick:
        measurement = run_modes(size=4, num_threads=2, repeats=1)
        print("quick smoke ok")
    else:
        measurement = run_modes(args.size, args.threads, args.repeats)
        existing = {}
        if OUT_PATH.exists():
            existing = json.loads(OUT_PATH.read_text())
        existing[f"hybrid-{args.size}"] = measurement
        OUT_PATH.write_text(json.dumps(existing, indent=2) + "\n")
        print(f"wrote {OUT_PATH}")

    if args.check:
        overhead = measurement["modes"]["supervised"]["overhead_vs_direct"]
        if overhead > 0.02:
            print(
                f"FAIL: disabled-path supervision overhead {overhead:+.2%} "
                f"exceeds the 2% budget"
            )
            return 1
        print(f"disabled-path overhead {overhead:+.2%} within 2% budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
