"""Token-bucket rate limiting: refill math and tenant isolation."""

import threading

import pytest

from repro.service import RateLimiter, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_burst_then_empty_then_retry_after():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == 0.0
    wait = bucket.try_acquire()
    # empty: one token accrues in 1/rate seconds
    assert wait == pytest.approx(0.5)


def test_continuous_refill_up_to_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
    for _ in range(3):
        bucket.try_acquire()
    clock.advance(0.5)  # one token back
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() > 0.0
    clock.advance(100.0)  # refill caps at burst, not rate*elapsed
    assert bucket.available == pytest.approx(3.0)


def test_constructor_validation():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0, burst=3)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=0)


def test_tenants_get_independent_buckets():
    clock = FakeClock()
    limiter = RateLimiter(rate=1.0, burst=2, clock=clock)
    # greedy exhausts its own bucket...
    assert limiter.check("greedy") == 0.0
    assert limiter.check("greedy") == 0.0
    assert limiter.check("greedy") > 0.0
    # ...without costing calm anything
    assert limiter.check("calm") == 0.0
    assert limiter.check("calm") == 0.0


def test_limiter_thread_safety_conserves_tokens():
    clock = FakeClock()
    limiter = RateLimiter(rate=1.0, burst=100, clock=clock)
    admitted = []

    def spam():
        for _ in range(50):
            if limiter.check("shared") == 0.0:
                admitted.append(1)

    threads = [threading.Thread(target=spam) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # frozen clock: exactly the burst budget may be admitted
    assert len(admitted) == 100
