"""Deterministic chaos testing for the analysis service.

Seeded, composable *host-level* fault plans (:mod:`repro.chaos.spec`),
an in-process injector that fires them at exact counted IO sites
(:mod:`repro.chaos.inject`), and a harness that runs a real ``ats
serve`` subprocess under a plan -- SIGKILL and all -- then asserts the
crash-safety invariants (:mod:`repro.chaos.harness`): no acknowledged
job lost, no corrupt blob or manifest, recovered campaign artifacts
byte-identical to an uninterrupted run, metrics still consistent.

This package is the host-level sibling of :mod:`repro.faults`: faults
perturbs simulations, chaos perturbs the service hosting them.

The harness (which imports the service stack) loads lazily so that the
low-level IO call sites can probe ``repro.chaos.inject`` through
``sys.modules`` without dragging the whole service layer in.
"""

from .inject import (
    ENV_VAR,
    HostFaultInjector,
    active,
    install,
    install_from_env,
    uninstall,
)
from .spec import (
    ArchiveWriteFault,
    ChaosPlan,
    DropConnection,
    HostFault,
    JournalWriteFault,
    KillServer,
    StuckJob,
    TornJournalTail,
    host_fault_from_dict,
    mixed_plans,
)

__all__ = [
    "ArchiveWriteFault",
    "ChaosPlan",
    "ChaosReport",
    "ChaosRunResult",
    "DropConnection",
    "ENV_VAR",
    "HostFault",
    "HostFaultInjector",
    "JournalWriteFault",
    "KillServer",
    "StuckJob",
    "TornJournalTail",
    "active",
    "host_fault_from_dict",
    "install",
    "install_from_env",
    "mixed_plans",
    "run_chaos",
    "run_chaos_battery",
    "uninstall",
]

_HARNESS = ("ChaosReport", "ChaosRunResult", "run_chaos",
            "run_chaos_battery")


def __getattr__(name):
    if name in _HARNESS:
        from . import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
