"""Tests for the ASL specification layer and catalog."""

import pytest

from repro.asl import (
    ANALYZER_PROPERTY_IDS,
    CommunicationBound,
    Diagnosis,
    FrequentSynchronization,
    PatternProperty,
    PerformanceData,
    SequentialBottleneck,
    default_catalog,
    evaluate,
)
from repro.core import get_property
from repro.simmpi import run_mpi
from repro.work import do_work


def data_for(spec_name, **kwargs):
    run = get_property(spec_name).run(**kwargs)
    return PerformanceData.from_run(run)


def test_pattern_property_wraps_analyzer():
    data = data_for("late_sender", size=4)
    prop = PatternProperty(name="late_sender")
    assert prop.condition(data)
    assert prop.severity(data) > 0.1
    assert prop.confidence(data) == 1.0


def test_pattern_property_absent_when_clean():
    data = data_for("balanced_mpi_barrier", size=4)
    prop = PatternProperty(name="late_sender")
    assert not prop.condition(data)
    assert prop.severity(data) == 0.0


def test_catalog_covers_all_analyzer_ids():
    names = {p.name for p in default_catalog()}
    assert set(ANALYZER_PROPERTY_IDS) <= names


def test_evaluate_ranks_by_severity():
    data = data_for("late_sender", size=4)
    diagnoses = evaluate(default_catalog(), data)
    assert diagnoses, "late_sender run produced no diagnoses"
    severities = [d.severity for d in diagnoses]
    assert severities == sorted(severities, reverse=True)
    assert diagnoses[0].property in ("late_sender", "communication_bound")


def test_evaluate_empty_on_silent_program():
    def main(comm):
        do_work(0.01)

    run = run_mpi(main, 2, model_init_overhead=False)
    data = PerformanceData.from_run(run)
    diagnoses = evaluate(
        [PatternProperty(name=p) for p in ANALYZER_PROPERTY_IDS], data
    )
    assert diagnoses == []


def test_communication_bound_on_chatty_program():
    from repro.simmpi import MPI_INT, alloc_mpi_buf

    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 1)
        for _ in range(30):
            comm.barrier()

    run = run_mpi(main, 4, model_init_overhead=False)
    data = PerformanceData.from_run(run)
    assert CommunicationBound().condition(data)
    assert 0 < CommunicationBound().confidence(data) < 1


def test_communication_bound_false_on_compute_heavy():
    data = data_for("balanced_mpi_barrier", size=4)
    prop = CommunicationBound()
    assert not prop.condition(data)


def test_frequent_synchronization_rate():
    def main(comm):
        for _ in range(50):
            comm.barrier()

    run = run_mpi(main, 2, model_init_overhead=False)
    data = PerformanceData.from_run(run)
    prop = FrequentSynchronization()
    assert prop.condition(data)
    assert 0 < prop.severity(data) <= 1.0


def test_sequential_bottleneck_on_skewed_work():
    def main(comm):
        do_work(0.1 if comm.rank() == 0 else 0.01)

    run = run_mpi(main, 4, model_init_overhead=False)
    data = PerformanceData.from_run(run)
    prop = SequentialBottleneck()
    assert prop.condition(data)
    assert prop.severity(data) > 0


def test_sequential_bottleneck_false_when_balanced():
    def main(comm):
        do_work(0.05)

    run = run_mpi(main, 4, model_init_overhead=False)
    data = PerformanceData.from_run(run)
    assert not SequentialBottleneck().condition(data)


def test_region_fraction_helper():
    data = data_for("balanced_mpi_barrier", size=4)
    frac = data.region_fraction("work")
    assert 0.5 < frac <= 1.0


def test_diagnosis_is_frozen_record():
    d = Diagnosis(property="x", severity=0.5, confidence=1.0)
    with pytest.raises(AttributeError):
        d.severity = 0.9


def test_format_diagnoses_table():
    from repro.asl import format_diagnoses

    data = data_for("late_sender", size=4)
    text = format_diagnoses(evaluate(default_catalog(), data))
    assert "severity" in text and "late_sender" in text
    # ranked: the first data row has the highest severity
    rows = text.strip().split("\n")[1:]
    firsts = [float(r.split("%")[0]) for r in rows]
    assert firsts == sorted(firsts, reverse=True)


def test_format_diagnoses_empty():
    from repro.asl import format_diagnoses

    assert "no performance property" in format_diagnoses([])
