#!/usr/bin/env python
"""Synthesized-campaign throughput benchmark.

Measures the end-to-end cell rate of ``repro.synth`` -- generate
scenarios, run each synthesized program under its fault plan, analyze
the trace and grade it against the ground-truth manifest -- in three
configurations:

* **serial**  -- ``run_campaign`` on the calling thread,
* **forked**  -- the fork-per-cell executor (``--workers N``),
* **scored**  -- serial plus ``score_result`` and JSON serialization,
  the full ``ats synth campaign --json`` path.

The headline number is *cells per second*; the guard
(``check_bench_guard.check_synth_baseline``) holds a throughput floor
and projects the committed rate onto the CI 1000-scenario smoke
campaign to keep its wall-clock inside budget.

Results land in ``BENCH_SYNTH.json`` at the repository root.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_synth.py           # full
    PYTHONPATH=src python benchmarks/bench_synth.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.faults import FaultPlan  # noqa: E402
from repro.synth import (  # noqa: E402
    CampaignSpec,
    NoiseConfig,
    run_campaign,
    score_result,
)
from repro.work.forkexec import fork_available  # noqa: E402

OUT_PATH = REPO_ROOT / "BENCH_SYNTH.json"

#: full-mode campaign sizes; --quick shrinks them for CI smoke runs
FULL_SCENARIOS = 200
QUICK_SCENARIOS = 40


def _spec(scenarios: int) -> CampaignSpec:
    return CampaignSpec(
        name="bench-synth",
        strategy="grid",
        scenarios=scenarios,
        sizes=(4, 8),
        threads=2,
        seed=42,
        noise=NoiseConfig(
            plan=FaultPlan.default(), magnitudes=(0.0, 0.35, 0.7)
        ),
    )


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def run_serial(scenarios: int) -> dict:
    result, wall = _timed(lambda: run_campaign(_spec(scenarios)))
    return {
        "cells": len(result.cells),
        "errors": len(result.errors),
        "wall_s": wall,
        "cells_per_s": len(result.cells) / wall,
    }


def run_forked(scenarios: int, workers: int) -> dict:
    result, wall = _timed(
        lambda: run_campaign(_spec(scenarios), workers=workers)
    )
    return {
        "cells": len(result.cells),
        "errors": len(result.errors),
        "workers": workers,
        "wall_s": wall,
        "cells_per_s": len(result.cells) / wall,
    }


def run_scored(scenarios: int) -> dict:
    def full_path():
        result = run_campaign(_spec(scenarios))
        report = score_result(result)
        return result, len(result.to_json_str()) + len(report.to_json_str())

    (result, artifact_bytes), wall = _timed(full_path)
    return {
        "cells": len(result.cells),
        "artifact_bytes": artifact_bytes,
        "wall_s": wall,
        "cells_per_s": len(result.cells) / wall,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: small campaigns, no JSON write",
    )
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)

    scenarios = QUICK_SCENARIOS if args.quick else FULL_SCENARIOS

    serial = run_serial(scenarios)
    print(
        f"  serial {serial['cells']:5d} cells: {serial['wall_s']:6.2f} s "
        f"({serial['cells_per_s']:7.1f} cells/s, "
        f"{serial['errors']} errors)"
    )

    forked = None
    if fork_available():
        forked = run_forked(scenarios, args.workers)
        print(
            f"  forked {forked['cells']:5d} cells x{forked['workers']}: "
            f"{forked['wall_s']:6.2f} s "
            f"({forked['cells_per_s']:7.1f} cells/s)"
        )
    else:
        print("  forked executor unavailable; skipped")

    scored = run_scored(scenarios)
    print(
        f"  scored {scored['cells']:5d} cells: {scored['wall_s']:6.2f} s "
        f"({scored['cells_per_s']:7.1f} cells/s, "
        f"{scored['artifact_bytes']} artifact bytes)"
    )

    payload = {
        "synth": {
            "serial": serial,
            "forked": forked,
            "scored": scored,
        },
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }
    if args.quick:
        print("quick mode: BENCH_SYNTH.json not rewritten")
        return 0
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
