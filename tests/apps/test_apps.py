"""Application tests: numeric correctness and documented behaviour."""

import pytest

from repro.analysis import analyze_run
from repro.apps import (
    CgConfig,
    FarmConfig,
    JacobiConfig,
    PipelineConfig,
    WavefrontConfig,
    cg_like,
    jacobi,
    master_worker,
    pipeline,
    wavefront,
)
from repro.simmpi import run_mpi

FAST = dict(model_init_overhead=False)


# ----------------------------------------------------------------------
# jacobi
# ----------------------------------------------------------------------

def test_jacobi_heat_bounded_and_leaking():
    """The 100.0 injected initially can only decrease (boundary leak)."""
    short = run_mpi(jacobi, 4, JacobiConfig(total_cells=512,
                                            iterations=2), **FAST)
    long = run_mpi(jacobi, 4, JacobiConfig(total_cells=512,
                                           iterations=10), **FAST)
    total_short = sum(chk for chk, _ in short.results)
    total_long = sum(chk for chk, _ in long.results)
    assert 0.0 < total_long < total_short <= 100.0 + 1e-9


def test_jacobi_residual_decreases_with_iterations():
    few = run_mpi(jacobi, 4, JacobiConfig(iterations=2), **FAST)
    many = run_mpi(jacobi, 4, JacobiConfig(iterations=20), **FAST)
    assert many.results[0][1] < few.results[0][1]


def test_jacobi_result_independent_of_rank_count():
    r2 = run_mpi(jacobi, 2, JacobiConfig(total_cells=512, iterations=4),
                 **FAST)
    r4 = run_mpi(jacobi, 4, JacobiConfig(total_cells=512, iterations=4),
                 **FAST)
    assert sum(c for c, _ in r2.results) == pytest.approx(
        sum(c for c, _ in r4.results), rel=1e-9
    )
    assert r2.results[0][1] == pytest.approx(r4.results[0][1], rel=1e-9)


def test_balanced_jacobi_is_clean():
    result = run_mpi(jacobi, 4, JacobiConfig(), **FAST)
    assert analyze_run(result).detected(0.02) == ()


def test_imbalanced_jacobi_shows_nxn_waits():
    result = run_mpi(jacobi, 4, JacobiConfig(imbalance=2.0,
                                             iterations=20), **FAST)
    assert "wait_at_nxn" in analyze_run(result).detected(0.02)


# ----------------------------------------------------------------------
# master/worker
# ----------------------------------------------------------------------

def test_farm_computes_complete_result():
    config = FarmConfig(ntasks=12)
    result = run_mpi(master_worker, 4, config, **FAST)
    # master's sum = sum of (index+1) over all tasks
    assert result.results[0] == sum(range(1, 13))


def test_farm_all_tasks_processed_with_many_workers():
    config = FarmConfig(ntasks=7)
    result = run_mpi(master_worker, 6, config, **FAST)
    assert result.results[0] == sum(range(1, 8))


def test_farm_requires_workers():
    from repro.simkernel import SimulationCrashed

    with pytest.raises(SimulationCrashed):
        run_mpi(master_worker, 1, FarmConfig(), **FAST)


def test_farm_master_bottleneck_creates_late_senders():
    clean = run_mpi(master_worker, 4, FarmConfig(), **FAST)
    congested = run_mpi(
        master_worker, 4, FarmConfig(master_service_time=0.01), **FAST
    )
    sev_clean = analyze_run(clean).severity(property="late_sender")
    sev_congested = analyze_run(congested).severity(
        property="late_sender"
    )
    assert sev_congested > sev_clean
    assert sev_congested > 0.1


# ----------------------------------------------------------------------
# pipeline
# ----------------------------------------------------------------------

def test_pipeline_checksum():
    config = PipelineConfig(nitems=8)
    result = run_mpi(pipeline, 4, config, **FAST)
    # item i leaves stage 3 carrying (i + 4) in each of 4 slots
    expected = sum(4 * (i + 4) for i in range(8))
    assert result.results[3] == expected


def test_pipeline_slow_stage_starves_downstream():
    slow = run_mpi(
        pipeline, 4, PipelineConfig(slow_stage=1, slow_factor=5.0),
        **FAST,
    )
    analysis = analyze_run(slow)
    waits = analysis.locations_of("late_sender")
    ranks = {loc.rank for loc in waits}
    assert 2 in ranks or 3 in ranks  # downstream stages starve


def test_pipeline_throughput_set_by_slowest_stage():
    base = run_mpi(pipeline, 4, PipelineConfig(nitems=12), **FAST)
    slowed = run_mpi(
        pipeline,
        4,
        PipelineConfig(nitems=12, slow_stage=2, slow_factor=3.0),
        **FAST,
    )
    assert slowed.final_time > base.final_time * 2


# ----------------------------------------------------------------------
# wavefront
# ----------------------------------------------------------------------

def test_wavefront_values():
    config = WavefrontConfig(ncols=4, sweeps=1)
    result = run_mpi(wavefront, 3, config, **FAST)
    # rank r accumulates sum over col of (col + r + 1) for sweep 0
    for r in range(3):
        expected = sum(col + r + 1 for col in range(4))
        assert result.results[r] == expected


def test_wavefront_startup_skew_is_late_sender():
    result = run_mpi(
        wavefront, 4, WavefrontConfig(ncols=6, sweeps=1), **FAST
    )
    analysis = analyze_run(result)
    assert analysis.severity(property="late_sender") > 0.05


def test_wavefront_skew_shrinks_with_more_columns():
    narrow = run_mpi(
        wavefront, 4, WavefrontConfig(ncols=4, sweeps=1), **FAST
    )
    wide = run_mpi(
        wavefront, 4, WavefrontConfig(ncols=40, sweeps=1), **FAST
    )
    sev_narrow = analyze_run(narrow).severity(property="late_sender")
    sev_wide = analyze_run(wide).severity(property="late_sender")
    assert sev_wide < sev_narrow


# ----------------------------------------------------------------------
# cg-like
# ----------------------------------------------------------------------

def test_cg_like_deterministic_result():
    r1 = run_mpi(cg_like, 4, CgConfig(), **FAST)
    r2 = run_mpi(cg_like, 4, CgConfig(), **FAST)
    assert r1.results == r2.results


def test_cg_like_rho_consistent_across_ranks():
    result = run_mpi(cg_like, 4, CgConfig(), **FAST)
    assert len({round(r, 9) for r in result.results}) == 1


def test_cg_like_balanced_is_clean():
    result = run_mpi(cg_like, 4, CgConfig(), **FAST)
    assert analyze_run(result).detected(0.02) == ()


def test_cg_like_row_imbalance_shows_at_allreduce():
    result = run_mpi(
        cg_like, 4, CgConfig(row_imbalance=2.0, iterations=12), **FAST
    )
    analysis = analyze_run(result)
    assert "wait_at_nxn" in analysis.detected(0.02)
    (path, _), *_ = list(analysis.callpaths_of("wait_at_nxn").items())
    assert "dot_products" in path
