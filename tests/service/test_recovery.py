"""Restart recovery: restore, requeue, resume, orphan.

These tests drive :class:`AnalysisService` in-process through the
same journal a crashed ``ats serve --state-dir`` leaves behind; the
subprocess version of the same contract lives in the chaos harness
tests.
"""

import time

import pytest

from repro.archive import Archive
from repro.service.journal import ServiceJournal
from repro.service.server import AnalysisService

PROP = "balanced_omp_loop"


def _service(tmp_path, recover=False, **kw):
    return AnalysisService(
        Archive(tmp_path / "archive", fsync=True),
        max_workers=2,
        state_dir=tmp_path / "state",
        recover=recover,
        **kw,
    )


def _run_params(seed=1):
    return {"property": PROP, "size": 6, "threads": 2, "seed": seed}


def _settle(service):
    """Wait for the terminal journal write after resolve()."""
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        with service._lock:
            if not service._queue and not service._inflight:
                break
        time.sleep(0.02)
    time.sleep(0.1)
    service.flush_durable()


class TestRestore:
    def test_finished_job_answers_after_restart(self, tmp_path):
        service = _service(tmp_path)
        job, _ = service.submit("run", _run_params())
        assert job.wait(60)
        _settle(service)
        result = job.result
        del service

        restarted = _service(tmp_path, recover=True)
        recovered = restarted.get_job(job.id)
        assert recovered is not None
        assert recovered.state == "done"
        assert recovered.recovered is True
        assert recovered.result == result
        assert restarted.counts["recovered"] == 1
        restarted.close()

    def test_recovered_flag_in_job_dict(self, tmp_path):
        service = _service(tmp_path)
        job, _ = service.submit("history", {})
        assert job.wait(30)
        _settle(service)
        del service
        restarted = _service(tmp_path, recover=True)
        assert restarted.get_job(job.id).to_dict()["recovered"] is True
        restarted.close()

    def test_new_ids_sort_after_recovered_ids(self, tmp_path):
        service = _service(tmp_path)
        job, _ = service.submit("history", {})
        assert job.wait(30)
        _settle(service)
        del service
        restarted = _service(tmp_path, recover=True)
        fresh, _ = restarted.submit("history", {})
        assert fresh.id > job.id
        assert fresh.wait(30)
        restarted.close()


class TestRequeue:
    def _plant(self, tmp_path, job_id, state, params=None, kind="run"):
        """Write an interrupted job record as a crash would leave it."""

        class Planted:
            pass

        planted = Planted()
        planted.id = job_id
        planted.kind = kind
        planted.params = dict(params or _run_params(seed=9))
        planted.tenant = "default"
        planted.request_id = "req-planted"
        planted.state = state
        planted.error = None
        planted.result = None
        state_dir = tmp_path / "state"
        state_dir.mkdir(parents=True, exist_ok=True)
        journal = ServiceJournal(state_dir / "jobs.jsonl")
        journal.record_state(planted)
        journal.close()

    @pytest.mark.parametrize("state", ["queued", "running"])
    def test_interrupted_job_reruns(self, tmp_path, state):
        self._plant(tmp_path, "job-000500", state)
        service = _service(tmp_path, recover=True)
        job = service.get_job("job-000500")
        assert job is not None
        assert job.recovered is True
        assert job.wait(60)
        assert job.state == "done"
        assert service.counts["requeued"] == 1
        service.close()

    def test_rerun_result_matches_uninterrupted_run(self, tmp_path):
        # the oracle: the same submission against a fresh service
        baseline = AnalysisService(
            Archive(tmp_path / "oracle-archive")
        )
        oracle, _ = baseline.submit("run", _run_params(seed=9))
        assert oracle.wait(60)
        baseline.close()

        self._plant(tmp_path, "job-000500", "running")
        service = _service(tmp_path, recover=True)
        job = service.get_job("job-000500")
        assert job.wait(60)
        assert job.result == oracle.result
        service.close()


class TestOrphan:
    def test_unresolvable_spec_becomes_orphaned(self, tmp_path):
        TestRequeue()._plant(
            tmp_path, "job-000600", "queued",
            params={"property": "gone-forever"},
        )
        service = _service(tmp_path, recover=True)
        job = service.get_job("job-000600")
        assert job is not None
        assert job.state == "orphaned"
        assert "unrecoverable after restart" in job.error
        assert service.counts["orphaned"] == 1
        service.close()

    def test_orphan_state_survives_second_restart(self, tmp_path):
        TestRequeue()._plant(
            tmp_path, "job-000600", "queued",
            params={"property": "gone-forever"},
        )
        service = _service(tmp_path, recover=True)
        service.close()
        again = _service(tmp_path, recover=True)
        assert again.get_job("job-000600").state == "orphaned"
        again.close()


class TestCampaignResume:
    def test_campaign_checkpoint_keyed_by_job_id(self, tmp_path):
        service = _service(tmp_path)
        job, _ = service.submit(
            "campaign",
            {"properties": [PROP], "size": 6, "threads": 2},
        )
        assert job.wait(120)
        assert job.state == "done"
        _settle(service)
        checkpoint = (
            tmp_path / "state" / "checkpoints" / f"{job.id}.jsonl"
        )
        assert checkpoint.exists()
        del service

    def test_interrupted_campaign_resumes_identically(self, tmp_path):
        baseline = AnalysisService(
            Archive(tmp_path / "oracle-archive")
        )
        oracle, _ = baseline.submit(
            "campaign",
            {"properties": [PROP, "early_gather"], "size": 6,
             "threads": 2, "seed": 3},
        )
        assert oracle.wait(120)
        expected = dict(oracle.result)
        expected.pop("progress")
        baseline.close()

        # plant an interrupted campaign record as a crash leaves it
        TestRequeue()._plant(
            tmp_path, "job-000700", "running", kind="campaign",
            params={
                "properties": [PROP, "early_gather"], "size": 6,
                "threads": 2, "seed": 3,
            },
        )
        service = _service(tmp_path, recover=True)
        job = service.get_job("job-000700")
        assert job.wait(120)
        assert job.state == "done"
        got = dict(job.result)
        progress = got.pop("progress")
        assert got == expected
        assert progress["total"] == 2
        service.close()


class TestAcknowledgmentRollback:
    def test_journal_failure_rolls_submission_back(self, tmp_path):
        service = _service(tmp_path)

        def explode(job):
            raise OSError(28, "No space left on device")

        service.journal.record_state = explode
        with pytest.raises(OSError):
            service.submit("history", {})
        # nothing registered: queue, jobs table and key map are clean
        assert service.status()["queue_depth"] == 0
        assert service.status()["jobs_by_state"] == {}
        assert not service._active_keys
        service.close()
