"""Instrumentation-overhead measurement (paper chapter 2).

Benchmark suites "can be used to give an idea of how much the
instrumentation added by a tool affects performance, i.e., of the
overhead introduced by the tool".  Two overhead notions apply here:

* **virtual distortion** -- with a non-zero per-event intrusion cost
  the simulated program itself slows down and its waiting pattern can
  shift (what the paper calls *intrusiveness*),
* **measurement cost** -- wall-clock time and memory the tracing layer
  spends, measured on the host.

A third notion arrived with :mod:`repro.obs`: the *observer's own*
overhead.  ``measure_overhead(..., measure_metrics_overhead=True)``
adds a run with the metrics registry enabled so the cost of watching
the tool can be compared against the cost of the tool watching the
program.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ..analysis import analyze_run
from ..obs import set_metrics_enabled
from ..simmpi.runtime import run_mpi
from ..simmpi.transport import TransportParams


@dataclass
class OverheadReport:
    """Overhead of instrumenting one program at one intrusion level."""

    program: str
    intrusion_per_event: float
    clean_virtual_time: float
    traced_virtual_time: float
    events: int
    clean_wall_time: float
    traced_wall_time: float
    #: severity shift: max over properties of |traced - clean| severity
    max_severity_shift: float
    #: wall time of a traced run with the metrics registry enabled
    #: (None unless ``measure_metrics_overhead`` was requested)
    metrics_wall_time: Optional[float] = None

    @property
    def virtual_dilation(self) -> float:
        if self.clean_virtual_time <= 0:
            return 0.0
        return (
            self.traced_virtual_time / self.clean_virtual_time - 1.0
        )

    def format(self) -> str:
        line = (
            f"{self.program}: intrusion={self.intrusion_per_event:g}s/evt"
            f" events={self.events}"
            f" dilation={self.virtual_dilation:+.2%}"
            f" severity-shift={self.max_severity_shift:.4f}"
            f" wall {self.clean_wall_time * 1e3:.1f}ms ->"
            f" {self.traced_wall_time * 1e3:.1f}ms"
        )
        if self.metrics_wall_time is not None:
            line += f" (+metrics {self.metrics_wall_time * 1e3:.1f}ms)"
        return line + "\n"


def measure_overhead(
    main: Callable,
    size: int = 4,
    intrusion: float = 0.0,
    transport: Optional[TransportParams] = None,
    seed: int = 0,
    name: Optional[str] = None,
    reference_severities: Optional[dict] = None,
    measure_metrics_overhead: bool = False,
    **kwargs: Any,
) -> OverheadReport:
    """Compare a clean run against an instrumented run of ``main``.

    With ``measure_metrics_overhead`` a third, traced run executes with
    the metrics registry switched on (restored afterwards) and its wall
    time lands in :attr:`OverheadReport.metrics_wall_time`.
    """
    t0 = time.perf_counter()
    clean = run_mpi(
        main, size, transport=transport, trace=False, seed=seed, **kwargs
    )
    clean_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    traced = run_mpi(
        main,
        size,
        transport=transport,
        trace=True,
        intrusion=intrusion,
        seed=seed,
        **kwargs,
    )
    traced_wall = time.perf_counter() - t0
    metrics_wall: Optional[float] = None
    if measure_metrics_overhead:
        previous = set_metrics_enabled(True)
        try:
            t0 = time.perf_counter()
            run_mpi(
                main,
                size,
                transport=transport,
                trace=True,
                intrusion=intrusion,
                seed=seed,
                **kwargs,
            )
            metrics_wall = time.perf_counter() - t0
        finally:
            set_metrics_enabled(previous)
    severities = analyze_run(traced).severities_by_property()
    if reference_severities is None:
        reference_severities = {}
    keys = set(severities) | set(reference_severities)
    shift = max(
        (
            abs(
                severities.get(k, 0.0) - reference_severities.get(k, 0.0)
            )
            for k in keys
        ),
        default=0.0,
    )
    return OverheadReport(
        program=name or getattr(main, "__name__", "program"),
        intrusion_per_event=intrusion,
        clean_virtual_time=clean.final_time,
        traced_virtual_time=traced.final_time,
        events=len(traced.events),
        clean_wall_time=clean_wall,
        traced_wall_time=traced_wall,
        max_severity_shift=shift,
        metrics_wall_time=metrics_wall,
    )


def intrusion_sweep(
    main: Callable,
    intrusions: Sequence[float],
    size: int = 4,
    name: Optional[str] = None,
    seed: int = 0,
    **kwargs: Any,
) -> list[OverheadReport]:
    """Measure overhead across intrusion levels; the first level is the
    reference for severity-shift computation."""
    reports = []
    reference: Optional[dict] = None
    for level in intrusions:
        traced = run_mpi(
            main, size, trace=True, intrusion=level, seed=seed, **kwargs
        )
        severities = analyze_run(traced).severities_by_property()
        if reference is None:
            reference = severities
        reports.append(
            measure_overhead(
                main,
                size=size,
                intrusion=level,
                reference_severities=reference,
                name=name,
                seed=seed,
                **kwargs,
            )
        )
    return reports
