"""Trace archive + incremental analysis cache + cross-run diffing.

The archive turns the test suite from a run-and-discard harness into a
system of record.  Every run lands in a directory-backed
content-addressed store (:mod:`.store`): the trace as a
gzip-compressed blob keyed by its digest, the run identity in an
append-only manifest journal that heals partial tails exactly like a
resilience checkpoint.  Analysis over archived traces
(:func:`analyze_archived`) is memoized per ``(trace digest, detector
fingerprint)`` cell, so re-running the analyzer across the full
history is near-pure cache lookups -- and a change to one detector
recomputes only that detector's column.  On top sit history listing
and cross-run regression diffing with a CI gate (``ats history``,
``ats diff --gate``).
"""

from .api import (
    Archive,
    ArchivedRun,
    coerce_archive,
    format_history,
    history_to_json_str,
    params_to_jsonable,
    run_identity,
)
from .cache import CacheStats, analyze_archived, cell_key, meta_key
from .codec import (
    finding_from_dict,
    finding_to_dict,
    findings_from_bytes,
    findings_to_bytes,
    result_to_dict,
    result_to_json_bytes,
)
from .fingerprint import (
    config_fingerprint,
    detector_fingerprint,
    detector_set_fingerprint,
)
from .store import (
    ArchiveError,
    ArchiveStore,
    MANIFEST_FORMAT,
    canonical_json,
    sha256_hex,
)

__all__ = [
    "Archive",
    "ArchivedRun",
    "ArchiveError",
    "ArchiveStore",
    "CacheStats",
    "MANIFEST_FORMAT",
    "analyze_archived",
    "canonical_json",
    "cell_key",
    "coerce_archive",
    "config_fingerprint",
    "detector_fingerprint",
    "detector_set_fingerprint",
    "finding_from_dict",
    "finding_to_dict",
    "findings_from_bytes",
    "findings_to_bytes",
    "format_history",
    "history_to_json_str",
    "meta_key",
    "params_to_jsonable",
    "result_to_dict",
    "result_to_json_bytes",
    "run_identity",
    "sha256_hex",
]
