"""The in-process injector: counted sites, torn writes, env install."""

import errno
import io
import json
from pathlib import Path

import pytest

from repro.chaos import inject
from repro.chaos.inject import HostFaultInjector, install_from_env
from repro.chaos.spec import (
    ArchiveWriteFault,
    ChaosPlan,
    DropConnection,
    JournalWriteFault,
    StuckJob,
)


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    yield
    inject.uninstall()


def _injector(*faults, sleep=None):
    return HostFaultInjector(
        ChaosPlan.of(*faults), sleep=sleep or (lambda s: None)
    )


class TestJournalSite:
    def test_nth_write_raises_cleanly(self, tmp_path):
        injector = _injector(JournalWriteFault(nth=2, error="EIO"))
        fh = io.StringIO()
        injector.journal_record(Path("j"), fh, '{"a": 1}\n')
        with pytest.raises(OSError) as exc:
            injector.journal_record(Path("j"), fh, '{"b": 2}\n')
        assert exc.value.errno == errno.EIO
        assert fh.getvalue() == ""  # clean failure: no bytes written
        injector.journal_record(Path("j"), fh, '{"c": 3}\n')
        assert injector.counts["journal_record"] == 3

    def test_torn_write_leaves_partial_prefix(self):
        injector = _injector(JournalWriteFault(nth=1, torn=True))
        fh = io.StringIO()
        line = '{"key": "cell", "payload": {}}\n'
        with pytest.raises(OSError):
            injector.journal_record(Path("j"), fh, line)
        torn = fh.getvalue()
        assert 0 < len(torn) < len(line)
        assert line.startswith(torn)

    def test_count_window(self):
        injector = _injector(JournalWriteFault(nth=2, count=2))
        fh = io.StringIO()
        injector.journal_record(Path("j"), fh, "x\n")
        for _ in range(2):
            with pytest.raises(OSError):
                injector.journal_record(Path("j"), fh, "x\n")
        injector.journal_record(Path("j"), fh, "x\n")


class TestBlobSite:
    def test_enospc_at_counted_write(self):
        injector = _injector(ArchiveWriteFault(nth=2))
        injector.blob_write(Path("b"), b"data")
        with pytest.raises(OSError) as exc:
            injector.blob_write(Path("b"), b"data")
        assert exc.value.errno == errno.ENOSPC
        injector.blob_write(Path("b"), b"data")

    def test_unknown_errno_falls_back_to_eio(self):
        injector = _injector(
            ArchiveWriteFault(nth=1, error="NOT_AN_ERRNO")
        )
        with pytest.raises(OSError) as exc:
            injector.blob_write(Path("b"), b"data")
        assert exc.value.errno == errno.EIO


class TestExecuteAndRespond:
    def test_stuck_job_wedges_nth_execution(self):
        naps = []
        injector = _injector(
            StuckJob(nth=2, hold=3600.0), sleep=naps.append
        )
        injector.execute("run")
        assert naps == []
        injector.execute("run")
        assert naps == [3600.0]
        injector.execute("run")
        assert naps == [3600.0]

    def test_drop_connection_window(self):
        injector = _injector(DropConnection(nth=1, count=2))
        assert injector.drop_connection() is True
        assert injector.drop_connection() is True
        assert injector.drop_connection() is False


class TestInstallation:
    def test_active_defaults_none(self):
        assert inject.active() is None

    def test_install_uninstall(self):
        injector = _injector()
        assert inject.install(injector) is injector
        assert inject.active() is injector
        inject.uninstall()
        assert inject.active() is None

    def test_install_from_env(self):
        plan = ChaosPlan.of(
            JournalWriteFault(nth=3, torn=True), seed=5
        )
        env = {inject.ENV_VAR: json.dumps(plan.to_dict())}
        injector = install_from_env(env)
        assert injector is not None
        assert injector.plan == plan
        assert inject.active() is injector

    def test_absent_env_is_noop(self):
        assert install_from_env({}) is None
        assert install_from_env({inject.ENV_VAR: ""}) is None


class TestProbeSites:
    """The sys.modules probes actually reach the injector."""

    def test_checkpoint_journal_probe(self, tmp_path):
        from repro.resilience.checkpoint import CheckpointJournal

        inject.install(_injector(JournalWriteFault(nth=2, torn=True)))
        journal = CheckpointJournal(tmp_path / "j.jsonl")
        journal.record("a", {})
        with pytest.raises(OSError):
            journal.record("b", {})
        journal.record("c", {})  # rollback kept the file appendable
        journal.close()
        inject.uninstall()
        loaded = CheckpointJournal(tmp_path / "j.jsonl").load()
        assert sorted(loaded) == ["a", "c"]

    def test_archive_blob_probe(self, tmp_path):
        from repro.archive.store import ArchiveStore

        inject.install(_injector(ArchiveWriteFault(nth=1)))
        store = ArchiveStore(tmp_path / "archive")
        with pytest.raises(OSError):
            store.put_blob(b"payload")
        inject.uninstall()
        digest = store.put_blob(b"payload")
        # the failed attempt left no partial object behind
        assert store.get_blob(digest) == b"payload"
        leftovers = [
            p
            for p in (tmp_path / "archive").rglob("*")
            if p.is_file() and p.name.startswith(".tmp-")
        ]
        assert leftovers == []
