"""Checkpoint journal: append, flush, tolerate a killed final write."""

import json

import pytest

from repro.resilience import CheckpointError, CheckpointJournal


def test_missing_file_means_fresh_sweep(tmp_path):
    journal = CheckpointJournal(tmp_path / "ck.jsonl")
    assert journal.load() == {}


def test_record_and_load_round_trip(tmp_path):
    path = tmp_path / "ck.jsonl"
    with CheckpointJournal(path) as journal:
        journal.record("a|m0|s0", {"status": "ok", "cell": {"x": 1}})
        journal.record("a|m1|s0", {"status": "failed", "attempts": 2})
    done = CheckpointJournal(path).load()
    assert done["a|m0|s0"]["cell"] == {"x": 1}
    assert done["a|m1|s0"]["attempts"] == 2
    # first line is the header, exactly once
    lines = path.read_text().splitlines()
    assert json.loads(lines[0])["format"] == "ats-checkpoint"
    assert len(lines) == 3


def test_reopen_appends_without_second_header(tmp_path):
    path = tmp_path / "ck.jsonl"
    with CheckpointJournal(path) as journal:
        journal.record("a", {"status": "ok", "cell": {}})
    with CheckpointJournal(path) as journal:
        journal.record("b", {"status": "ok", "cell": {}})
    lines = path.read_text().splitlines()
    headers = [l for l in lines if "ats-checkpoint" in l]
    assert len(headers) == 1
    assert set(CheckpointJournal(path).load()) == {"a", "b"}


def test_duplicate_keys_last_record_wins(tmp_path):
    path = tmp_path / "ck.jsonl"
    with CheckpointJournal(path) as journal:
        journal.record("a", {"status": "ok", "cell": {"try": 1}})
        journal.record("a", {"status": "ok", "cell": {"try": 2}})
    assert CheckpointJournal(path).load()["a"]["cell"] == {"try": 2}


def test_partial_final_line_is_dropped(tmp_path):
    path = tmp_path / "ck.jsonl"
    with CheckpointJournal(path) as journal:
        journal.record("a", {"status": "ok", "cell": {}})
        journal.record("b", {"status": "ok", "cell": {}})
    # simulate a kill mid-write of the final record
    data = path.read_bytes()
    path.write_bytes(data[:-9])
    done = CheckpointJournal(path).load()
    assert set(done) == {"a"}


def test_midfile_corruption_raises(tmp_path):
    path = tmp_path / "ck.jsonl"
    with CheckpointJournal(path) as journal:
        journal.record("a", {"status": "ok", "cell": {}})
        journal.record("b", {"status": "ok", "cell": {}})
    lines = path.read_text().splitlines(keepends=True)
    lines[1] = "{broken\n"
    path.write_text("".join(lines))
    with pytest.raises(CheckpointError, match="corrupt checkpoint record"):
        CheckpointJournal(path).load()


def test_foreign_file_rejected(tmp_path):
    path = tmp_path / "ck.jsonl"
    path.write_text('{"format": "something-else"}\n')
    with pytest.raises(CheckpointError, match="not an ats-checkpoint"):
        CheckpointJournal(path).load()
    path.write_text("not json at all\n")
    with pytest.raises(CheckpointError, match="corrupt checkpoint header"):
        CheckpointJournal(path).load()
