"""Property-based stress tests of the point-to-point transport.

Hypothesis generates random message patterns; the invariants are the
MPI guarantees: every properly matched message is delivered intact,
per-channel order is preserved, and the whole simulation is
deterministic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import (
    ANY_SOURCE,
    ANY_TAG,
    MPI_INT,
    TransportParams,
    alloc_mpi_buf,
    run_mpi,
)
from repro.work import do_work

FAST = dict(model_init_overhead=False)


# A random "schedule": for each sender, a list of (payload, delay).
schedules = st.lists(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10**6),
            st.floats(min_value=0.0, max_value=0.01),
        ),
        min_size=0,
        max_size=5,
    ),
    min_size=2,
    max_size=4,
)


@given(schedule=schedules)
@settings(max_examples=25, deadline=None)
def test_all_messages_delivered_intact(schedule):
    """Senders 1..n-1 stream to rank 0 with random payloads/timing;
    rank 0 receives everything, in per-sender order, bit-exact."""
    nsenders = len(schedule)
    received = []

    def main(comm):
        me = comm.rank()
        buf = alloc_mpi_buf(MPI_INT, 1)
        if me == 0:
            total = sum(len(msgs) for msgs in schedule)
            for _ in range(total):
                status = comm.recv(buf, ANY_SOURCE, ANY_TAG)
                received.append((status.source, int(buf.data[0])))
        else:
            for payload, delay in schedule[me - 1]:
                do_work(delay)
                buf.data[0] = payload
                comm.send(buf, 0, tag=0)

    run_mpi(main, nsenders + 1, **FAST)
    # completeness
    sent = sorted(
        (i + 1, payload)
        for i, msgs in enumerate(schedule)
        for payload, _ in msgs
    )
    assert sorted(received) == sent
    # per-sender FIFO order
    for i, msgs in enumerate(schedule):
        stream = [p for src, p in received if src == i + 1]
        assert stream == [payload for payload, _ in msgs]


@given(
    schedule=schedules,
    eager=st.integers(min_value=0, max_value=64),
)
@settings(max_examples=15, deadline=None)
def test_delivery_invariants_hold_under_any_protocol(schedule, eager):
    """The same pattern must complete under any eager threshold
    (4-byte messages flip between eager and rendezvous at eager<4)."""
    transport = TransportParams(eager_threshold=eager)
    count = {"n": 0}

    def main(comm):
        me = comm.rank()
        buf = alloc_mpi_buf(MPI_INT, 1)
        if me == 0:
            total = sum(len(msgs) for msgs in schedule)
            for _ in range(total):
                comm.recv(buf, ANY_SOURCE, ANY_TAG)
                count["n"] += 1
        else:
            for payload, delay in schedule[me - 1]:
                do_work(delay)
                buf.data[0] = payload
                comm.send(buf, 0, tag=0)

    run_mpi(main, len(schedule) + 1, transport=transport, **FAST)
    assert count["n"] == sum(len(m) for m in schedule)


@given(schedule=schedules, seed=st.integers(min_value=0, max_value=99))
@settings(max_examples=10, deadline=None)
def test_stress_runs_are_deterministic(schedule, seed):
    def run():
        trace = []

        def main(comm):
            me = comm.rank()
            buf = alloc_mpi_buf(MPI_INT, 1)
            if me == 0:
                total = sum(len(m) for m in schedule)
                for _ in range(total):
                    status = comm.recv(buf, ANY_SOURCE, ANY_TAG)
                    trace.append(
                        (status.source, comm.world.sim.now)
                    )
            else:
                for payload, delay in schedule[me - 1]:
                    do_work(delay)
                    buf.data[0] = payload
                    comm.send(buf, 0, tag=0)

        result = run_mpi(main, len(schedule) + 1, seed=seed, **FAST)
        return trace, result.final_time

    assert run() == run()


@given(
    pattern=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),   # src
            st.integers(min_value=0, max_value=3),   # dst
            st.integers(min_value=0, max_value=7),   # tag
        ),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=25, deadline=None)
def test_exact_envelope_exchange_never_deadlocks(pattern):
    """Each rank posts irecvs for exactly the messages addressed to it
    (in global pattern order) and isends its own; waitall must
    complete regardless of the interleaving."""
    pattern = [(s, d, t) for s, d, t in pattern if s != d]

    def main(comm):
        me = comm.rank()
        bufs = []
        reqs = []
        for i, (src, dst, tag) in enumerate(pattern):
            if me == dst:
                buf = alloc_mpi_buf(MPI_INT, 1)
                bufs.append((i, buf))
                # tag is made unique per pattern entry to avoid
                # ambiguous matching between identical envelopes
                reqs.append(comm.irecv(buf, src, tag * 16 + i))
        for i, (src, dst, tag) in enumerate(pattern):
            if me == src:
                sbuf = alloc_mpi_buf(MPI_INT, 1)
                sbuf.data[0] = i
                reqs.append(comm.isend(sbuf, dst, tag * 16 + i))
        comm.waitall(reqs)
        for i, buf in bufs:
            assert buf.data[0] == i

    run_mpi(main, 4, **FAST)
