"""Validation: the test procedures the paper defines for tools.

* :mod:`repro.validation.harness` -- positive/negative detection matrix,
* :mod:`repro.validation.semantics` -- semantics-preservation checks,
* :mod:`repro.validation.overhead` -- instrumentation-overhead and
  intrusiveness measurement,
* :mod:`repro.validation.robustness` -- detector TP/FP curves under
  swept fault-injection magnitude,
* :mod:`repro.validation.suites_catalog` -- the paper's chapter 2/4
  suite collections as structured data.
"""

from .experiments import SweepPoint, SweepResult, run_sweep
from .harness import (
    GLOBALLY_ALLOWED,
    ToolCertificate,
    certify_tool,
    MatrixResult,
    MatrixRow,
    default_tool,
    run_validation_matrix,
    validate_spec,
)
from .overhead import OverheadReport, intrusion_sweep, measure_overhead
from .robustness import (
    DEFAULT_MAGNITUDES,
    CurvePoint,
    RobustnessCell,
    RobustnessResult,
    cell_key,
    run_robustness,
)
from .semantics import SemanticsReport, check_semantics
from .suites_catalog import (
    SuiteEntry,
    all_entries,
    find_suites,
    format_catalog,
)

__all__ = [
    "DEFAULT_MAGNITUDES",
    "CurvePoint",
    "GLOBALLY_ALLOWED",
    "MatrixResult",
    "MatrixRow",
    "RobustnessCell",
    "RobustnessResult",
    "OverheadReport",
    "SemanticsReport",
    "SuiteEntry",
    "SweepPoint",
    "SweepResult",
    "ToolCertificate",
    "cell_key",
    "certify_tool",
    "run_sweep",
    "all_entries",
    "check_semantics",
    "default_tool",
    "find_suites",
    "format_catalog",
    "intrusion_sweep",
    "measure_overhead",
    "run_robustness",
    "run_validation_matrix",
    "validate_spec",
]
