#!/usr/bin/env python
"""Chapter-4 workflow: analyze 'real' applications with known behaviour.

Runs the bundled mini-applications in healthy and pathological
configurations and shows that the analyzer's diagnosis matches each
application's documented performance behaviour.
"""

from repro import analyze_run, format_summary_table, run_mpi
from repro.apps import (
    CgConfig,
    FarmConfig,
    JacobiConfig,
    cg_like,
    jacobi,
    master_worker,
)


def show(title, result):
    analysis = analyze_run(result)
    print(f"--- {title} " + "-" * max(1, 58 - len(title)))
    print(format_summary_table(analysis))
    return analysis


def main() -> None:
    # Jacobi: balanced vs. skewed strips.  Note that for such a short
    # program MPI_Init dominates -- the very observation the paper
    # makes about its own test programs in figure 3.2 -- so framework
    # overhead is filtered like the validation harness does.
    healthy = run_mpi(jacobi, 8, JacobiConfig(iterations=15))
    a = show("jacobi, balanced strips (healthy)", healthy)
    app_findings = tuple(
        p for p in a.detected(0.02) if p != "mpi_init_overhead"
    )
    assert app_findings == ()

    skewed = run_mpi(
        jacobi, 8, JacobiConfig(iterations=15, imbalance=2.0)
    )
    a = show("jacobi, linear strip imbalance", skewed)
    assert "wait_at_nxn" in a.detected(0.02)

    # task farm: self-balancing vs. master bottleneck
    farm = run_mpi(master_worker, 8, FarmConfig(ntasks=28))
    a = show("task farm, fast master (healthy)", farm)

    congested = run_mpi(
        master_worker, 8,
        FarmConfig(ntasks=28, master_service_time=0.008),
    )
    a = show("task farm, slow master (bottleneck)", congested)
    assert "late_sender" in a.detected(0.05)

    # CG: the two allreduce dots absorb row imbalance
    cg_bad = run_mpi(
        cg_like, 8, CgConfig(iterations=12, row_imbalance=2.0)
    )
    a = show("cg-like solver, row imbalance", cg_bad)
    assert "wait_at_nxn" in a.detected(0.02)
    top_path = next(iter(a.callpaths_of("wait_at_nxn")))
    print(f"imbalance localized at: {' / '.join(top_path)}")
    assert "dot_products" in top_path

    print("\nall application diagnoses match their documented behaviour.")


if __name__ == "__main__":
    main()
