"""The MPI world runtime: process launch, init/finalize, run results.

``MpiWorld`` plays the role of ``mpiexec`` plus the MPI library
bootstrap: it spawns one simulated process per rank, binds tracing and
per-rank RNG streams, models the ``MPI_Init``/``MPI_Finalize`` costs
(the "High MPI Initialization/Finalization Overhead" the paper observes
in figure 3.2), runs the program and packages the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..simkernel import Simulator, current_process
from ..trace.api import bind_instrumentation
from ..trace.events import Event, Location
from ..trace.recorder import TraceRecorder
from ..trace.stats import TraceProfile, profile_trace
from ..trace.timeline import render_timeline
from . import collectives as _coll
from .communicator import Communicator
from .errors import MpiError
from .transport import P2PEngine, TransportParams


@dataclass(frozen=True)
class CollectiveTuning:
    """Which algorithm each tunable collective uses.

    Lets benchmarks ablate implementation choices (the paper's section
    3.3 portability question): e.g. a linear broadcast serializes at
    the root, a binomial one pipelines down a tree -- but the *late
    broadcast* property must be visible under either.
    """

    bcast: str = "binomial"        # "binomial" | "linear"
    reduce: str = "binomial"       # "binomial" | "linear"
    barrier: str = "dissemination"  # "dissemination" | "linear"

    def __post_init__(self) -> None:
        if self.bcast not in ("binomial", "linear"):
            raise ValueError(f"unknown bcast algorithm {self.bcast!r}")
        if self.reduce not in ("binomial", "linear"):
            raise ValueError(f"unknown reduce algorithm {self.reduce!r}")
        if self.barrier not in ("dissemination", "linear"):
            raise ValueError(
                f"unknown barrier algorithm {self.barrier!r}"
            )


class MpiWorld:
    """One simulated MPI execution environment."""

    def __init__(
        self,
        size: int,
        transport: Optional[TransportParams] = None,
        recorder: Optional[TraceRecorder] = None,
        seed: int = 0,
        model_init_overhead: bool = True,
        collectives: Optional[CollectiveTuning] = None,
        faults=None,
    ):
        if size < 1:
            raise ValueError(f"world size must be >= 1, got {size}")
        self.size = size
        self.transport = transport or TransportParams()
        self.collectives = collectives or CollectiveTuning()
        self.sim = Simulator(seed=seed)
        #: active fault injector (see :mod:`repro.faults`), or None;
        #: shared by the scheduler hook and the transport hook so one
        #: seed tree drives every perturbation domain.
        self.faults = faults
        if faults is not None:
            self.sim.fault_injector = faults
        self.engine = P2PEngine(self.transport, faults=faults)
        self.recorder = recorder
        self.model_init_overhead = model_init_overhead
        self._next_comm_id = 0
        self._comm_id_memo: dict[Any, int] = {}
        self._msg_counter = 0
        self.comm_world = Communicator(
            self,
            tuple(range(size)),
            self._alloc_comm_id(tuple(range(size))),
            "MPI_COMM_WORLD",
        )
        self._launched = False

    # ------------------------------------------------------------------
    # id allocation
    # ------------------------------------------------------------------

    def _alloc_comm_id(self, ranks: tuple[int, ...]) -> int:
        comm_id = self._next_comm_id
        self._next_comm_id += 1
        if self.recorder is not None:
            self.recorder.register_comm(comm_id, ranks)
        return comm_id

    def comm_id_for(self, key: Any, ranks: tuple[int, ...]) -> int:
        """Memoized context-id allocation for collective comm creation.

        All members of a new communicator compute the same ``key``
        (parent id, collective instance, color); the first caller
        allocates, the rest look up -- so every member agrees on the
        context id without extra communication.
        """
        if key not in self._comm_id_memo:
            self._comm_id_memo[key] = self._alloc_comm_id(ranks)
        return self._comm_id_memo[key]

    def new_msg_id(self) -> int:
        self._msg_counter += 1
        return self._msg_counter

    # ------------------------------------------------------------------
    # rank lifecycle
    # ------------------------------------------------------------------

    def _mpi_init(self, rank: int) -> None:
        proc = current_process()
        rec = self.recorder
        loc = Location(rank, 0)
        if rec is not None:
            rec.enter(proc.sim.now, loc, "MPI_Init")
        if self.model_init_overhead:
            # Per-rank jitter makes init realistic (daemon contact,
            # connection setup) while staying deterministic.
            rng = proc.context["rng"]
            cost = self.transport.init_cost(self.size)
            proc.sim.hold(cost * (0.8 + 0.4 * rng.random()))
            _coll.barrier(self.comm_world, self.comm_world._next_instance())
        if rec is not None:
            rec.exit(proc.sim.now, loc, "MPI_Init")

    def _mpi_finalize(self, rank: int) -> None:
        proc = current_process()
        rec = self.recorder
        loc = Location(rank, 0)
        if rec is not None:
            rec.enter(proc.sim.now, loc, "MPI_Finalize")
        if self.model_init_overhead:
            _coll.barrier(self.comm_world, self.comm_world._next_instance())
            rng = proc.context["rng"]
            cost = self.transport.finalize_cost(self.size)
            proc.sim.hold(cost * (0.8 + 0.4 * rng.random()))
        if rec is not None:
            rec.exit(proc.sim.now, loc, "MPI_Finalize")

    def _rank_body(
        self,
        rank: int,
        main: Callable[..., Any],
        args: tuple,
        kwargs: dict,
    ) -> Any:
        proc = current_process()
        proc.context["mpi_rank"] = rank
        proc.context["mpi_world"] = self
        proc.context["rng"] = self.sim.rng.spawn(rank)
        bind_instrumentation(self.recorder, Location(rank, 0))
        self._mpi_init(rank)
        result = main(self.comm_world, *args, **kwargs)
        self._mpi_finalize(rank)
        return result

    # ------------------------------------------------------------------
    # launching
    # ------------------------------------------------------------------

    def launch(
        self, main: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> None:
        """Spawn one process per rank, each running ``main(comm, ...)``."""
        if self._launched:
            raise MpiError("world already launched")
        self._launched = True
        for rank in range(self.size):
            self.sim.spawn(
                self._rank_body,
                rank,
                main,
                args,
                kwargs,
                name=f"rank{rank}",
            )

    def run(
        self,
        strict: bool = True,
        time_budget: float | None = None,
    ) -> "RunResult":
        """Run to completion and return the packaged result.

        With ``strict`` (default) a program that leaks unmatched
        messages or unbalanced trace regions fails loudly -- the test
        suite should never silently accept a malformed synthetic
        program.  ``time_budget`` arms the kernel watchdog: a program
        still running past that virtual time is torn down with a
        :class:`~repro.simkernel.HangError`.
        """
        final_time = self.sim.run(budget=time_budget)
        leftovers = self.engine.unmatched()
        if strict and (leftovers["sends"] or leftovers["recvs"]):
            raise MpiError(
                "run finished with unmatched messages: "
                + "; ".join(self.engine.unmatched_details())
            )
        if self.recorder is not None:
            self.recorder.finish()
        results = [None] * self.size
        by_name = self.sim.results()
        for rank in range(self.size):
            results[rank] = by_name.get(f"rank{rank}")
        return RunResult(
            size=self.size,
            final_time=final_time,
            results=results,
            recorder=self.recorder,
            transport=self.transport,
            world=self,
        )


@dataclass
class RunResult:
    """Everything a test or analyzer needs from one program run."""

    size: int
    final_time: float
    results: list
    recorder: Optional[TraceRecorder]
    transport: TransportParams
    world: MpiWorld = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def events(self) -> list[Event]:
        return self.recorder.events if self.recorder is not None else []

    def timeline(self, width: int = 100, title: str = "") -> str:
        """ASCII timeline of the run (the Vampir-display stand-in)."""
        return render_timeline(
            self.events, width=width, t_end=self.final_time, title=title
        )

    def profile(self) -> TraceProfile:
        """Region time profile of the run."""
        return profile_trace(self.events)


def run_mpi(
    main: Callable[..., Any],
    size: int = 4,
    *args: Any,
    transport: Optional[TransportParams] = None,
    trace: bool = True,
    intrusion: float = 0.0,
    seed: int = 0,
    model_init_overhead: bool = True,
    strict: bool = True,
    collectives: Optional[CollectiveTuning] = None,
    faults=None,
    time_budget: Optional[float] = None,
    **kwargs: Any,
) -> RunResult:
    """Run ``main(comm, *args, **kwargs)`` on ``size`` simulated ranks.

    The one-call entry point used by examples, tests and the generated
    single-property programs.  ``faults`` accepts a
    :class:`~repro.faults.FaultPlan` (bound to ``seed``) or a prebuilt
    :class:`~repro.faults.FaultInjector`; no-op plans resolve to the
    clean path.  ``time_budget`` caps virtual time (see
    :meth:`MpiWorld.run`).
    """
    from ..faults.inject import FaultInjector

    recorder = (
        TraceRecorder(intrusion_per_event=intrusion) if trace else None
    )
    world = MpiWorld(
        size,
        transport=transport,
        recorder=recorder,
        seed=seed,
        model_init_overhead=model_init_overhead,
        collectives=collectives,
        faults=FaultInjector.coerce(faults, seed=seed),
    )
    world.launch(main, *args, **kwargs)
    return world.run(strict=strict, time_budget=time_budget)
