"""The deterministic discrete-event scheduler.

A :class:`Simulator` owns a virtual clock and an event heap of
``(time, sequence, process)`` entries.  Exactly one simulated process
runs at any moment; ties in time are broken by scheduling order, so a
whole simulation is a deterministic function of the program and its
seeds.  Determinism is essential for a *test suite*: the same ATS
program must exhibit the same performance property trace on every run.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from .errors import (
    DeadlockError,
    NotInProcessError,
    SimError,
    SimulationCrashed,
)
from .process import ProcState, SimProcess, current_process, maybe_current_process
from .rng import Lcg64


class Simulator:
    """A discrete-event simulation run.

    Typical use::

        sim = Simulator()
        sim.spawn(body, arg1, name="rank0")
        sim.run()

    Inside ``body``, processes advance virtual time with
    :meth:`hold`, block with :meth:`passivate` and wake each other with
    :meth:`activate` -- or use the higher-level primitives in
    :mod:`repro.simkernel.sync`.
    """

    def __init__(self, seed: int = 0):
        self._now = 0.0
        self._heap: list[tuple[float, int, SimProcess]] = []
        self._seq = 0
        self._pid = 0
        self.processes: list[SimProcess] = []
        self.rng = Lcg64(seed)
        self._running = False
        self._finished = False
        #: monotonically increasing count of process dispatches; a cheap
        #: proxy for "simulation effort" used by overhead benchmarks.
        self.dispatch_count = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------

    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: str | None = None,
        delay: float = 0.0,
        **kwargs: Any,
    ) -> SimProcess:
        """Create a process and schedule it to start ``delay`` from now.

        May be called before :meth:`run` or from inside a running
        process (fork/join style, as the OpenMP layer does).
        """
        if self._finished:
            raise SimError("cannot spawn into a finished simulation")
        if delay < 0:
            raise ValueError("spawn delay must be non-negative")
        pid = self._pid
        self._pid += 1
        if name is None:
            name = f"proc{pid}"
        proc = SimProcess(self, fn, args, kwargs, name=name, pid=pid)
        self.processes.append(proc)
        self._schedule(proc, self._now + delay)
        return proc

    def _schedule(self, proc: SimProcess, at: float) -> None:
        if at < self._now:
            raise SimError(
                f"cannot schedule {proc.name} in the past "
                f"({at} < now {self._now})"
            )
        proc.state = ProcState.SCHEDULED
        heapq.heappush(self._heap, (at, self._seq, proc))
        self._seq += 1

    # ------------------------------------------------------------------
    # process-side API (callable only from inside a simulated process)
    # ------------------------------------------------------------------

    def hold(self, dt: float) -> None:
        """Advance the calling process's local time by ``dt`` seconds."""
        if dt < 0:
            raise ValueError("hold duration must be non-negative")
        proc = current_process()
        self._check_owner(proc)
        self._schedule(proc, self._now + dt)
        proc.waiting_on = f"hold({dt:g})"
        proc._switch_out()
        proc.waiting_on = ""

    def passivate(self, reason: str = "passivate") -> None:
        """Block the calling process until another process activates it."""
        proc = current_process()
        self._check_owner(proc)
        proc.state = ProcState.PASSIVE
        proc.waiting_on = reason
        proc._switch_out()
        proc.waiting_on = ""

    def activate(self, proc: SimProcess, delay: float = 0.0) -> None:
        """Make a passive (or not-yet-started) process runnable.

        Callable from inside any process, or from outside before
        :meth:`run`.  Activating an already scheduled/running process is
        a no-op; activating a dead process is an error.
        """
        if delay < 0:
            raise ValueError("activate delay must be non-negative")
        self._check_owner(proc)
        if proc.state in (ProcState.PASSIVE, ProcState.CREATED):
            self._schedule(proc, self._now + delay)
        elif proc.state in (ProcState.SCHEDULED, ProcState.RUNNING):
            pass
        else:
            raise SimError(f"cannot activate dead process {proc.name}")

    def _check_owner(self, proc: SimProcess) -> None:
        if proc.sim is not self:
            raise SimError(
                f"process {proc.name} belongs to a different simulator"
            )

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------

    def run(
        self,
        until: float | None = None,
        max_dispatches: int | None = None,
    ) -> float:
        """Run the simulation to completion and return the final time.

        ``until`` stops the clock at a given virtual time (remaining
        events stay queued).  ``max_dispatches`` bounds scheduler steps
        as a runaway guard.  Raises :class:`DeadlockError` if all
        remaining processes are blocked forever, and
        :class:`SimulationCrashed` (chained to the original traceback)
        if any process raises.
        """
        if self._running:
            raise SimError("run() is not reentrant")
        if self._finished:
            raise SimError("simulation already finished")
        if maybe_current_process() is not None:
            raise SimError("run() must not be called from inside a process")
        self._running = True
        try:
            while self._heap:
                if until is not None and self._heap[0][0] > until:
                    self._now = until
                    return self._now
                at, _, proc = heapq.heappop(self._heap)
                if proc.state is not ProcState.SCHEDULED:
                    # Stale heap entry (process was killed meanwhile).
                    continue
                self._now = at
                self.dispatch_count += 1
                if (
                    max_dispatches is not None
                    and self.dispatch_count > max_dispatches
                ):
                    self._teardown_all()
                    raise SimError(
                        f"exceeded max_dispatches={max_dispatches}"
                    )
                proc._resume_and_wait()
                if proc.state is ProcState.FAILED:
                    original = proc.exception
                    assert original is not None
                    self._teardown_all()
                    raise SimulationCrashed(proc.name, original) from original
            stuck = [
                f"{p.name} ({p.waiting_on or 'passive'})"
                for p in self.processes
                if p.state is ProcState.PASSIVE
            ]
            if stuck:
                self._teardown_all()
                raise DeadlockError(stuck)
            self._finished = True
            return self._now
        finally:
            self._running = False

    def _teardown_all(self) -> None:
        for proc in self.processes:
            proc._teardown()
        self._finished = True

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def results(self) -> dict[str, Any]:
        """Map process name -> return value for finished processes."""
        return {
            p.name: p.result
            for p in self.processes
            if p.state is ProcState.FINISHED
        }


# ----------------------------------------------------------------------
# convenience module-level helpers (operate on the caller's simulator)
# ----------------------------------------------------------------------

def current_sim() -> Simulator:
    """Return the simulator owning the calling process."""
    return current_process().sim


def now() -> float:
    """Virtual time as seen by the calling process."""
    return current_sim().now


def hold(dt: float) -> None:
    """Advance the calling process's virtual time by ``dt`` seconds."""
    current_sim().hold(dt)


def passivate(reason: str = "passivate") -> None:
    """Block the calling process until activated."""
    current_sim().passivate(reason)


def activate(proc: SimProcess, delay: float = 0.0) -> None:
    """Wake ``proc`` (from within a simulated process)."""
    proc.sim.activate(proc, delay)
