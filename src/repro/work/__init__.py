"""Work specification (paper section 3.1.1).

Two backends implement ``do_work``:

* :func:`repro.work.do_work` -- virtual time on the simulation kernel
  (exact, deterministic; the default for the test suite),
* :class:`repro.work.RealWorker` -- the paper's calibrated random-access
  busy loop against wall-clock time (for calibration experiments).

The package also hosts the host-side fork executor
(:mod:`repro.work.forkexec`) that fans independent sweep cells out over
``os.fork`` children -- true multicore throughput for the validation
matrix and robustness campaigns.
"""

from .forkexec import ForkOutcome, fork_available, run_forked_tasks
from .io import IO_READ_REGION, IO_WRITE_REGION, do_io
from .parallel import par_do_mpi_work, par_do_omp_work
from .real import ARRAY_ELEMENTS, Calibration, RealWorker
from .virtual import WORK_REGION, do_work

__all__ = [
    "ARRAY_ELEMENTS",
    "IO_READ_REGION",
    "IO_WRITE_REGION",
    "Calibration",
    "ForkOutcome",
    "RealWorker",
    "WORK_REGION",
    "do_io",
    "do_work",
    "fork_available",
    "par_do_mpi_work",
    "par_do_omp_work",
    "run_forked_tasks",
]
