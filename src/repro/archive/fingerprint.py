"""Fingerprints: what makes a cached analysis cell valid.

A cached cell is keyed by ``(trace digest, detector fingerprint)``.
The detector fingerprint digests everything that could change that
detector's output on a fixed trace:

* the detector class's own source code *and* the source of its
  defining module (so editing a helper next to the class invalidates
  its cells, while an edit to an unrelated detector module does not),
* the detector instance's configuration attributes,
* the :class:`~repro.analysis.AnalysisConfig` in effect,
* the global :data:`~repro.analysis.ANALYZER_VERSION` -- the manual
  escape hatch for changes in shared analyzer infrastructure.

This is deliberately *over*-eager at module granularity: a comment
edit in ``p2p.py`` recomputes the three p2p detectors' cells and
nothing else, which is exactly the "only recompute affected cells"
contract -- stale results are the one unacceptable outcome.
"""

from __future__ import annotations

import inspect
from functools import lru_cache
from typing import Optional, Sequence

from ..analysis import ANALYZER_VERSION, AnalysisConfig
from .store import canonical_json, sha256_hex


@lru_cache(maxsize=None)
def _class_source_hash(cls: type) -> str:
    """Digest of the class source + its defining module's source.

    Builtins or classes without retrievable source fall back to the
    qualified name -- fingerprints stay stable, just less sensitive.
    """
    try:
        class_src = inspect.getsource(cls)
    except (OSError, TypeError):
        class_src = cls.__qualname__
    module = inspect.getmodule(cls)
    try:
        module_src = inspect.getsource(module) if module else ""
    except (OSError, TypeError):
        module_src = ""
    return sha256_hex(class_src + "\n" + module_src)


def config_fingerprint(config: Optional[AnalysisConfig]) -> str:
    config = config or AnalysisConfig()
    return sha256_hex(
        canonical_json(
            {
                "eager_threshold": config.eager_threshold,
                "noise_floor": config.noise_floor,
            }
        )
    )


def detector_fingerprint(
    detector, config: Optional[AnalysisConfig] = None
) -> str:
    """Cache-key component for one detector under one config."""
    cls = type(detector)
    state = getattr(detector, "__dict__", None) or {}
    payload = {
        "analyzer": ANALYZER_VERSION,
        "module": cls.__module__,
        "class": cls.__qualname__,
        "source": _class_source_hash(cls),
        "state": {k: repr(v) for k, v in sorted(state.items())},
        "config": config_fingerprint(config),
    }
    return sha256_hex(canonical_json(payload))


def detector_set_fingerprint(
    detectors: Sequence, config: Optional[AnalysisConfig] = None
) -> str:
    """Order-sensitive digest of a whole battery (manifest provenance).

    Order matters because the analyzer's finding list is the
    concatenation of per-detector outputs in battery order.
    """
    return sha256_hex(
        canonical_json(
            [detector_fingerprint(d, config) for d in detectors]
        )
    )
