"""Hybrid MPI+OpenMP performance property functions (paper section 3.3).

The paper highlights that ATS's modularity allows "performance property
functions from different parallel programming paradigms in the same
program, so that performance tools for hybrid programming can be
tested" -- the Hitachi SR-8000 catalog of [Gerndt 2002].  These
functions fork OpenMP teams inside MPI ranks.
"""

from __future__ import annotations

from typing import Optional

from ...distributions import DistrDescriptor, Val2Distr, df_cyclic2
from ...distributions.functions import DistrFunc
from ...simmpi.buffers import free_mpi_buf
from ...simmpi.communicator import Communicator
from ...simmpi.patterns import mpi_commpattern_sendrecv
from ...simmpi.status import DIR_UP
from ...simomp import omp_parallel
from ...trace.api import region
from ...work import do_work, par_do_omp_work
from ..base import alloc_base_buf


def hybrid_imbalance_then_barrier(
    df: DistrFunc,
    dd: DistrDescriptor,
    r: int,
    comm: Communicator,
    num_threads: Optional[int] = None,
) -> None:
    """OpenMP thread imbalance compounding into MPI barrier imbalance.

    Every rank forks a team with distribution-determined per-thread
    work; the team join time varies per rank (rank enters the MPI
    barrier at its slowest thread's finish time), so the trace shows
    *imbalance in parallel region* inside each rank **and** *wait at
    barrier* across ranks.
    """
    me = comm.rank()
    sz = comm.size()

    def body() -> None:
        par_do_omp_work(df, dd, 1.0 + me / max(1, sz - 1))

    with region("hybrid_imbalance_then_barrier"):
        for _ in range(r):
            omp_parallel(body, num_threads=num_threads)
            comm.barrier()


def hybrid_late_sender_omp_work(
    basework: float,
    extrawork: float,
    r: int,
    comm: Communicator,
    num_threads: Optional[int] = None,
) -> None:
    """*Late sender* whose delay is produced by an OpenMP region.

    Senders (even ranks) run a well-balanced but longer parallel
    region, receivers a shorter one -- hybrid tools must attribute the
    p2p wait to the MPI level while the OpenMP level is clean.
    """
    buf = alloc_base_buf()

    with region("hybrid_late_sender_omp_work"):
        for _ in range(r):
            me = comm.rank()
            per_thread = (
                basework + extrawork if me % 2 == 0 else basework
            )
            omp_parallel(
                lambda: do_work(per_thread), num_threads=num_threads
            )
            mpi_commpattern_sendrecv(buf, DIR_UP, False, False, comm)
    free_mpi_buf(buf)


def hybrid_alternating_paradigms(
    basework: float,
    extrawork: float,
    r: int,
    comm: Communicator,
    num_threads: Optional[int] = None,
) -> None:
    """Alternate OpenMP-imbalance phases and MPI late-sender phases.

    A composite-in-one-function stress case: the tool must keep the two
    paradigms' properties apart even though they interleave in time on
    the same processes.
    """
    dd_omp = Val2Distr(low=basework, high=basework + extrawork)
    buf = alloc_base_buf()
    dd_mpi = Val2Distr(low=basework + extrawork, high=basework)

    def omp_body() -> None:
        par_do_omp_work(df_cyclic2, dd_omp, 1.0)

    with region("hybrid_alternating_paradigms"):
        for _ in range(r):
            omp_parallel(omp_body, num_threads=num_threads)
            from ...work import par_do_mpi_work

            par_do_mpi_work(df_cyclic2, dd_mpi, 1.0, comm)
            mpi_commpattern_sendrecv(buf, DIR_UP, False, False, comm)
    free_mpi_buf(buf)
