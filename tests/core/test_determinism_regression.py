"""Determinism regression: same seed => byte-identical trace dumps.

The paper's test-suite premise is that an ATS program is a
*deterministic* function of its parameters: "the same program must
exhibit the same performance property trace on every run".  These
tests guard that claim against the pooled-worker execution core --
worker threads are recycled in arbitrary OS order, which must never
leak into event ordering.
"""

from repro.core import run_all_mpi_properties, run_hybrid_composite
from repro.obs import (
    reset_metrics,
    reset_spans,
    set_metrics_enabled,
    set_spans_enabled,
)
from repro.trace import write_trace

HYBRID_MPI = ("imbalance_at_mpi_barrier", "late_broadcast")
HYBRID_OMP = ("imbalance_in_omp_pregion", "imbalance_at_omp_barrier")


def _dump(tmp_path, name, result) -> bytes:
    path = tmp_path / name
    write_trace(
        path, result.recorder.events, metadata={"program": "determinism"}
    )
    return path.read_bytes()


def test_mpi_chain_trace_bit_identical(tmp_path):
    first = _dump(
        tmp_path, "chain-a.jsonl", run_all_mpi_properties(size=8, seed=3)
    )
    second = _dump(
        tmp_path, "chain-b.jsonl", run_all_mpi_properties(size=8, seed=3)
    )
    assert first == second


def test_hybrid_composite_trace_bit_identical(tmp_path):
    def run():
        return run_hybrid_composite(
            HYBRID_MPI, HYBRID_OMP, size=4, num_threads=3, seed=7
        )

    first = _dump(tmp_path, "hybrid-a.jsonl", run())
    second = _dump(tmp_path, "hybrid-b.jsonl", run())
    assert first == second


def test_metrics_do_not_perturb_traces(tmp_path):
    # The observability layer may only *watch*: enabling the metrics
    # registry and span log must leave the per-seed trace dump
    # byte-identical (no virtual-time, RNG or event-order feedback).
    def run():
        return run_hybrid_composite(
            HYBRID_MPI, HYBRID_OMP, size=4, num_threads=3, seed=11
        )

    baseline = _dump(tmp_path, "obs-off.jsonl", run())
    prev_metrics = set_metrics_enabled(True)
    prev_spans = set_spans_enabled(True)
    reset_metrics()
    reset_spans()
    try:
        observed = _dump(tmp_path, "obs-on.jsonl", run())
    finally:
        set_metrics_enabled(prev_metrics)
        set_spans_enabled(prev_spans)
        reset_metrics()
        reset_spans()
    assert baseline == observed


def test_different_seeds_still_complete(tmp_path):
    # Sanity guard for the fixture itself: a different seed is allowed
    # to change the trace (work distributions draw from the seeded
    # stream), but the run must stay deterministic per seed.
    a1 = _dump(
        tmp_path, "s1-a.jsonl", run_all_mpi_properties(size=4, seed=1)
    )
    a2 = _dump(
        tmp_path, "s1-b.jsonl", run_all_mpi_properties(size=4, seed=1)
    )
    assert a1 == a2
