"""Kernel edge cases: run-until resumption, many processes, fairness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel import (
    SimBarrier,
    SimError,
    Simulator,
    current_process,
    hold,
    now,
)


def test_run_until_then_resume_continues_exactly():
    sim = Simulator()
    marks = []

    def body():
        for i in range(5):
            hold(1.0)
            marks.append(now())

    sim.spawn(body)
    assert sim.run(until=2.5) == 2.5
    assert marks == [1.0, 2.0]
    assert sim.run() == 5.0
    assert marks == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_run_until_multiple_windows():
    sim = Simulator()

    def body():
        for _ in range(10):
            hold(1.0)

    sim.spawn(body)
    for stop in (3.0, 6.0, 9.0):
        assert sim.run(until=stop) == stop
    assert sim.run() == 10.0


def test_run_until_exact_event_time_executes_event():
    sim = Simulator()
    marks = []

    def body():
        hold(2.0)
        marks.append(now())
        hold(2.0)
        marks.append(now())

    sim.spawn(body)
    sim.run(until=2.0)
    assert marks == [2.0]


def test_many_processes_scale():
    sim = Simulator()
    bar = SimBarrier(100)
    done = []

    def body(i):
        hold(0.001 * (i % 10))
        bar.wait()
        done.append(i)

    for i in range(100):
        sim.spawn(body, i)
    sim.run()
    assert len(done) == 100


def test_dispatch_count_monotone():
    sim = Simulator()

    def body():
        for _ in range(5):
            hold(0.1)

    sim.spawn(body)
    sim.run()
    assert sim.dispatch_count >= 6


@given(
    durations=st.lists(
        st.floats(min_value=0.0, max_value=10.0),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=40, deadline=None)
def test_final_time_is_max_process_span(durations):
    sim = Simulator()

    def body(d):
        hold(d)

    for d in durations:
        sim.spawn(body, d)
    assert sim.run() == pytest.approx(max(durations))


@given(
    steps=st.lists(
        st.floats(min_value=0.001, max_value=1.0),
        min_size=1,
        max_size=15,
    )
)
@settings(max_examples=40, deadline=None)
def test_single_process_time_is_sum_of_holds(steps):
    sim = Simulator()

    def body():
        for s in steps:
            hold(s)
        return now()

    sim.spawn(body, name="p")
    sim.run()
    assert sim.results()["p"] == pytest.approx(sum(steps))


def test_clock_never_goes_backwards():
    sim = Simulator()
    observed = []

    def body(tag):
        for i in range(5):
            hold(0.1 * ((tag + i) % 3 + 1))
            observed.append(sim.now)

    for tag in range(4):
        sim.spawn(body, tag)
    sim.run()
    assert observed == sorted(observed)
