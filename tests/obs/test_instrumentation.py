"""End-to-end instrumentation: real runs populate the registry.

These tests run small simulated programs with the observability layer
switched on and assert that every subsystem's metric families carry
plausible values -- the acceptance shape of ``ats metrics``.
"""

import pytest

from repro.analysis import analyze_run
from repro.core import get_property, run_hybrid_composite
from repro.obs import (
    reset_metrics,
    reset_spans,
    set_metrics_enabled,
    set_spans_enabled,
    span_log,
    to_json,
    to_prometheus,
)


def _sample(registry_doc, name):
    for metric in registry_doc["metrics"]:
        if metric["name"] == name:
            return metric
    raise AssertionError(f"metric {name} missing from snapshot")


@pytest.fixture
def enabled():
    set_metrics_enabled(True)
    set_spans_enabled(True)
    reset_metrics()
    reset_spans()


def test_mpi_run_populates_all_layers(enabled):
    result = get_property("late_sender").run(size=4, seed=0)
    analyze_run(result)
    doc = to_json()
    # simkernel
    assert _sample(doc, "ats_sim_dispatches_total")["samples"][0]["value"] > 0
    assert _sample(doc, "ats_sim_processes_total")["samples"][0]["value"] >= 4
    depth = _sample(doc, "ats_sim_run_queue_depth")["samples"][0]
    assert depth["count"] > 0
    # worker pool (collector-harvested)
    assert _sample(doc, "ats_workers_spawned_total")["samples"][0]["value"] > 0
    # transport
    assert _sample(doc, "ats_mpi_bytes_total")["samples"][0]["value"] > 0
    protocols = {
        s["labels"]["protocol"]: s["value"]
        for s in _sample(doc, "ats_mpi_messages_total")["samples"]
    }
    assert sum(protocols.values()) >= 6
    # trace (harvested by recorder.finish())
    kinds = {
        s["labels"]["kind"]: s["value"]
        for s in _sample(doc, "ats_trace_events_total")["samples"]
    }
    assert kinds.get("enter", 0) > 0 and kinds.get("send", 0) > 0
    interned = _sample(doc, "ats_trace_intern_entries_total")
    requests = _sample(doc, "ats_trace_intern_requests_total")
    assert 0 < interned["samples"][0]["value"] <= requests["samples"][0]["value"]
    # analysis
    assert _sample(doc, "ats_analysis_runs_total")["samples"][0]["value"] == 1
    finds = {
        s["labels"]["property"]: s["value"]
        for s in _sample(doc, "ats_analysis_findings_total")["samples"]
    }
    assert finds.get("late_sender", 0) > 0


def test_hybrid_run_populates_omp_metrics(enabled):
    run_hybrid_composite(
        ("late_broadcast",),
        ("imbalance_at_omp_barrier",),
        size=2,
        num_threads=3,
        seed=0,
    )
    doc = to_json()
    forks = _sample(doc, "ats_omp_teams_forked_total")["samples"][0]["value"]
    joins = _sample(doc, "ats_omp_teams_joined_total")["samples"][0]["value"]
    assert forks == joins > 0
    waits = _sample(doc, "ats_omp_barrier_waits_total")["samples"][0]["value"]
    assert waits >= 3  # at least one full-team barrier
    hist = _sample(doc, "ats_omp_barrier_wait_seconds")["samples"][0]
    assert hist["count"] == waits


def test_prometheus_output_is_parseable(enabled):
    get_property("late_sender").run(size=4, seed=0)
    text = to_prometheus()
    lines = [l for l in text.splitlines() if l]
    assert lines, "empty exposition"
    for line in lines:
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE "))
        else:
            # every sample line is "name{labels} value"
            name, value = line.rsplit(" ", 1)
            float(value)
            assert name[0].isalpha()


def test_analysis_spans_recorded(enabled):
    result = get_property("late_sender").run(size=4, seed=0)
    analyze_run(result)
    names = {s.name for s in span_log()}
    assert "analysis:index" in names
    assert "analysis:LateSenderDetector" in names


def test_disabled_run_records_nothing():
    set_metrics_enabled(False)
    set_spans_enabled(False)
    reset_metrics()
    reset_spans()
    result = get_property("late_sender").run(size=4, seed=0)
    analyze_run(result)
    assert to_json()["metrics"] == []
    assert len(span_log()) == 0
