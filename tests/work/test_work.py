"""Tests for the work-specification layer."""

import pytest

from repro.distributions import Val1Distr, Val2Distr, df_linear, df_same
from repro.simkernel import Simulator, SimulationCrashed, current_process
from repro.trace import Location, TraceRecorder, bind_instrumentation
from repro.work import (
    Calibration,
    RealWorker,
    do_work,
    par_do_omp_work,
)


def run_in_sim(fn):
    sim = Simulator()
    sim.spawn(fn, name="p")
    sim.run()
    return sim


def test_do_work_advances_virtual_time_exactly():
    times = []

    def body():
        do_work(0.125)
        times.append(current_process().sim.now)
        do_work(1.0)
        times.append(current_process().sim.now)

    run_in_sim(body)
    assert times == [0.125, 1.125]


def test_do_work_zero_is_allowed():
    def body():
        do_work(0.0)
        assert current_process().sim.now == 0.0

    run_in_sim(body)


def test_do_work_negative_rejected():
    def body():
        do_work(-0.5)

    with pytest.raises(SimulationCrashed) as info:
        run_in_sim(body)
    assert isinstance(info.value.original, ValueError)


def test_do_work_records_work_region():
    rec = TraceRecorder()

    def body():
        bind_instrumentation(rec, Location(0, 0))
        do_work(0.25)

    run_in_sim(body)
    kinds = [(e.kind, getattr(e, "region", None)) for e in rec.events]
    assert kinds == [("enter", "work"), ("exit", "work")]
    assert rec.events[1].time - rec.events[0].time == pytest.approx(0.25)


def test_do_work_untraced_records_nothing():
    def body():
        do_work(0.25)

    sim = run_in_sim(body)
    assert sim.now == 0.25


def test_par_do_omp_work_outside_region_is_single_participant():
    times = []

    def body():
        par_do_omp_work(df_linear, Val2Distr(0.5, 9.0), 1.0)
        times.append(current_process().sim.now)

    run_in_sim(body)
    # me=0, sz=1 -> low value
    assert times == [0.5]


def test_par_do_omp_work_scale_factor():
    times = []

    def body():
        par_do_omp_work(df_same, Val1Distr(0.5), 3.0)
        times.append(current_process().sim.now)

    run_in_sim(body)
    assert times == [1.5]


# ----------------------------------------------------------------------
# the real (wall-clock) backend, paper section 3.1.1
# ----------------------------------------------------------------------

def test_real_worker_requires_calibration():
    worker = RealWorker(seed=1, elements=1024)
    with pytest.raises(RuntimeError, match="calibrate"):
        worker.do_work(0.001)


def test_real_worker_calibration_measures_rate():
    worker = RealWorker(seed=1, elements=4096)
    cal = worker.calibrate(target_seconds=0.01)
    assert cal.iterations_per_second > 0
    assert cal.measured_iterations > 0
    assert worker.calibration is cal


def test_real_worker_do_work_runs_after_calibration():
    worker = RealWorker(seed=2, elements=4096)
    worker.calibrate(target_seconds=0.01)
    worker.do_work(0.002)  # must not raise; timing not asserted


def test_calibration_iterations_for_scales_linearly():
    cal = Calibration(
        iterations_per_second=1000.0,
        measured_seconds=1.0,
        measured_iterations=1000,
    )
    assert cal.iterations_for(2.0) == 2000
    assert cal.iterations_for(0.0) == 0
    with pytest.raises(ValueError):
        cal.iterations_for(-1.0)


def test_real_worker_rejects_tiny_arrays():
    with pytest.raises(ValueError):
        RealWorker(elements=1)
