"""The trace recorder.

One :class:`TraceRecorder` instance collects the events of one program
run, across all locations.  The runtimes (:mod:`repro.simmpi`,
:mod:`repro.simomp`, :mod:`repro.work`) call into it around every
instrumented construct; the analyzer and the timeline renderer consume
the result.

The recorder also models *intrusion*: a configurable virtual-time cost
per recorded event.  With the default of zero the measurement is
perfectly non-intrusive (the ideal the paper asks tools to approach);
benchmarks set it non-zero to study how instrumentation overhead
distorts program behaviour (paper chapter 2).
"""

from __future__ import annotations

from typing import Iterable, Optional

from .events import (
    CallPath,
    CollExit,
    Enter,
    Event,
    Exit,
    Fork,
    Join,
    Location,
    Recv,
    Send,
)


class TraceError(Exception):
    """Malformed instrumentation (unbalanced enter/exit etc.)."""


class TraceRecorder:
    """Collects events for one run and tracks per-location call paths."""

    def __init__(self, intrusion_per_event: float = 0.0):
        if intrusion_per_event < 0:
            raise ValueError("intrusion cost must be non-negative")
        self.events: list[Event] = []
        self.intrusion_per_event = intrusion_per_event
        self._stacks: dict[Location, list[str]] = {}
        # Inherited call-path prefixes: a forked OpenMP thread's call
        # path continues the master's (EXPERT's call-tree convention),
        # even though its own enter/exit events start fresh.
        self._bases: dict[Location, tuple[str, ...]] = {}
        self._msg_counter = 0
        #: registry comm_id -> tuple of global ranks, filled by the MPI
        #: runtime; the analyzer needs it to localize collective waits.
        self.comm_registry: dict[int, tuple[int, ...]] = {}
        self.enabled = True

    # ------------------------------------------------------------------
    # call-path bookkeeping
    # ------------------------------------------------------------------

    def path_of(self, loc: Location) -> CallPath:
        """Current call path of ``loc`` (innermost last)."""
        return self._bases.get(loc, ()) + tuple(self._stacks.get(loc, ()))

    def seed_base(self, loc: Location, path: CallPath) -> None:
        """Set the inherited call-path prefix of a (fresh) location."""
        self._bases[loc] = tuple(path)

    def depth_of(self, loc: Location) -> int:
        return len(self._stacks.get(loc, ()))

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def enter(self, time: float, loc: Location, region: str) -> None:
        """Record entry into ``region`` at ``loc``."""
        if not self.enabled:
            return
        stack = self._stacks.setdefault(loc, [])
        stack.append(region)
        self.events.append(Enter(time, loc, region, self.path_of(loc)))

    def exit(self, time: float, loc: Location, region: str) -> None:
        """Record exit from ``region``; must match the innermost enter."""
        if not self.enabled:
            return
        stack = self._stacks.get(loc)
        if not stack or stack[-1] != region:
            raise TraceError(
                f"unbalanced exit({region!r}) at {loc}: stack={stack}"
            )
        path = self.path_of(loc)
        stack.pop()
        self.events.append(Exit(time, loc, region, path))

    def new_msg_id(self) -> int:
        """Allocate a globally unique message id for a send/recv pair."""
        self._msg_counter += 1
        return self._msg_counter

    def send(
        self,
        time: float,
        loc: Location,
        peer: int,
        tag: int,
        comm_id: int,
        nbytes: int,
        msg_id: int,
        internal: bool = False,
    ) -> None:
        if not self.enabled:
            return
        self.events.append(
            Send(
                time,
                loc,
                peer=peer,
                tag=tag,
                comm_id=comm_id,
                nbytes=nbytes,
                msg_id=msg_id,
                path=self.path_of(loc),
                internal=internal,
            )
        )

    def recv(
        self,
        time: float,
        loc: Location,
        peer: int,
        tag: int,
        comm_id: int,
        nbytes: int,
        msg_id: int,
        post_time: float,
        internal: bool = False,
    ) -> None:
        if not self.enabled:
            return
        self.events.append(
            Recv(
                time,
                loc,
                peer=peer,
                tag=tag,
                comm_id=comm_id,
                nbytes=nbytes,
                msg_id=msg_id,
                post_time=post_time,
                path=self.path_of(loc),
                internal=internal,
            )
        )

    def coll_exit(
        self,
        time: float,
        loc: Location,
        op: str,
        comm_id: int,
        instance: int,
        root: int,
        enter_time: float,
        bytes_sent: int = 0,
        bytes_recv: int = 0,
    ) -> None:
        if not self.enabled:
            return
        self.events.append(
            CollExit(
                time,
                loc,
                op=op,
                comm_id=comm_id,
                instance=instance,
                root=root,
                enter_time=enter_time,
                bytes_sent=bytes_sent,
                bytes_recv=bytes_recv,
                path=self.path_of(loc),
            )
        )

    def fork(
        self, time: float, loc: Location, team_size: int, team_id: int
    ) -> None:
        if not self.enabled:
            return
        self.events.append(
            Fork(time, loc, team_size=team_size, team_id=team_id,
                 path=self.path_of(loc))
        )

    def join(self, time: float, loc: Location, team_id: int) -> None:
        if not self.enabled:
            return
        self.events.append(
            Join(time, loc, team_id=team_id, path=self.path_of(loc))
        )

    def register_comm(self, comm_id: int, ranks: Iterable[int]) -> None:
        """Record the global ranks that make up a communicator."""
        self.comm_registry[comm_id] = tuple(ranks)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def locations(self) -> list[Location]:
        """All locations that produced events, sorted."""
        return sorted({e.loc for e in self.events})

    def finish(self) -> None:
        """Check that all call stacks unwound (balanced instrumentation)."""
        leftovers = {
            str(loc): list(stack)
            for loc, stack in self._stacks.items()
            if stack
        }
        if leftovers:
            raise TraceError(f"unbalanced regions at end of run: {leftovers}")

    def __len__(self) -> int:
        return len(self.events)
