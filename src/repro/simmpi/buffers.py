"""MPI buffer management (paper section 3.1.3).

``MpiBuf`` is the Python analogue of the paper's ``mpi_buf_t`` (buffer
address, element count, MPI datatype); ``MpiVBuf`` extends it for the
irregular collective operations with per-rank counts derived from a
distribution function, like ``mpi_vbuf_t``.  Constructor/destructor
function pairs (``alloc_mpi_buf``/``free_mpi_buf`` etc.) are provided
with the paper's exact names so property-function code reads like the
C original.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..distributions import DistrDescriptor
from ..distributions.functions import DistrFunc
from .datatypes import Datatype
from .errors import MpiError

if TYPE_CHECKING:  # pragma: no cover
    from .communicator import Communicator


@dataclass
class MpiBuf:
    """A regular MPI communication buffer.

    Attributes mirror ``mpi_buf_t``: ``data`` (the storage), ``type``
    (MPI datatype) and ``cnt`` (element count).
    """

    type: Datatype
    cnt: int
    data: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]
    freed: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.cnt < 0:
            raise ValueError("buffer count must be non-negative")
        if self.data is None:
            self.data = np.zeros(self.cnt, dtype=self.type.np_dtype)
        elif len(self.data) != self.cnt:
            raise ValueError("buffer data length does not match count")

    @property
    def nbytes(self) -> int:
        """Message size in bytes (count times datatype size)."""
        return self.cnt * self.type.size

    def check_usable(self) -> None:
        if self.freed:
            raise MpiError("use of freed MPI buffer")

    def fill(self, value: float) -> None:
        """Convenience: set every element to ``value``."""
        self.check_usable()
        self.data[:] = value


def alloc_mpi_buf(type: Datatype, cnt: int) -> MpiBuf:
    """Allocate a regular buffer of ``cnt`` elements of ``type``."""
    return MpiBuf(type=type, cnt=cnt)


def free_mpi_buf(buf: Optional[MpiBuf]) -> None:
    """Release a buffer; safe on ``None``, detects double free."""
    if buf is None:
        return
    if buf.freed:
        raise MpiError("double free of MPI buffer")
    buf.freed = True
    buf.data = np.zeros(0, dtype=buf.type.np_dtype)
    buf.cnt = 0


@dataclass
class MpiVBuf:
    """A buffer for irregular (v-version) collective operations.

    Per-rank element counts are produced by a distribution function, as
    in the paper's ``alloc_mpi_vbuf``.  ``rootbuf``/``rootcnt``/
    ``rootdispl`` describe the concatenated root-side storage.
    """

    type: Datatype
    counts: list[int]
    displs: list[int]
    #: this rank's own chunk buffer (``counts[me]`` elements)
    buf: MpiBuf
    #: root-side concatenated buffer (total elements); allocated at every
    #: rank for simplicity -- the simulation does not charge memory.
    rootbuf: MpiBuf
    freed: bool = field(default=False, repr=False)

    @property
    def total(self) -> int:
        return int(sum(self.counts))

    def check_usable(self) -> None:
        if self.freed:
            raise MpiError("use of freed MPI v-buffer")


def alloc_mpi_vbuf(
    type: Datatype,
    df: DistrFunc,
    dd: DistrDescriptor,
    scale: float,
    comm: "Communicator",
) -> MpiVBuf:
    """Allocate an irregular buffer with distribution-derived counts.

    The count for rank ``i`` is ``max(0, round(df(i, sz, scale, dd)))``
    -- the distribution machinery of section 3.1.2 reused for data
    instead of work, exactly as the paper prescribes.
    """
    sz = comm.size()
    me = comm.rank()
    counts = [max(0, int(round(df(i, sz, scale, dd)))) for i in range(sz)]
    displs = list(np.cumsum([0] + counts[:-1]))
    own = MpiBuf(type=type, cnt=counts[me])
    root = MpiBuf(type=type, cnt=int(sum(counts)))
    return MpiVBuf(
        type=type, counts=counts, displs=displs, buf=own, rootbuf=root
    )


def free_mpi_vbuf(vbuf: Optional[MpiVBuf]) -> None:
    """Release a v-buffer; safe on ``None``, detects double free."""
    if vbuf is None:
        return
    if vbuf.freed:
        raise MpiError("double free of MPI v-buffer")
    vbuf.freed = True
    free_mpi_buf(vbuf.buf)
    free_mpi_buf(vbuf.rootbuf)
