"""Grade detectors against synthesized ground-truth manifests.

Works from a campaign result (or its JSON artifact): for every analyzer
property id, each cell is a trial -- expected properties count toward
recall (TP/FN), properties neither expected nor allowed count toward
precision (FP/TN).  Errored cells count as detecting nothing, matching
the robustness harness.  Output is deterministic: the same campaign
JSON always scores to the same bytes.

When the campaign ran the statistical detector family (or any cell
detected a statistical property id), the report additionally grades
**rule-based vs. statistical recall side by side**: per behavior class
and per severity band, an expected analyzer property counts as
statistically detected when any statistical property covering its
class fired on the same cell (see
:data:`repro.stats.SIMILARITY_COVERS`).  Statistical property ids get
confusion rows of their own, graded through the same class taxonomy
the robustness harness uses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class DetectorScore:
    """Confusion counts of one analyzer property over a campaign."""

    property: str
    tp: int
    fn: int
    fp: int
    tn: int

    @property
    def recall(self) -> Optional[float]:
        total = self.tp + self.fn
        return self.tp / total if total else None

    @property
    def precision(self) -> Optional[float]:
        total = self.tp + self.fp
        return self.tp / total if total else None

    def to_dict(self) -> dict:
        return {
            "property": self.property,
            "tp": self.tp,
            "fn": self.fn,
            "fp": self.fp,
            "tn": self.tn,
            "recall": self.recall,
            "precision": self.precision,
        }


@dataclass(frozen=True)
class BandScore:
    """Recall of expected findings within one severity band.

    ``statistical_detections`` (None unless the statistical family is
    being graded) counts band members statistically covered -- some
    statistical property covering the member's class fired on its
    cell.
    """

    band: str
    opportunities: int
    detections: int
    statistical_detections: Optional[int] = None

    @property
    def recall(self) -> Optional[float]:
        if not self.opportunities:
            return None
        return self.detections / self.opportunities

    @property
    def statistical_recall(self) -> Optional[float]:
        if self.statistical_detections is None or not self.opportunities:
            return None
        return self.statistical_detections / self.opportunities

    def to_dict(self) -> dict:
        d = {
            "band": self.band,
            "opportunities": self.opportunities,
            "detections": self.detections,
            "recall": self.recall,
        }
        if self.statistical_detections is not None:
            d["statistical_detections"] = self.statistical_detections
            d["statistical_recall"] = self.statistical_recall
        return d


@dataclass(frozen=True)
class ClassScore:
    """Rule-based vs. statistical recall over one behavior class."""

    behavior_class: str
    opportunities: int
    rule_detections: int
    statistical_detections: int

    @property
    def rule_recall(self) -> Optional[float]:
        if not self.opportunities:
            return None
        return self.rule_detections / self.opportunities

    @property
    def statistical_recall(self) -> Optional[float]:
        if not self.opportunities:
            return None
        return self.statistical_detections / self.opportunities

    def to_dict(self) -> dict:
        return {
            "class": self.behavior_class,
            "opportunities": self.opportunities,
            "rule_detections": self.rule_detections,
            "statistical_detections": self.statistical_detections,
            "rule_recall": self.rule_recall,
            "statistical_recall": self.statistical_recall,
        }


@dataclass(frozen=True)
class ScoreReport:
    """Per-detector and per-band grades of one campaign."""

    campaign: str
    cells: int
    errors: int
    detectors: Tuple[DetectorScore, ...]
    bands: Tuple[BandScore, ...]
    #: rule vs statistical recall per behavior class (empty unless
    #: the statistical family was graded)
    classes: Tuple[ClassScore, ...] = ()

    def to_json_dict(self) -> dict:
        d = {
            "format": "ats-synth-score",
            "version": 1,
            "campaign": self.campaign,
            "cells": self.cells,
            "errors": self.errors,
            "detectors": [d.to_dict() for d in self.detectors],
            "bands": [b.to_dict() for b in self.bands],
        }
        if self.classes:
            d["classes"] = [c.to_dict() for c in self.classes]
        return d

    def to_json_str(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2) + "\n"

    def format_table(self) -> str:
        def pct(rate: Optional[float]) -> str:
            return "    -" if rate is None else f"{rate:5.0%}"

        lines = []
        if self.campaign:
            lines.append(f"campaign {self.campaign}")
        lines.append(
            f"{'detector':<28}{'TP':>6}{'FN':>6}{'FP':>6}{'TN':>6}"
            f"{'recall':>9}{'prec':>7}"
        )
        for d in self.detectors:
            lines.append(
                f"{d.property:<28}{d.tp:>6}{d.fn:>6}{d.fp:>6}{d.tn:>6}"
                f"{pct(d.recall):>9}{pct(d.precision):>7}"
            )
        for b in self.bands:
            stat = (
                f"  stat {pct(b.statistical_recall)}"
                if b.statistical_detections is not None
                else ""
            )
            lines.append(
                f"band {b.band:<23}{b.detections:>6}"
                f"{b.opportunities - b.detections:>6}{'':>12}"
                f"{pct(b.recall):>9}{stat}"
            )
        for c in self.classes:
            lines.append(
                f"class {c.behavior_class:<22}"
                f"rule {pct(c.rule_recall)}  "
                f"stat {pct(c.statistical_recall)}  "
                f"({c.opportunities} opportunit"
                f"{'y' if c.opportunities == 1 else 'ies'})"
            )
        lines.append(
            f"{self.cells} scenario cell(s)"
            + (f", {self.errors} errored" if self.errors else "")
        )
        return "\n".join(lines) + "\n"


def score_cells(
    cells: List[dict],
    campaign: str = "",
    families: Optional[Sequence[str]] = None,
) -> ScoreReport:
    """Score raw cell dicts (the campaign JSON's ``cells`` list).

    ``families`` is the campaign's detector-family provenance; when it
    names ``"similarity"`` -- or, with no provenance, when any cell
    detected a statistical property id -- the statistical sections
    (class recall, per-band statistical recall, taxonomy-graded
    confusion rows for the statistical ids) are included.
    """
    from ..stats import (
        SIMILARITY_PROPERTY_IDS,
        covers,
        property_class,
        statistical_expectations,
    )

    stat_ids = set(SIMILARITY_PROPERTY_IDS)
    properties: set = set()
    for cell in cells:
        properties.update(cell["manifest"]["expected"])
        properties.update(cell["detected"])
    if families is None:
        statistical = bool(
            stat_ids & {p for cell in cells for p in cell["detected"]}
        )
    else:
        statistical = "similarity" in families
    counts: Dict[str, List[int]] = {
        p: [0, 0, 0, 0] for p in sorted(properties)
    }
    band_counts: Dict[str, List[int]] = {}
    class_counts: Dict[str, List[int]] = {}
    errors = 0
    for cell in cells:
        if cell.get("error") is not None:
            errors += 1
        manifest = cell["manifest"]
        expected = set(manifest["expected"])
        allowed = set(manifest["allowed"])
        detected = set(cell["detected"])
        stat_detected = stat_ids & detected
        stat_expected = set(statistical_expectations(expected))
        for prop, c in counts.items():
            if prop in stat_ids:
                # Graded through the class taxonomy, like the
                # robustness harness: obliged on cells whose ground
                # truth it covers, tolerated on other pathological
                # cells, a false alarm on clean ones.
                hit = prop in stat_expected
                tolerated = bool(expected) and not hit
            else:
                hit = prop in expected
                tolerated = prop in allowed
            if hit:
                if prop in detected:
                    c[0] += 1  # TP
                else:
                    c[1] += 1  # FN
            elif not tolerated:
                if prop in detected:
                    c[2] += 1  # FP
                else:
                    c[3] += 1  # TN

        def stat_hit(prop: str) -> bool:
            return any(covers(sp, prop) for sp in stat_detected)

        for prop, band in sorted(
            manifest.get("severity_bands", {}).items()
        ):
            bc = band_counts.setdefault(band, [0, 0, 0])
            bc[0] += 1
            if prop in detected:
                bc[1] += 1
            if stat_hit(prop):
                bc[2] += 1
        if statistical:
            for prop in sorted(expected):
                cls = property_class(prop)
                if not cls:
                    continue
                cc = class_counts.setdefault(cls, [0, 0, 0])
                cc[0] += 1
                if prop in detected:
                    cc[1] += 1
                if stat_hit(prop):
                    cc[2] += 1
    return ScoreReport(
        campaign=campaign,
        cells=len(cells),
        errors=errors,
        detectors=tuple(
            DetectorScore(p, c[0], c[1], c[2], c[3])
            for p, c in counts.items()
        ),
        bands=tuple(
            BandScore(
                band,
                bc[0],
                bc[1],
                statistical_detections=bc[2] if statistical else None,
            )
            for band, bc in sorted(band_counts.items())
        ),
        classes=tuple(
            ClassScore(cls, cc[0], cc[1], cc[2])
            for cls, cc in sorted(class_counts.items())
        ),
    )


def score_campaign_json(payload: dict) -> ScoreReport:
    """Score an ``ats-synth-campaign`` JSON payload."""
    if payload.get("format") != "ats-synth-campaign":
        raise ValueError(
            "not an ats-synth-campaign artifact "
            f"(format={payload.get('format')!r})"
        )
    return score_cells(
        payload.get("cells", []),
        campaign=payload.get("spec", {}).get("name", ""),
        families=payload.get("families"),
    )


def score_result(result) -> ScoreReport:
    """Score a :class:`.campaign.CampaignResult` in memory."""
    return score_cells(
        [c.to_dict() for c in result.cells],
        campaign=result.spec.name,
        families=getattr(result, "families", None),
    )
