"""Virtual-time work specification.

``do_work(secs)`` is the paper's central primitive: "specify the amount
of generic work to be executed by the individual threads or processes".
The paper's C prototype approximates wall time with a calibrated busy
loop and warns it "is not guaranteed to be stable especially under
heavy work load".  On the simulation substrate we can do strictly
better: virtual time advances by *exactly* the requested amount, so the
performance properties built on top have precisely controllable
severities.  (The calibrated real-time variant is in
:mod:`repro.work.real` for completeness.)
"""

from __future__ import annotations

from ..simkernel import current_process
from ..trace.api import current_instrumentation

#: region name used for work phases in traces
WORK_REGION = "work"


def do_work(secs: float) -> None:
    """Perform ``secs`` seconds of generic computation (virtual time).

    Must be called from inside a simulated process.  Appears in the
    trace as a ``work`` region so timelines and profiles can separate
    computation from communication/synchronization.
    """
    if secs < 0:
        raise ValueError(f"work amount must be non-negative, got {secs}")
    proc = current_process()
    rec, loc = current_instrumentation()
    if rec is not None:
        rec.enter(proc.sim.now, loc, WORK_REGION)
        if rec.intrusion_per_event:
            proc.sim.hold(rec.intrusion_per_event)
    if secs > 0:
        proc.sim.hold(secs)
    if rec is not None:
        rec.exit(proc.sim.now, loc, WORK_REGION)
        if rec.intrusion_per_event:
            proc.sim.hold(rec.intrusion_per_event)
