"""Extended MPI API: PROC_NULL, probe, exscan, reduce_scatter,
collective algorithm tuning."""

import numpy as np
import pytest

from repro.simkernel import SimulationCrashed
from repro.simmpi import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    CollectiveTuning,
    MPI_DOUBLE,
    MPI_INT,
    MPI_SUM,
    MpiError,
    alloc_mpi_buf,
    run_mpi,
)
from repro.work import do_work

FAST = dict(model_init_overhead=False)


# ----------------------------------------------------------------------
# MPI_PROC_NULL
# ----------------------------------------------------------------------

def test_proc_null_send_recv_are_noops():
    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 4)
        buf.fill(7)
        comm.send(buf, PROC_NULL)
        status = comm.recv(buf, PROC_NULL)
        assert status.source == PROC_NULL
        assert status.count == 0
        assert np.all(buf.data == 7)  # untouched

    run_mpi(main, 2, **FAST)


def test_proc_null_nonblocking_complete_immediately():
    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 1)
        sreq = comm.isend(buf, PROC_NULL)
        rreq = comm.irecv(buf, PROC_NULL)
        assert sreq.test() and rreq.test()
        comm.wait(sreq)
        comm.wait(rreq)

    run_mpi(main, 1, **FAST)


def test_proc_null_simplifies_halo_boundaries():
    """The classic use: boundary ranks shift against PROC_NULL."""

    def main(comm):
        me, sz = comm.rank(), comm.size()
        sbuf = alloc_mpi_buf(MPI_INT, 1)
        rbuf = alloc_mpi_buf(MPI_INT, 1)
        sbuf.data[0] = me
        rbuf.data[0] = -1
        up = me + 1 if me + 1 < sz else PROC_NULL
        down = me - 1 if me > 0 else PROC_NULL
        comm.sendrecv(sbuf, up, 3, rbuf, down, 3)
        if me == 0:
            assert rbuf.data[0] == -1  # nothing received from below
        else:
            assert rbuf.data[0] == me - 1

    run_mpi(main, 4, **FAST)


# ----------------------------------------------------------------------
# probe / iprobe
# ----------------------------------------------------------------------

def test_iprobe_reports_pending_message_without_consuming():
    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 3)
        if comm.rank() == 0:
            buf.fill(5)
            comm.send(buf, 1, tag=9)
        else:
            do_work(0.01)  # let the message arrive
            status = comm.iprobe(0, 9)
            assert status is not None
            assert status.source == 0 and status.tag == 9
            assert status.count == 3
            # still receivable afterwards
            comm.recv(buf, 0, 9)
            assert np.all(buf.data == 5)

    run_mpi(main, 2, **FAST)


def test_iprobe_returns_none_when_nothing_pending():
    def main(comm):
        if comm.rank() == 1:
            assert comm.iprobe(0, 1) is None
        # balanced exit: nothing sent at all

    run_mpi(main, 2, **FAST)


def test_probe_blocks_until_message_available():
    times = {}

    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 1)
        if comm.rank() == 0:
            do_work(0.05)
            comm.send(buf, 1, tag=4)
        else:
            status = comm.probe(ANY_SOURCE, ANY_TAG)
            times["probe_done"] = comm.world.sim.now
            assert status.source == 0 and status.tag == 4
            comm.recv(buf, status.source, status.tag)

    run_mpi(main, 2, **FAST)
    assert times["probe_done"] >= 0.05


def test_probe_with_selective_tag():
    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 1)
        if comm.rank() == 0:
            buf.data[0] = 1
            comm.send(buf, 1, tag=1)
            buf.data[0] = 2
            comm.send(buf, 1, tag=2)
        else:
            status = comm.probe(0, tag=2)
            assert status.tag == 2
            comm.recv(buf, 0, 2)
            assert buf.data[0] == 2
            comm.recv(buf, 0, 1)
            assert buf.data[0] == 1

    run_mpi(main, 2, **FAST)


# ----------------------------------------------------------------------
# exscan / reduce_scatter_block
# ----------------------------------------------------------------------

def test_exscan_exclusive_prefix():
    def main(comm):
        me = comm.rank()
        sb = alloc_mpi_buf(MPI_INT, 1)
        rb = alloc_mpi_buf(MPI_INT, 1)
        sb.data[0] = me + 1
        comm.exscan(sb, rb, MPI_SUM)
        expected = sum(range(1, me + 1))  # excludes own contribution
        assert rb.data[0] == expected

    run_mpi(main, 6, **FAST)


def test_reduce_scatter_block():
    def main(comm):
        me, sz = comm.rank(), comm.size()
        k = 2
        sb = alloc_mpi_buf(MPI_INT, k * sz)
        sb.data[:] = me  # every rank contributes its rank everywhere
        rb = alloc_mpi_buf(MPI_INT, k)
        comm.reduce_scatter_block(sb, rb, MPI_SUM)
        assert np.all(rb.data == sz * (sz - 1) // 2)

    run_mpi(main, 5, **FAST)


def test_reduce_scatter_block_size_validation():
    def main(comm):
        sb = alloc_mpi_buf(MPI_INT, 3)  # wrong for size 2, cnt 2
        rb = alloc_mpi_buf(MPI_INT, 2)
        comm.reduce_scatter_block(sb, rb, MPI_SUM)

    with pytest.raises(SimulationCrashed) as info:
        run_mpi(main, 2, **FAST)
    assert isinstance(info.value.original, MpiError)


# ----------------------------------------------------------------------
# collective algorithm tuning
# ----------------------------------------------------------------------

@pytest.mark.parametrize("algo", ["binomial", "linear"])
def test_bcast_correct_under_both_algorithms(algo):
    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 8)
        if comm.rank() == 2:
            buf.data[:] = np.arange(8)
        comm.bcast(buf, root=2)
        assert list(buf.data) == list(range(8))

    run_mpi(
        main, 7, collectives=CollectiveTuning(bcast=algo), **FAST
    )


@pytest.mark.parametrize("algo", ["binomial", "linear"])
def test_reduce_correct_under_both_algorithms(algo):
    def main(comm):
        sb = alloc_mpi_buf(MPI_DOUBLE, 2)
        sb.fill(comm.rank())
        rb = alloc_mpi_buf(MPI_DOUBLE, 2) if comm.rank() == 1 else None
        comm.reduce(sb, rb, MPI_SUM, root=1)
        if comm.rank() == 1:
            assert np.all(rb.data == sum(range(comm.size())))

    run_mpi(
        main, 6, collectives=CollectiveTuning(reduce=algo), **FAST
    )


@pytest.mark.parametrize("algo", ["dissemination", "linear"])
def test_barrier_synchronizes_under_both_algorithms(algo):
    exits = {}

    def main(comm):
        do_work(0.01 * (comm.rank() + 1))
        comm.barrier()
        exits[comm.rank()] = comm.world.sim.now

    run_mpi(
        main, 5, collectives=CollectiveTuning(barrier=algo), **FAST
    )
    assert all(t >= 0.05 for t in exits.values())


def test_linear_bcast_is_slower_than_binomial_for_large_groups():
    def main(comm):
        buf = alloc_mpi_buf(MPI_DOUBLE, 4096)  # rendezvous messages
        comm.bcast(buf, root=0)

    linear = run_mpi(
        main, 16, collectives=CollectiveTuning(bcast="linear"), **FAST
    )
    binomial = run_mpi(
        main, 16, collectives=CollectiveTuning(bcast="binomial"), **FAST
    )
    assert linear.final_time > binomial.final_time


def test_bad_algorithm_name_rejected():
    with pytest.raises(ValueError):
        CollectiveTuning(bcast="magic")
    with pytest.raises(ValueError):
        CollectiveTuning(barrier="tree")
