"""Isolation for observability tests.

Every test in this package gets a fresh registry and span log, and the
global enabled flags are restored afterwards so obs tests can flip them
freely without leaking into the rest of the suite.
"""

import pytest

from repro.obs import (
    metrics_enabled,
    reset_metrics,
    reset_spans,
    set_metrics_enabled,
    set_spans_enabled,
    spans_enabled,
)


@pytest.fixture(autouse=True)
def _isolated_obs():
    prev_metrics = metrics_enabled()
    prev_spans = spans_enabled()
    reset_metrics()
    reset_spans()
    yield
    set_metrics_enabled(prev_metrics)
    set_spans_enabled(prev_spans)
    reset_metrics()
    reset_spans()
