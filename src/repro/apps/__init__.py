"""Mini-applications with documented performance behaviour (chapter 4).

The paper's chapter 4 asks for "real-world-size parallel applications
... together with ... descriptions of the application's performance
behavior".  These kernels provide exactly that on the simulated
substrate, with ground-truth pathology knobs:

==================  ===========================================  =================================
application         communication pattern                        documented pathology (knob)
==================  ===========================================  =================================
:func:`jacobi`      halo sendrecv + residual allreduce           strip imbalance (``imbalance``)
:func:`master_worker`  on-demand task farm                       master bottleneck (``master_service_time``)
:func:`pipeline`    linear stage chain                           slow stage (``slow_stage``)
:func:`wavefront`   diagonal dependency sweep                    pipelined startup skew (inherent)
:func:`cg_like`     matvec halo + 2 allreduce dots per iteration  row imbalance (``row_imbalance``)
==================  ===========================================  =================================
"""

from .cg_like import CgConfig, cg_like
from .grindstone import (
    GRINDSTONE_PROGRAMS,
    GrindstoneConfig,
    big_message,
    diffuse_procedure,
    hot_procedure,
    intensive_server,
    random_barrier,
    small_messages,
)
from .jacobi import JacobiConfig, jacobi
from .master_worker import FarmConfig, master_worker
from .npb_like import EpConfig, IsConfig, ep_like, is_like
from .pipeline import PipelineConfig, pipeline
from .stencil2d import Stencil2DConfig, stencil2d
from .wavefront import WavefrontConfig, wavefront

__all__ = [
    "CgConfig",
    "FarmConfig",
    "GRINDSTONE_PROGRAMS",
    "GrindstoneConfig",
    "big_message",
    "diffuse_procedure",
    "hot_procedure",
    "intensive_server",
    "random_barrier",
    "small_messages",
    "EpConfig",
    "IsConfig",
    "JacobiConfig",
    "PipelineConfig",
    "Stencil2DConfig",
    "stencil2d",
    "WavefrontConfig",
    "cg_like",
    "ep_like",
    "is_like",
    "jacobi",
    "master_worker",
    "pipeline",
    "wavefront",
]
