"""Merging forked-child metrics back into the parent registry.

The fork-per-cell sweep executor (:mod:`repro.work.forkexec`) runs each
cell in a child process.  The child inherits a *copy* of the parent's
metrics registry at fork time, so its counts are invisible to the
parent; without a merge step, ``ats metrics`` after a parallel sweep
would silently report only parent-side numbers.

The protocol is snapshot/delta/merge:

* the child snapshots its registry right after the fork
  (:func:`registry_state`),
* just before exiting it computes what *it* added
  (:func:`state_delta` -- counters and histograms subtracted against
  the baseline, gauges carried as their final value),
* the parent replays each child's delta in completion order
  (:func:`merge_state` -- counters and histogram cells summed, gauges
  last-write-wins).

Two worker-pool metrics need special handling.  The pool's
``ats_workers_spawned_total``/``ats_workers_reused_total`` counters are
*harvested*: a collector overwrites them from the pool object's plain
attributes at every ``collect()``, so merging into the registry child
would be clobbered by the next harvest.  Their deltas are folded into
the pool object itself instead.  ``ats_workers_parked`` is a gauge
describing live parent threads, which a child's exit report says
nothing about, so it is skipped entirely.

Everything in the state dict is plain JSON (strings, numbers, lists),
so a delta travels unchanged through the fork executor's result pipe.
"""

from __future__ import annotations

from typing import Dict, Optional

from .metrics import MetricsRegistry, get_registry

__all__ = [
    "registry_state",
    "state_delta",
    "merge_state",
]

#: harvested counters folded into ``worker_pool()`` attributes instead
#: of the registry (a collector would overwrite registry merges).
_POOL_COUNTERS = {
    "ats_workers_spawned_total": "created",
    "ats_workers_reused_total": "reused",
}

#: gauges describing live parent-process state; meaningless to merge.
_SKIP_GAUGES = {"ats_workers_parked"}

State = Dict[str, dict]


def registry_state(registry: Optional[MetricsRegistry] = None) -> State:
    """JSON-safe snapshot of every family in ``registry``.

    Runs the registry's collectors first so harvested metrics (worker
    pool counters and the like) are current.
    """
    if registry is None:
        registry = get_registry()
    state: State = {}
    for family in registry.collect():
        samples = []
        for key, child in family.samples():
            if family.type == "histogram":
                counts, total_sum, total = child.snapshot()
                value = {
                    "counts": counts,
                    "sum": total_sum,
                    "count": total,
                }
            else:
                value = child.value
            samples.append([list(key), value])
        state[family.name] = {
            "help": family.help,
            "type": family.type,
            "labelnames": list(family.labelnames),
            "buckets": list(family.buckets),
            "samples": samples,
        }
    return state


def state_delta(base: State, current: State) -> State:
    """What ``current`` added on top of ``base``.

    Counters and histograms are subtracted sample-by-sample (samples
    absent from ``base`` contribute their full value); gauges carry
    their current value, implementing last-write-wins at merge time.
    Families and samples whose delta is all-zero are dropped to keep
    the fork executor's result envelope small.
    """
    delta: State = {}
    for name, fam in current.items():
        base_samples = {}
        base_fam = base.get(name)
        if base_fam is not None and base_fam["type"] == fam["type"]:
            base_samples = {tuple(k): v for k, v in base_fam["samples"]}
        out = []
        for key, value in fam["samples"]:
            prior = base_samples.get(tuple(key))
            if fam["type"] == "histogram":
                if prior is not None:
                    counts = [
                        c - p
                        for c, p in zip(value["counts"], prior["counts"])
                    ]
                    value = {
                        "counts": counts,
                        "sum": value["sum"] - prior["sum"],
                        "count": value["count"] - prior["count"],
                    }
                if value["count"] == 0 and not any(value["counts"]):
                    continue
            elif fam["type"] == "counter":
                if prior is not None:
                    value = value - prior
                if value == 0:
                    continue
            # gauges: ship the current value as-is
            out.append([key, value])
        if out:
            delta[name] = {**fam, "samples": out}
    return delta


def merge_state(
    delta: State, registry: Optional[MetricsRegistry] = None
) -> None:
    """Fold a child's delta (from :func:`state_delta`) into ``registry``.

    Counters and histogram cells are summed, gauges take the delta's
    value (callers merge children in completion order, making this
    last-write-wins).  Families unknown to the parent are declared on
    the fly, so a child that exercised a subsystem the parent never
    touched still shows up in ``ats metrics``.
    """
    if registry is None:
        registry = get_registry()
    from ..simkernel.process import worker_pool

    pool = worker_pool()
    for name, fam in delta.items():
        if name in _POOL_COUNTERS and fam["type"] == "counter":
            attr = _POOL_COUNTERS[name]
            for _key, value in fam["samples"]:
                setattr(pool, attr, getattr(pool, attr) + int(value))
            continue
        if name in _SKIP_GAUGES and fam["type"] == "gauge":
            continue
        family = registry._family(
            name,
            fam["help"],
            fam["type"],
            tuple(fam["labelnames"]),
            tuple(fam["buckets"]) if fam["type"] == "histogram" else None,
        )
        for key, value in fam["samples"]:
            key = tuple(key)
            child = family.children.get(key)
            if child is None:
                with family._lock:
                    child = family.children.get(key)
                    if child is None:
                        child = family.children[key] = (
                            family._new_child()
                        )
            if fam["type"] == "counter":
                child.value += value
            elif fam["type"] == "gauge":
                child.value = value
            else:
                counts = value["counts"]
                if len(counts) == len(child.counts):
                    with child._lock:
                        for i, c in enumerate(counts):
                            child.counts[i] += c
                        child.sum += value["sum"]
                        child.count += value["count"]
