"""Comparing analysis results.

Tool developers rerun the ATS suite after every change; what they need
is not one report but the *difference* between two: did a detector
regress (property lost / severity collapsed), did a fix introduce
spurious findings?  ``compare_analyses`` produces that structured diff
and a human-readable regression report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .model import AnalysisResult


@dataclass(frozen=True)
class PropertyDelta:
    """Severity change of one property between two analyses."""

    property: str
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def relative(self) -> float:
        if self.before == 0:
            return float("inf") if self.after > 0 else 0.0
        return self.delta / self.before

    @property
    def new_property(self) -> bool:
        """The property appeared from nothing (``relative`` is inf)."""
        return self.before == 0 and self.after > 0

    def to_dict(self) -> dict:
        """JSON-safe view: an infinite ``relative`` serializes as
        ``null`` with ``new_property`` set, so ``ats diff --json``
        stays valid JSON (``inf`` is not a JSON value)."""
        return {
            "property": self.property,
            "before": self.before,
            "after": self.after,
            "delta": self.delta,
            "relative": None if self.new_property else self.relative,
            "new_property": self.new_property,
        }


@dataclass
class ComparisonReport:
    """Structured diff between a baseline and a new analysis."""

    deltas: Dict[str, PropertyDelta] = field(default_factory=dict)
    #: properties above threshold before but not after
    lost: Tuple[str, ...] = ()
    #: properties above threshold after but not before
    gained: Tuple[str, ...] = ()
    threshold: float = 0.01

    @property
    def is_regression(self) -> bool:
        """A detected property disappeared: the change broke a detector."""
        return bool(self.lost)

    def max_abs_shift(self) -> float:
        return max(
            (abs(d.delta) for d in self.deltas.values()), default=0.0
        )

    def severity_regressions(
        self, epsilon: Optional[float] = None
    ) -> Tuple[str, ...]:
        """Properties whose severity *fell* by more than ``epsilon``.

        ``epsilon`` defaults to the report's detection threshold: a
        drop a tool's sensitivity would notice.  This is the second leg
        of the CI gate (``ats diff --gate``) next to :attr:`lost`.
        """
        if epsilon is None:
            epsilon = self.threshold
        return tuple(
            name
            for name in sorted(self.deltas)
            if self.deltas[name].delta <= -epsilon
        )

    def gate_failures(self, epsilon: Optional[float] = None) -> list[str]:
        """Human-readable reasons the regression gate should fail."""
        reasons = [
            f"property lost: {name}" for name in self.lost
        ]
        for name in self.severity_regressions(epsilon):
            d = self.deltas[name]
            reasons.append(
                f"severity regression: {name} "
                f"{d.before:.2%} -> {d.after:.2%} ({d.delta:+.2%})"
            )
        return reasons

    def to_dict(self) -> dict:
        """JSON-safe structured diff (see :meth:`PropertyDelta.to_dict`)."""
        return {
            "threshold": self.threshold,
            "lost": list(self.lost),
            "gained": list(self.gained),
            "is_regression": self.is_regression,
            "deltas": [
                self.deltas[name].to_dict()
                for name in sorted(self.deltas)
            ],
        }

    def format(self) -> str:
        lines = [
            f"analysis comparison (threshold {self.threshold:.1%}):"
        ]
        if self.lost:
            lines.append(f"  LOST   : {', '.join(self.lost)}")
        if self.gained:
            lines.append(f"  GAINED : {', '.join(self.gained)}")
        if not self.lost and not self.gained:
            lines.append("  detected property set unchanged")
        for name in sorted(
            self.deltas, key=lambda n: -abs(self.deltas[n].delta)
        ):
            d = self.deltas[name]
            if abs(d.delta) < 1e-12:
                continue
            lines.append(
                f"  {name:<30} {d.before:8.2%} -> {d.after:8.2%} "
                f"({d.delta:+.2%})"
            )
        return "\n".join(lines) + "\n"


def compare_analyses(
    before: AnalysisResult,
    after: AnalysisResult,
    threshold: float = 0.01,
) -> ComparisonReport:
    """Diff two analysis results on the property axis."""
    sev_before = before.severities_by_property()
    sev_after = after.severities_by_property()
    names = sorted(set(sev_before) | set(sev_after))
    deltas = {
        name: PropertyDelta(
            property=name,
            before=sev_before.get(name, 0.0),
            after=sev_after.get(name, 0.0),
        )
        for name in names
    }
    det_before = set(before.detected(threshold))
    det_after = set(after.detected(threshold))
    return ComparisonReport(
        deltas=deltas,
        lost=tuple(sorted(det_before - det_after)),
        gained=tuple(sorted(det_after - det_before)),
        threshold=threshold,
    )
