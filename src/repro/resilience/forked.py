"""Supervised fork-per-cell sweep execution.

:func:`run_cells_forked` is the multiprocess twin of calling
:meth:`Supervisor.run_cell` in a loop: the same cell lifecycle --
checkpoint replay, wall-clock timeout, failure classification, retry
with deterministic backoff, quarantine, journaling, metrics -- but with
cell *attempts* fanned out over ``os.fork`` children via
:mod:`repro.work.forkexec` instead of running inline.

Division of labour:

* the **child** runs the cell callable, classifies any exception with
  the same :func:`classify_failure` taxonomy the serial path uses
  (structured watchdog reports ride along), and ships a JSON envelope;
* the **parent** merges each child's obs-metrics delta, journals the
  outcome the moment the child completes (so a killed sweep resumes
  from real progress), decides retries, and assembles results in
  submission order.

Because the journal payloads are identical to the serial path's, a
sweep checkpointed under ``--workers N`` can resume serially and vice
versa; and because results are ordered by submission, the final
artifact is byte-identical to a serial run regardless of completion
order.  Timeouts are *stronger* here than in serial supervision: the
child is ``SIGKILL``\\ ed, reclaiming the CPU a stuck cell was burning,
where the serial path can only abandon the stuck thread.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Iterable, List, Optional, Tuple

from ..obs.merge import merge_state
from ..work.forkexec import run_forked_tasks
from .supervisor import (
    CellFailure,
    CellOutcome,
    Supervisor,
    classify_failure,
    failure_report_of,
)

__all__ = ["run_cells_forked"]


def _child_cell(fn: Callable[[], Any]) -> Callable[[], dict]:
    """Wrap a cell callable for in-child classification.

    Classification happens in the child, where the live exception (and
    its watchdog report) still exists; only the classified record
    crosses the pipe.
    """

    def run() -> dict:
        try:
            return {"ok": True, "cell": fn()}
        except Exception as exc:  # noqa: BLE001 - classified, shipped
            return {
                "ok": False,
                "kind": classify_failure(exc),
                "error": f"{type(exc).__name__}: {exc}",
                "report": failure_report_of(exc),
            }

    return run


def _to_outcome(
    key: str, attempt: int, out, timeout: Optional[float]
) -> CellOutcome:
    """Map one fork-executor outcome to the supervisor's vocabulary."""
    if out.status == "ok":
        env = out.payload or {}
        if env.get("ok"):
            return CellOutcome(
                key=key, status="ok", value=env.get("cell"),
                attempts=attempt,
            )
        failure = CellFailure(
            key=key,
            kind=env.get("kind", "crash"),
            error=env.get("error", "cell failed"),
            attempts=attempt,
            report=env.get("report"),
        )
    elif out.status == "timeout":
        # Same record a serial CellTimeout would have produced, so
        # failure artifacts and journals stay path-independent.
        failure = CellFailure(
            key=key,
            kind="timeout",
            error=f"CellTimeout: wall-clock timeout after {timeout:g}s",
            attempts=attempt,
        )
    else:
        failure = CellFailure(
            key=key,
            kind="crash",
            error=out.error or "child process crashed",
            attempts=attempt,
        )
    return CellOutcome(
        key=key, status="failed", failure=failure, attempts=attempt
    )


def run_cells_forked(
    cells: Iterable[Tuple[str, Callable[[], Any]]],
    workers: int,
    supervisor: Optional[Supervisor] = None,
    decode: Optional[Callable[[dict], Any]] = None,
    extras_fn: Optional[Callable[[], Any]] = None,
    on_extras: Optional[Callable[[str, Any], None]] = None,
    echo_output: bool = True,
) -> List[CellOutcome]:
    """Run ``(key, fn)`` cells in forked children; submission-order results.

    Cell callables must return JSON-serializable values (they cross a
    pipe).  With a ``supervisor``, journaled cells are replayed instead
    of re-run, fresh outcomes are journaled as each child completes,
    transient failures are retried with the supervisor's deterministic
    backoff, and persistent ones are quarantined -- all with the exact
    payloads the serial path writes.  Without one, cells run once with
    no timeout and failures simply come back as failed outcomes.

    ``extras_fn`` runs inside each child after its cell;
    ``on_extras(key, value)`` receives what it returned, in the parent,
    as each child completes (deferred archive-manifest replay uses
    this).  ``echo_output`` re-emits each child's captured stdout+stderr
    on the parent's stdout in completion order.
    """
    cells = list(cells)
    results: dict = {}
    pending: List[Tuple[str, Callable[[], Any], int]] = []
    for key, fn in cells:
        if supervisor is not None:
            cached = supervisor.replay(key, decode)
            if cached is not None:
                results[key] = cached
                continue
        pending.append((key, fn, 1))

    timeout = supervisor.timeout if supervisor is not None else None
    retries = supervisor.retries if supervisor is not None else 0
    transient = supervisor.transient if supervisor is not None else ()
    metrics = supervisor._metrics if supervisor is not None else None

    while pending:
        batch = pending
        pending = []
        retry_delay = 0.0

        def handle(index: int, out, batch=batch) -> None:
            nonlocal retry_delay
            key, fn, attempt = batch[index]
            if out is None:  # pragma: no cover - defensive
                return
            merge_state(out.metrics)
            if echo_output and out.output:
                sys.stdout.write(out.output)
            if out.extras is not None and on_extras is not None:
                on_extras(key, out.extras)
            if out.status == "timeout" and metrics is not None:
                metrics.timeouts.inc()
            outcome = _to_outcome(key, attempt, out, timeout)
            if (
                not outcome.ok
                and supervisor is not None
                and outcome.failure.kind in transient
                and attempt <= retries
            ):
                delay = supervisor.backoff_delay(key, attempt)
                if metrics is not None:
                    metrics.retries.inc()
                    metrics.backoff_seconds.inc(delay)
                supervisor._emit(
                    "cell-retry", key, attempt=attempt,
                    kind=outcome.failure.kind, delay=delay,
                )
                retry_delay = max(retry_delay, delay)
                pending.append((key, fn, attempt + 1))
                return
            if supervisor is not None:
                supervisor.finalize(outcome)
            results[key] = outcome

        if supervisor is not None:
            for key, _fn, attempt in batch:
                supervisor._emit("cell-started", key, attempt=attempt)
        run_forked_tasks(
            [_child_cell(fn) for _key, fn, _attempt in batch],
            workers=workers,
            timeout=timeout,
            extras_fn=extras_fn,
            on_outcome=handle,
        )
        if pending and retry_delay > 0.0 and supervisor is not None:
            # One consolidated pause covering the round's longest
            # backoff; per-cell delays still feed the metrics above.
            supervisor._sleep(retry_delay)

    return [results[key] for key, _fn in cells]
