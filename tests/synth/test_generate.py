"""Scenario generation: determinism, seed independence, ground truth."""

import pytest

from repro.core import get_property
from repro.simkernel import Lcg64, derive_seed
from repro.synth import (
    CampaignSpec,
    NoiseConfig,
    SynthError,
    generate_scenarios,
    mutate_scenario,
    adversarial_rng,
)
from repro.faults import FaultPlan


def _spec(**over):
    kwargs = dict(
        name="gen", strategy="grid", scenarios=20,
        sizes=(4,), threads=2, seed=5,
    )
    kwargs.update(over)
    return CampaignSpec(**kwargs)


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------

def test_same_spec_same_scenarios_and_manifests():
    a = generate_scenarios(_spec())
    b = generate_scenarios(_spec())
    assert [s.to_dict() for s in a] == [s.to_dict() for s in b]
    assert [s.manifest().to_dict() for s in a] == [
        s.manifest().to_dict() for s in b
    ]


def test_random_strategy_is_deterministic_and_seed_sensitive():
    a = generate_scenarios(_spec(strategy="random"))
    b = generate_scenarios(_spec(strategy="random"))
    c = generate_scenarios(_spec(strategy="random", seed=6))
    assert [s.to_dict() for s in a] == [s.to_dict() for s in b]
    assert [s.to_dict() for s in a] != [s.to_dict() for s in c]


# ----------------------------------------------------------------------
# seed independence (the derived-seed bugfix regression)
# ----------------------------------------------------------------------

def test_derive_seed_matches_lcg64_spawn():
    for parent in (0, 1, 7, 2**61 + 5):
        for index in (0, 1, 2, 1000):
            child = Lcg64(derive_seed(parent, index))
            spawned = Lcg64(parent).spawn(index)
            assert [child.next_u64() for _ in range(4)] == [
                spawned.next_u64() for _ in range(4)
            ]


def test_scenario_seeds_are_splitmix_derived_not_sequential():
    scenarios = generate_scenarios(_spec(scenarios=50))
    seeds = [s.seed for s in scenarios]
    assert len(set(seeds)) == len(seeds)
    # No low-entropy seed + i arithmetic: consecutive deltas vary.
    deltas = {b - a for a, b in zip(seeds, seeds[1:])}
    assert len(deltas) > 1
    assert seeds == [derive_seed(5, i) for i in range(50)]


def test_sibling_cells_produce_different_traces():
    """Regression: sibling scenarios of one campaign must not share a
    fault-injection stream -- identical noisy programs at different
    indices have to draw different perturbations."""
    from repro.faults import FaultInjector
    from repro.trace.io import events_to_jsonl

    spec = _spec(
        scenarios=2,
        properties=("imbalance_at_mpi_barrier",),
        bands=("medium",),
        placements=("all",),
        noise=NoiseConfig(
            plan=FaultPlan.default(), magnitudes=(0.7,)
        ),
    )
    a, b = generate_scenarios(spec)
    # Same sampled program, different index -> different derived seed.
    assert [d.to_dict() for d in a.doses] == [d.to_dict() for d in b.doses]
    assert a.seed != b.seed

    def trace(scenario):
        plan = spec.noise.plan.scaled(scenario.noise_magnitude)
        injector = FaultInjector.coerce(plan, scenario.seed)
        run = scenario.build_spec().run(
            size=scenario.size,
            num_threads=scenario.threads,
            seed=scenario.seed,
            faults=injector,
        )
        return events_to_jsonl(run.events)

    assert trace(a) != trace(b)


# ----------------------------------------------------------------------
# ground truth / canonicalization
# ----------------------------------------------------------------------

def test_manifests_validate_and_match_registry_truth():
    for scenario in generate_scenarios(_spec(scenarios=40)):
        manifest = scenario.manifest()
        manifest.validate()
        expected = set()
        for dose in scenario.doses:
            expected.update(get_property(dose.property).expected)
        assert set(manifest.expected) == expected
        assert not (set(manifest.expected) & set(manifest.allowed))
        for pid, region, ranks in scenario.manifest().locations:
            assert pid in manifest.expected
            assert ranks == scenario.pathological_ranks()


def test_split_placements_get_even_feasible_sizes():
    spec = _spec(scenarios=60, sizes=(2, 4), placements=("lower", "upper"))
    for scenario in generate_scenarios(spec):
        if scenario.paradigm == "mpi":
            assert scenario.size >= scenario.min_size()
            assert scenario.size % 2 == 0


def test_omp_only_mix_collapses_to_omp_paradigm():
    spec = _spec(
        properties=("imbalance_at_omp_barrier",),
        placements=("lower",),
        scenarios=2,
    )
    scenario = generate_scenarios(spec)[0]
    assert scenario.paradigm == "omp"
    assert scenario.placement == "all"
    assert scenario.min_size() == 1


def test_unknown_property_gets_difflib_suggestion():
    with pytest.raises(SynthError, match="late_sender"):
        generate_scenarios(_spec(properties=("late_snder",)))


def test_unknown_skeleton_rejected():
    with pytest.raises(SynthError, match="skeleton"):
        generate_scenarios(_spec(skeletons=("mapreduce",)))


def test_grid_covers_property_pool_before_repeating():
    spec = _spec(scenarios=10, bands=("low",), placements=("all",))
    scenarios = generate_scenarios(spec)
    first_props = [s.doses[0].property for s in scenarios]
    assert len(set(first_props)) == len(first_props)


def test_mutation_is_deterministic_and_moves_one_axis():
    spec = _spec(
        strategy="adversarial",
        sizes=(4, 8),
        noise=NoiseConfig(
            plan=FaultPlan.default(), magnitudes=(0.0, 0.5)
        ),
    )
    base = generate_scenarios(spec)[0]
    m1 = mutate_scenario(spec, base, 100, adversarial_rng(spec, 0))
    m2 = mutate_scenario(spec, base, 100, adversarial_rng(spec, 0))
    assert m1 == m2
    assert m1.index == 100
    assert m1.seed == derive_seed(spec.seed, 100)
    # The mix is preserved; only sampled axes move.
    assert [d.property for d in m1.doses] == [
        d.property for d in base.doses
    ]
