"""Integration tests: every property function round-trips through the
analyzer and produces exactly its intended property.

This is the heart of the reproduction: the paper's positive and
negative correctness requirements, checked property by property.
"""

import pytest

from repro.analysis import analyze_run
from repro.core import get_property, list_properties

DETECTION_THRESHOLD = 0.01

POSITIVE_SPECS = [s.name for s in list_properties(negative=False)]
NEGATIVE_SPECS = [s.name for s in list_properties(negative=True)]


def run_and_detect(name, **kwargs):
    spec = get_property(name)
    result = spec.run(**kwargs)
    analysis = analyze_run(result)
    return spec, analysis


@pytest.mark.parametrize("name", POSITIVE_SPECS)
def test_positive_property_detected(name):
    """Each positive program exhibits all of its intended properties."""
    spec, analysis = run_and_detect(name, size=8, num_threads=4)
    detected = analysis.detected(DETECTION_THRESHOLD)
    for expected in spec.expected:
        assert expected in detected, (
            f"{name}: {expected} not detected; got {detected}"
        )


@pytest.mark.parametrize("name", POSITIVE_SPECS)
def test_positive_property_no_spurious_findings(name):
    """Positive programs exhibit *only* intended (or allowed) properties."""
    spec, analysis = run_and_detect(name, size=8, num_threads=4)
    detected = set(analysis.detected(DETECTION_THRESHOLD))
    tolerated = set(spec.expected) | set(spec.allowed) | {
        "mpi_init_overhead",
    }
    spurious = detected - tolerated
    assert not spurious, f"{name}: spurious properties {spurious}"


@pytest.mark.parametrize("name", NEGATIVE_SPECS)
def test_negative_program_triggers_nothing(name):
    """Well-tuned programs must produce no property above threshold."""
    spec, analysis = run_and_detect(name, size=8, num_threads=4)
    detected = analysis.detected(DETECTION_THRESHOLD)
    assert detected == (), f"{name}: false positives {detected}"


@pytest.mark.parametrize(
    "name", [s.name for s in list_properties(paradigm="mpi")]
)
@pytest.mark.parametrize("size", [2, 5, 8])
def test_mpi_properties_work_at_any_size(name, size):
    """Paper: 'no restrictions on the context where the functions are
    called (e.g., the number of processors)'."""
    spec = get_property(name)
    result = spec.run(size=size)  # must not deadlock or crash
    assert result.final_time > 0


@pytest.mark.parametrize(
    "name", [s.name for s in list_properties(paradigm="omp")]
)
@pytest.mark.parametrize("num_threads", [1, 2, 7])
def test_omp_properties_work_at_any_team_size(name, num_threads):
    spec = get_property(name)
    result = spec.run(num_threads=num_threads)
    assert result.final_time > 0


def test_late_sender_severity_scales_with_extrawork():
    spec = get_property("late_sender")
    severities = []
    for factor in (1.0, 2.0, 4.0):
        result = spec.run(size=4, params=spec.scaled_params(factor))
        severities.append(
            analyze_run(result).severity(property="late_sender")
        )
    assert severities[0] < severities[1] < severities[2]


def test_imbalance_severity_scales_with_distribution_spread():
    spec = get_property("imbalance_at_mpi_barrier")
    from repro.core import DistParam

    severities = []
    for high in (0.01, 0.03, 0.09):
        result = spec.run(
            size=4, params={"dist": DistParam("block2", (0.005, high))}
        )
        severities.append(
            analyze_run(result).severity(property="wait_at_barrier")
        )
    assert severities[0] < severities[1] < severities[2]


def test_late_broadcast_located_at_nonroot_ranks():
    spec = get_property("late_broadcast")
    result = spec.run(size=8, params={"root": 3})
    analysis = analyze_run(result)
    locs = analysis.locations_of("late_broadcast")
    ranks = {loc.rank for loc in locs}
    assert 3 not in ranks
    assert ranks == set(range(8)) - {3}


def test_early_reduce_located_at_root_only():
    spec = get_property("early_reduce")
    result = spec.run(size=8, params={"root": 2})
    analysis = analyze_run(result)
    locs = analysis.locations_of("early_reduce")
    assert {loc.rank for loc in locs} == {2}


def test_late_sender_located_at_receivers():
    spec = get_property("late_sender")
    result = spec.run(size=8)
    analysis = analyze_run(result)
    ranks = {loc.rank for loc in analysis.locations_of("late_sender")}
    assert ranks == {1, 3, 5, 7}


def test_late_receiver_located_at_senders():
    spec = get_property("late_receiver")
    result = spec.run(size=8)
    analysis = analyze_run(result)
    ranks = {loc.rank for loc in analysis.locations_of("late_receiver")}
    assert ranks == {0, 2, 4, 6}


def test_property_located_at_its_own_callpath():
    """Figure 3.5: the property is found at the right call path."""
    result = get_property("late_broadcast").run(size=4)
    analysis = analyze_run(result)
    callpaths = analysis.callpaths_of("late_broadcast")
    (path, severity), *_ = list(callpaths.items())
    assert path[-1] == "MPI_Bcast"
    assert "late_broadcast" in path


def test_omp_property_callpath_contains_construct():
    result = get_property("imbalance_at_omp_barrier").run(num_threads=4)
    analysis = analyze_run(result)
    callpaths = analysis.callpaths_of("imbalance_at_omp_barrier")
    (path, _), *_ = list(callpaths.items())
    assert path[-1] == "omp_barrier"
    assert "imbalance_at_omp_barrier" in path


def test_wrong_order_wait_is_subset_of_late_sender():
    result = get_property("messages_in_wrong_order").run(size=4)
    analysis = analyze_run(result)
    ls = analysis.severity(property="late_sender")
    wo = analysis.severity(property="messages_in_wrong_order")
    assert 0 < wo <= ls + 1e-12


def test_determinism_of_property_runs():
    spec = get_property("imbalance_at_mpi_barrier")
    r1 = spec.run(size=4, seed=5)
    r2 = spec.run(size=4, seed=5)
    assert r1.final_time == r2.final_time
    a1, a2 = analyze_run(r1), analyze_run(r2)
    assert a1.severities_by_property() == a2.severities_by_property()
