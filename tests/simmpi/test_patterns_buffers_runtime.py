"""Patterns (paper 3.1.4), buffers (3.1.3) and runtime behaviour."""

import numpy as np
import pytest

from repro.distributions import Val1Distr, Val2Distr, df_linear, df_same
from repro.simmpi import (
    DIR_DOWN,
    DIR_UP,
    MPI_DOUBLE,
    MPI_INT,
    MpiError,
    TransportParams,
    alloc_mpi_buf,
    alloc_mpi_vbuf,
    free_mpi_buf,
    free_mpi_vbuf,
    mpi_commpattern_sendrecv,
    mpi_commpattern_shift,
    run_mpi,
)
from repro.trace import Enter, Recv, Send
from repro.work import do_work

FAST = dict(model_init_overhead=False)


# ----------------------------------------------------------------------
# buffers
# ----------------------------------------------------------------------

def test_alloc_mpi_buf_properties():
    buf = alloc_mpi_buf(MPI_DOUBLE, 10)
    assert buf.cnt == 10
    assert buf.nbytes == 80
    assert buf.data.dtype == np.float64
    assert np.all(buf.data == 0)


def test_free_mpi_buf_double_free_detected():
    buf = alloc_mpi_buf(MPI_INT, 4)
    free_mpi_buf(buf)
    with pytest.raises(MpiError, match="double free"):
        free_mpi_buf(buf)
    free_mpi_buf(None)  # None is a safe no-op


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        alloc_mpi_buf(MPI_INT, -1)


def test_vbuf_counts_follow_distribution():
    captured = {}

    def main(comm):
        dd = Val1Distr(5.0)
        vbuf = alloc_mpi_vbuf(MPI_INT, df_same, dd, 2.0, comm)
        captured[comm.rank()] = (
            list(vbuf.counts),
            list(vbuf.displs),
            vbuf.total,
        )
        free_mpi_vbuf(vbuf)

    run_mpi(main, 3, **FAST)
    counts, displs, total = captured[0]
    assert counts == [10, 10, 10]
    assert displs == [0, 10, 20]
    assert total == 30


def test_vbuf_double_free_detected():
    def main(comm):
        vbuf = alloc_mpi_vbuf(MPI_INT, df_same, Val1Distr(1.0), 1.0, comm)
        free_mpi_vbuf(vbuf)
        try:
            free_mpi_vbuf(vbuf)
        except MpiError:
            return "caught"
        return "missed"

    result = run_mpi(main, 1, **FAST)
    assert result.results == ["caught"]


# ----------------------------------------------------------------------
# communication patterns
# ----------------------------------------------------------------------

@pytest.mark.parametrize("use_isend", [False, True])
@pytest.mark.parametrize("use_irecv", [False, True])
def test_sendrecv_pattern_up(use_isend, use_irecv):
    received = {}

    def main(comm):
        me = comm.rank()
        buf = alloc_mpi_buf(MPI_INT, 1)
        buf.data[0] = me
        mpi_commpattern_sendrecv(
            buf, DIR_UP, use_isend, use_irecv, comm
        )
        received[me] = int(buf.data[0])

    run_mpi(main, 6, **FAST)
    # Odd ranks received from their even lower neighbour.
    assert received[1] == 0 and received[3] == 2 and received[5] == 4
    # Even ranks keep their own value (they sent).
    assert received[0] == 0 and received[2] == 2


def test_sendrecv_pattern_down_swaps_roles():
    received = {}

    def main(comm):
        me = comm.rank()
        buf = alloc_mpi_buf(MPI_INT, 1)
        buf.data[0] = me
        mpi_commpattern_sendrecv(buf, DIR_DOWN, False, False, comm)
        received[me] = int(buf.data[0])

    run_mpi(main, 4, **FAST)
    assert received[0] == 1 and received[2] == 3


def test_sendrecv_pattern_odd_size_ignores_last():
    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 1)
        mpi_commpattern_sendrecv(buf, DIR_UP, False, False, comm)
        return comm.rank()

    result = run_mpi(main, 5, **FAST)  # must not deadlock
    assert result.results == [0, 1, 2, 3, 4]


def test_sendrecv_pattern_single_process_is_noop():
    def main(comm):
        mpi_commpattern_sendrecv(
            alloc_mpi_buf(MPI_INT, 1), DIR_UP, False, False, comm
        )

    run_mpi(main, 1, **FAST)


@pytest.mark.parametrize("direction", [DIR_UP, DIR_DOWN])
def test_shift_pattern_rotates_values(direction):
    received = {}

    def main(comm):
        me, sz = comm.rank(), comm.size()
        sbuf = alloc_mpi_buf(MPI_INT, 2)
        rbuf = alloc_mpi_buf(MPI_INT, 2)
        sbuf.fill(me)
        mpi_commpattern_shift(sbuf, rbuf, direction, False, False, comm)
        received[me] = int(rbuf.data[0])

    run_mpi(main, 5, **FAST)
    for me in range(5):
        src = (me - 1) % 5 if direction == DIR_UP else (me + 1) % 5
        assert received[me] == src


def test_shift_pattern_large_messages_no_deadlock():
    def main(comm):
        sbuf = alloc_mpi_buf(MPI_DOUBLE, 65536)  # rendezvous for sure
        rbuf = alloc_mpi_buf(MPI_DOUBLE, 65536)
        mpi_commpattern_shift(sbuf, rbuf, DIR_UP, False, False, comm)

    run_mpi(main, 4, **FAST)


def test_pattern_rejects_bad_direction():
    def main(comm):
        mpi_commpattern_shift(
            alloc_mpi_buf(MPI_INT, 1),
            alloc_mpi_buf(MPI_INT, 1),
            "sideways",
            False,
            False,
            comm,
        )

    from repro.simkernel import SimulationCrashed

    with pytest.raises(SimulationCrashed):
        run_mpi(main, 2, **FAST)


# ----------------------------------------------------------------------
# runtime / tracing integration
# ----------------------------------------------------------------------

def test_run_results_collected_per_rank():
    def main(comm):
        return comm.rank() * 11

    result = run_mpi(main, 4, **FAST)
    assert result.results == [0, 11, 22, 33]


def test_init_finalize_regions_present_with_overhead_model():
    def main(comm):
        pass

    result = run_mpi(main, 4, model_init_overhead=True)
    regions = {
        e.region for e in result.events if isinstance(e, Enter)
    }
    assert "MPI_Init" in regions and "MPI_Finalize" in regions
    assert result.final_time > 0


def test_trace_contains_matched_send_recv_pairs():
    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 4)
        if comm.rank() == 0:
            comm.send(buf, 1, tag=2)
        elif comm.rank() == 1:
            comm.recv(buf, 0, 2)

    result = run_mpi(main, 2, **FAST)
    sends = [e for e in result.events
             if isinstance(e, Send) and not e.internal]
    recvs = [e for e in result.events
             if isinstance(e, Recv) and not e.internal]
    assert len(sends) == 1 and len(recvs) == 1
    assert sends[0].msg_id == recvs[0].msg_id
    assert sends[0].peer == 1 and recvs[0].peer == 0
    assert recvs[0].post_time <= recvs[0].time


def test_trace_call_paths_nest_user_regions():
    from repro.trace import region

    def main(comm):
        with region("application_phase"):
            buf = alloc_mpi_buf(MPI_INT, 1)
            if comm.rank() == 0:
                comm.send(buf, 1)
            elif comm.rank() == 1:
                comm.recv(buf, 0)

    result = run_mpi(main, 2, **FAST)
    send = next(e for e in result.events
                if isinstance(e, Send) and not e.internal)
    assert send.path[0] == "application_phase"


def test_trace_disabled_run_has_no_events():
    def main(comm):
        comm.barrier()

    result = run_mpi(main, 4, trace=False, **FAST)
    assert result.events == []
    assert result.recorder is None


def test_intrusion_distorts_timing():
    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 1)
        for _ in range(10):
            comm.barrier()

    clean = run_mpi(main, 4, **FAST)
    dirty = run_mpi(main, 4, intrusion=1e-4, **FAST)
    assert dirty.final_time > clean.final_time


def test_determinism_same_seed_same_trace():
    def main(comm):
        do_work(0.001 * (comm.rank() + 1))
        comm.barrier()

    r1 = run_mpi(main, 4, seed=3)
    r2 = run_mpi(main, 4, seed=3)
    assert r1.final_time == r2.final_time
    assert [e.to_dict() for e in r1.events] == [
        e.to_dict() for e in r2.events
    ]


def test_different_seed_changes_init_jitter():
    def main(comm):
        comm.barrier()

    r1 = run_mpi(main, 4, seed=1)
    r2 = run_mpi(main, 4, seed=2)
    assert r1.final_time != r2.final_time


def test_world_size_validation():
    with pytest.raises(ValueError):
        run_mpi(lambda comm: None, 0)


def test_timeline_and_profile_accessors():
    def main(comm):
        do_work(0.01)
        comm.barrier()

    result = run_mpi(main, 2, **FAST)
    text = result.timeline(width=40, title="demo")
    assert "demo" in text
    prof = result.profile()
    assert prof.region_total("work") == pytest.approx(0.02)
