"""Parallel sweeps must be byte-identical to the serial path.

The fork-per-cell executor (``workers > 1``) changes *when* cells run,
never *what* they produce: robustness JSON and matrix rows must match
the serial artifacts byte for byte at any worker count, supervised or
not, and checkpoint journals written by either path must resume under
the other.
"""

import json

import pytest

from repro.archive import Archive
from repro.core import get_property
from repro.resilience import Supervisor
from repro.validation import run_robustness, run_validation_matrix
from repro.work.forkexec import fork_available

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="fork executor needs POSIX"
)

SPECS = ("imbalance_at_mpi_barrier", "balanced_mpi_barrier")
MAGNITUDES = (0.0, 0.7)
SEEDS = (0, 1)


def _specs():
    return [get_property(name) for name in SPECS]


def _robustness(workers, supervisor=None, archive=None):
    return run_robustness(
        specs=_specs(),
        magnitudes=MAGNITUDES,
        seeds=SEEDS,
        size=6,
        num_threads=2,
        supervisor=supervisor,
        archive=archive,
        workers=workers,
    )


@pytest.mark.parametrize("workers", [2, 3])
def test_robustness_json_byte_identical(workers):
    serial = _robustness(workers=1).to_json_str()
    parallel = _robustness(workers=workers).to_json_str()
    assert parallel == serial


def test_matrix_rows_identical_across_workers():
    serial = run_validation_matrix(
        specs=_specs(), size=6, num_threads=2, workers=1
    )
    parallel = run_validation_matrix(
        specs=_specs(), size=6, num_threads=2, workers=3
    )
    assert [r.to_dict() for r in parallel.rows] == [
        r.to_dict() for r in serial.rows
    ]


def _journal_payloads(path):
    entries = {}
    for line in path.read_text().splitlines()[1:]:
        record = json.loads(line)
        entries[record["key"]] = record["payload"]
    return entries


def _supervised_campaign(root, workers):
    """Checkpointed, archived robustness sweep; returns its artifacts."""
    checkpoint = root / "sweep.ckpt"
    sup = Supervisor(checkpoint=checkpoint)
    archive = Archive(root / "archive")
    result = _robustness(workers=workers, supervisor=sup, archive=archive)
    sup.close()
    return (
        result.to_json_str(),
        _journal_payloads(checkpoint),
        archive.store.load_manifest(),
    )


def test_supervised_archived_campaign_parity(tmp_path):
    serial = _supervised_campaign(tmp_path / "serial", workers=1)
    forked = _supervised_campaign(tmp_path / "forked", workers=2)
    assert forked[0] == serial[0]  # robustness JSON
    assert forked[1] == serial[1]  # checkpoint journal payloads
    assert forked[2] == serial[2]  # archive manifest records


@pytest.mark.parametrize(
    "first_workers,resume_workers", [(1, 2), (2, 1)]
)
def test_checkpoints_resume_across_executors(
    tmp_path, first_workers, resume_workers
):
    """A journal written by one executor resumes under the other."""
    checkpoint = tmp_path / "cross.ckpt"
    sup = Supervisor(checkpoint=checkpoint)
    first = _robustness(workers=first_workers, supervisor=sup)
    sup.close()

    sup2 = Supervisor(checkpoint=checkpoint)
    resumed = _robustness(workers=resume_workers, supervisor=sup2)
    sup2.close()
    assert resumed.to_json_str() == first.to_json_str()
