"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.simkernel import (
    DeadlockError,
    NotInProcessError,
    ProcState,
    SimError,
    SimulationCrashed,
    Simulator,
    current_process,
    hold,
    now,
    passivate,
)


def test_empty_simulation_runs_to_zero():
    sim = Simulator()
    assert sim.run() == 0.0


def test_single_process_holds_advance_clock():
    sim = Simulator()
    seen = []

    def body():
        seen.append(now())
        hold(1.5)
        seen.append(now())
        hold(0.5)
        seen.append(now())

    sim.spawn(body)
    end = sim.run()
    assert seen == [0.0, 1.5, 2.0]
    assert end == 2.0


def test_spawn_delay_offsets_start_time():
    sim = Simulator()
    starts = {}

    def body(tag):
        starts[tag] = now()

    sim.spawn(body, "a")
    sim.spawn(body, "b", delay=3.0)
    sim.run()
    assert starts == {"a": 0.0, "b": 3.0}


def test_processes_interleave_in_time_order():
    sim = Simulator()
    order = []

    def body(tag, dt):
        for _ in range(3):
            hold(dt)
            order.append((tag, now()))

    sim.spawn(body, "slow", 2.0)
    sim.spawn(body, "fast", 1.0)
    sim.run()
    assert order == [
        ("fast", 1.0),
        ("slow", 2.0),
        ("fast", 2.0),
        ("fast", 3.0),
        ("slow", 4.0),
        ("slow", 6.0),
    ]


def test_simultaneous_events_run_in_spawn_order():
    sim = Simulator()
    order = []

    def body(tag):
        hold(1.0)
        order.append(tag)

    for tag in ("x", "y", "z"):
        sim.spawn(body, tag)
    sim.run()
    assert order == ["x", "y", "z"]


def test_results_collects_return_values():
    sim = Simulator()
    sim.spawn(lambda: 41 + 1, name="answer")
    sim.run()
    assert sim.results() == {"answer": 42}


def test_process_exception_propagates_as_simulation_crashed():
    sim = Simulator()

    def bad():
        hold(1.0)
        raise ValueError("boom")

    sim.spawn(bad, name="bad")
    sim.spawn(lambda: passivate(), name="waiter")
    with pytest.raises(SimulationCrashed) as info:
        sim.run()
    assert isinstance(info.value.original, ValueError)
    assert info.value.process_name == "bad"


def test_crash_tears_down_other_processes():
    sim = Simulator()

    def bad():
        raise RuntimeError("die")

    def waiter():
        passivate()

    sim.spawn(bad)
    proc = sim.spawn(waiter)
    with pytest.raises(SimulationCrashed):
        sim.run()
    assert proc.state in (ProcState.KILLED,)


def test_deadlock_detected_and_reported():
    sim = Simulator()

    def stuck():
        passivate("waiting for godot")

    sim.spawn(stuck, name="vladimir")
    sim.spawn(stuck, name="estragon")
    with pytest.raises(DeadlockError) as info:
        sim.run()
    msg = str(info.value)
    assert "vladimir" in msg and "estragon" in msg
    assert "godot" in msg


def test_activate_wakes_passive_process():
    sim = Simulator()
    log = []

    def sleeper():
        passivate()
        log.append(("woke", now()))

    def waker(target):
        hold(5.0)
        sim.activate(target)
        log.append(("waker done", now()))

    target = sim.spawn(sleeper)
    sim.spawn(waker, target)
    sim.run()
    assert ("woke", 5.0) in log


def test_activate_dead_process_raises():
    sim = Simulator()
    done = sim.spawn(lambda: None, name="done")

    def late():
        hold(1.0)
        sim.activate(done)

    sim.spawn(late)
    with pytest.raises(SimulationCrashed) as info:
        sim.run()
    assert isinstance(info.value.original, SimError)


def test_negative_hold_rejected():
    sim = Simulator()

    def body():
        hold(-1.0)

    sim.spawn(body)
    with pytest.raises(SimulationCrashed) as info:
        sim.run()
    assert isinstance(info.value.original, ValueError)


def test_hold_outside_process_rejected():
    sim = Simulator()
    with pytest.raises(NotInProcessError):
        sim.hold(1.0)
    with pytest.raises(NotInProcessError):
        current_process()


def test_run_until_stops_clock_early():
    sim = Simulator()

    def body():
        for _ in range(10):
            hold(1.0)

    sim.spawn(body)
    assert sim.run(until=3.5) == 3.5
    assert sim.now == 3.5


def test_max_dispatches_guards_runaway():
    sim = Simulator()

    def spin():
        while True:
            hold(1.0)

    sim.spawn(spin)
    with pytest.raises(SimError):
        sim.run(max_dispatches=50)


def test_nested_spawn_from_running_process():
    sim = Simulator()
    log = []

    def child(tag):
        hold(1.0)
        log.append((tag, now()))

    def parent():
        hold(2.0)
        sim.spawn(child, "kid")
        hold(5.0)
        log.append(("parent", now()))

    sim.spawn(parent)
    sim.run()
    assert log == [("kid", 3.0), ("parent", 7.0)]


def test_cannot_run_twice():
    sim = Simulator()
    sim.run()
    with pytest.raises(SimError):
        sim.run()


def test_cannot_spawn_after_finish():
    sim = Simulator()
    sim.run()
    with pytest.raises(SimError):
        sim.spawn(lambda: None)


def test_determinism_same_program_same_schedule():
    def trace_run():
        sim = Simulator(seed=7)
        log = []

        def body(tag, dt):
            for i in range(4):
                hold(dt * (i + 1))
                log.append((tag, now()))

        sim.spawn(body, "a", 0.3)
        sim.spawn(body, "b", 0.5)
        sim.spawn(body, "c", 0.3)
        sim.run()
        return log

    assert trace_run() == trace_run()


def test_process_context_dict_is_per_process():
    sim = Simulator()
    seen = {}

    def body(tag):
        current_process().context["tag"] = tag
        hold(1.0)
        seen[tag] = current_process().context["tag"]

    sim.spawn(body, "a")
    sim.spawn(body, "b")
    sim.run()
    assert seen == {"a": "a", "b": "b"}
