"""The ``ats`` command-line interface.

Subcommands::

    ats list                         list registered property functions
    ats run <property> [...]         run one property function
    ats chain [...]                  run the figure-3.3 all-MPI chain
    ats split [...]                  run the figure-3.4 split program
    ats generate <outdir>            emit standalone test programs
    ats analyze <trace.jsonl>        analyze a persisted trace
    ats matrix [...]                 run the validation matrix
    ats suites                       print the chapter-2/4 catalog
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import analyze_events, analyze_run, format_expert_report
from .core import (
    get_property,
    list_properties,
    run_all_mpi_properties,
    run_split_program,
    write_generated_programs,
)
from .trace import read_trace, write_trace
from .validation import format_catalog, run_validation_matrix


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--size", type=int, default=8,
                        help="simulated MPI ranks (default 8)")
    parser.add_argument("--threads", type=int, default=4,
                        help="OpenMP threads per process (default 4)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeline", action="store_true",
                        help="print an ASCII timeline")
    parser.add_argument("--tree", action="store_true",
                        help="print the property hierarchy tree")
    parser.add_argument("--no-analyze", action="store_true",
                        help="skip the automatic analysis report")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write the event trace to FILE")


def _report(result, args) -> None:
    print(
        f"finished in {result.final_time:.6f} simulated seconds "
        f"({len(result.events)} events)"
    )
    if args.timeline:
        print(result.timeline(width=100))
    if args.trace_out:
        write_trace(args.trace_out, result.events)
        print(f"trace written to {args.trace_out}")
    if not args.no_analyze:
        analysis = analyze_run(result)
        print(format_expert_report(analysis))
        if args.tree:
            from .analysis import format_property_tree

            print(format_property_tree(analysis, threshold=0.001))


def cmd_list(args: argparse.Namespace) -> int:
    for spec in list_properties(
        paradigm=args.paradigm,
        negative=None if args.all else False,
    ):
        kind = "negative" if spec.negative else "positive"
        print(
            f"{spec.name:<34} [{spec.paradigm:>6}/{kind}] "
            f"{spec.description}"
        )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    spec = get_property(args.property)
    result = spec.run(
        size=args.size, num_threads=args.threads, seed=args.seed
    )
    _report(result, args)
    return 0


def cmd_chain(args: argparse.Namespace) -> int:
    result = run_all_mpi_properties(size=args.size, seed=args.seed)
    _report(result, args)
    return 0


def cmd_split(args: argparse.Namespace) -> int:
    result = run_split_program(
        lower=args.lower.split(","),
        upper=args.upper.split(","),
        size=args.size,
        seed=args.seed,
    )
    _report(result, args)
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    paths = write_generated_programs(args.outdir, paradigm=args.paradigm)
    for path in paths:
        print(path)
    print(f"{len(paths)} programs generated in {args.outdir}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    events, metadata = read_trace(args.trace)
    result = analyze_events(events)
    if metadata:
        print(f"trace metadata: {metadata}")
    print(format_expert_report(result, threshold=args.threshold))
    return 0


def cmd_matrix(args: argparse.Namespace) -> int:
    matrix = run_validation_matrix(
        size=args.size, num_threads=args.threads, seed=args.seed
    )
    print(matrix.format_table())
    return 0 if matrix.all_passed else 1


def cmd_suites(args: argparse.Namespace) -> int:
    print(format_catalog())
    return 0


def cmd_certify(args: argparse.Namespace) -> int:
    from .validation import certify_tool

    cert = certify_tool(
        size=args.size, num_threads=args.threads, seed=args.seed
    )
    print(cert.format())
    return 0 if cert.certified else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    from .validation import run_sweep

    factors = [float(f) for f in args.factors.split(",")]
    sizes = [int(s) for s in args.sizes.split(",")]
    result = run_sweep(
        args.property,
        severity_factors=factors,
        sizes=sizes,
        num_threads=args.threads,
        seed=args.seed,
    )
    print(result.to_csv())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ats",
        description="APART Test Suite for automatic performance "
        "analysis tools (IPPS 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list property functions")
    p.add_argument("--paradigm", choices=("mpi", "omp", "hybrid"),
                   default=None)
    p.add_argument("--all", action="store_true",
                   help="include negative test programs")
    p.set_defaults(fn=cmd_list)

    p = sub.add_parser("run", help="run one property function")
    p.add_argument("property")
    _add_run_options(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("chain", help="run all MPI properties (fig 3.3)")
    _add_run_options(p)
    p.set_defaults(fn=cmd_chain)

    p = sub.add_parser("split", help="split-communicator run (fig 3.4)")
    p.add_argument("--lower", default="imbalance_at_mpi_barrier",
                   help="comma-separated property list for lower half")
    p.add_argument("--upper", default="late_broadcast",
                   help="comma-separated property list for upper half")
    _add_run_options(p)
    p.set_defaults(fn=cmd_split)

    p = sub.add_parser("generate", help="generate standalone programs")
    p.add_argument("outdir")
    p.add_argument("--paradigm", choices=("mpi", "omp", "hybrid"),
                   default=None)
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("analyze", help="analyze a persisted trace")
    p.add_argument("trace")
    p.add_argument("--threshold", type=float, default=0.005)
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("matrix", help="run the validation matrix")
    p.add_argument("--size", type=int, default=8)
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_matrix)

    p = sub.add_parser("suites", help="print the external-suite catalog")
    p.set_defaults(fn=cmd_suites)

    p = sub.add_parser(
        "certify",
        help="run the full suite against the bundled analyzer",
    )
    p.add_argument("--size", type=int, default=8)
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_certify)

    p = sub.add_parser(
        "sweep", help="severity/size parameter sweep (CSV output)"
    )
    p.add_argument("property")
    p.add_argument("--factors", default="0.5,1,2",
                   help="comma-separated severity scale factors")
    p.add_argument("--sizes", default="8",
                   help="comma-separated world sizes")
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_sweep)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
