"""F3.4 -- Figure 3.4: two property sets concurrently in two
communicators.

"After initialization, the lower and the upper half of the
participating MPI processes form different communicators.  Then, the
group of processors in each communicator each call a different set of
performance property functions.  This means that two different
performance properties are active at the same time in parallel."

Shape claims: both halves' properties are detected, each localized to
its own half, and the two property phases overlap in time.
"""

from repro.analysis import analyze_run
from repro.core import run_split_program
from repro.trace import Enter

LOWER = ["imbalance_at_mpi_barrier", "late_sender"]
UPPER = ["late_broadcast", "early_reduce"]


def run_program():
    result = run_split_program(lower=LOWER, upper=UPPER, size=16)
    return result, analyze_run(result)


def test_fig3_4_concurrent_properties(benchmark, run_bench):
    result, analysis = run_bench(benchmark, run_program)
    print("\nF3.4 timeline (two communicator halves, two property sets):")
    print(result.timeline(width=110))
    detected = set(analysis.detected(0.005))
    assert {"wait_at_barrier", "late_sender",
            "late_broadcast", "early_reduce"} <= detected
    lower_ranks = set(range(8))
    upper_ranks = set(range(8, 16))
    table = []
    for prop, half in [
        ("wait_at_barrier", lower_ranks),
        ("late_sender", lower_ranks),
        ("late_broadcast", upper_ranks),
        ("early_reduce", upper_ranks),
    ]:
        ranks = {loc.rank for loc in analysis.locations_of(prop)}
        table.append((prop, sorted(ranks), ranks <= half))
    print("property -> waiting ranks:")
    for prop, ranks, ok in table:
        print(f"  {prop:<18} {ranks}  {'ok' if ok else 'LEAKED'}")
    assert all(ok for _, _, ok in table)


def test_fig3_4_properties_overlap_in_time(benchmark):
    """The two halves run their pathologies simultaneously."""
    result, _ = benchmark.pedantic(run_program, rounds=1, iterations=1)
    spans = {}
    for e in result.events:
        if isinstance(e, Enter) and e.region in (
            "imbalance_at_mpi_barrier", "late_broadcast"
        ):
            lo, hi = spans.get(e.region, (float("inf"), 0.0))
            spans[e.region] = (min(lo, e.time), max(hi, e.time))
    lower_span = spans["imbalance_at_mpi_barrier"]
    upper_span = spans["late_broadcast"]
    print(f"\n  lower-half phase spans {lower_span},"
          f" upper-half {upper_span}")
    assert lower_span[0] < upper_span[1]
    assert upper_span[0] < lower_span[1]


def test_fig3_4_communicator_registry_shows_the_split(benchmark):
    result, analysis = benchmark.pedantic(
        run_program, rounds=1, iterations=1
    )
    groups = set(analysis.comm_registry.values())
    assert tuple(range(16)) in groups
    assert tuple(range(8)) in groups
    assert tuple(range(8, 16)) in groups
