"""The durable service journal: record, replay, sanitize, heal."""

import pytest

from repro.service.journal import (
    SERVICE_JOURNAL_FORMAT,
    ServiceJournal,
    ServiceJournalError,
    sanitize_params,
)
from repro.service.jobs import Job


def _job(kind="history", params=None, **kw):
    return Job(kind, dict(params or {}), **kw)


class TestSanitize:
    def test_strips_private_keys(self):
        params = {"property": "p", "_spec": object(), "_progress": 1}
        assert sanitize_params(params) == {"property": "p"}

    def test_none_is_empty(self):
        assert sanitize_params(None) == {}


class TestRoundTrip:
    def test_spec_and_transitions_replay_last_wins(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = ServiceJournal(path)
        job = _job("run", {"property": "p", "seed": 3, "_spec": "X"})
        journal.record_state(job)
        job.mark_running()
        journal.record_state(job)
        job.resolve({"answer": 42}, None)
        journal.record_state(job)
        journal.close()

        records = ServiceJournal(path).load()
        assert list(records) == [job.id]
        payload = records[job.id]
        assert payload["state"] == "done"
        assert payload["result"] == {"answer": 42}
        assert payload["params"] == {"property": "p", "seed": 3}

    def test_failed_jobs_keep_error_not_result(self, tmp_path):
        journal = ServiceJournal(tmp_path / "jobs.jsonl")
        job = _job()
        job.resolve(None, "boom")
        journal.record_state(job)
        journal.close()
        payload = ServiceJournal(tmp_path / "jobs.jsonl").load()[job.id]
        assert payload["error"] == "boom"
        assert "result" not in payload

    def test_acceptance_order_preserved(self, tmp_path):
        journal = ServiceJournal(tmp_path / "jobs.jsonl")
        jobs = [_job() for _ in range(3)]
        for job in jobs:
            journal.record_state(job)
        # later transition for the first job must not reorder it
        jobs[0].resolve(None, None)
        journal.record_state(jobs[0])
        journal.close()
        records = ServiceJournal(tmp_path / "jobs.jsonl").load()
        assert list(records) == [j.id for j in jobs]

    def test_fsync_defaults_on(self, tmp_path):
        journal = ServiceJournal(tmp_path / "jobs.jsonl")
        assert journal._journal.fsync is True


class TestHealing:
    def test_partial_tail_heals(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = ServiceJournal(path)
        job = _job()
        journal.record_state(job)
        journal.close()
        with open(path, "ab") as fh:
            fh.write(b'{"k": "job-9999", "payl')
        records = ServiceJournal(path).load()
        assert list(records) == [job.id]

    def test_mid_file_corruption_raises_service_error(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = ServiceJournal(path)
        journal.record_state(_job())
        journal.close()
        lines = path.read_text().splitlines()
        lines.insert(1, "{corrupt")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ServiceJournalError):
            ServiceJournal(path).load()

    def test_format_name_is_distinct(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        ServiceJournal(path).record_state(_job())
        assert SERVICE_JOURNAL_FORMAT in path.read_text()
