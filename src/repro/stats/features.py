"""Per-rank behavior vectors derived from the one-pass TraceIndex.

The similarity detectors (Liu et al.'s SPMD-debugging approach: cluster
process behavior instead of matching event patterns) need every rank's
execution summarized as a fixed-length numeric vector.  This module
builds that vector from views the :class:`~repro.analysis.TraceIndex`
already precomputes -- no second pass over the trace:

* the wall-time split into **communication / computation / wait**
  exclusive seconds per call path
  (:meth:`TraceIndex.per_rank_region_seconds`),
* point-to-point **message counts and bytes** (``by_kind``),
* **collective excess** -- how much longer than the fastest
  participant each rank spent inside every collective instance
  (``collectives``), the barrier-wait share.

Vectors are normalized to [0, 1] -- time buckets as fractions of the
row's busy time, counts and bytes as fractions of the per-trace maximum
-- and **deterministic**: rows are ordered by rank/location, per-path
features by sorted call path, and every float accumulation follows the
index's fixed exit-order visit list, so the same trace always produces
byte-identical vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.index import TraceIndex, classify_region
from ..trace.events import CallPath, Event, Location

#: bumped whenever the feature schema or its derivation changes; part
#: of the archive's feature-cell cache key (see :mod:`.dataset`)
FEATURE_VERSION = "1"

#: base (path-independent) feature names, in vector order
BASE_FEATURES: Tuple[str, ...] = (
    "comm_frac",
    "comp_frac",
    "wait_frac",
    "busy_frac",
    "sends_frac",
    "recvs_frac",
    "bytes_sent_frac",
    "bytes_recv_frac",
    "colls_frac",
    "coll_excess_frac",
)

#: call paths whose exclusive time is below this fraction of the whole
#: trace's busy time contribute no per-path features (noise control)
DEFAULT_PATH_FLOOR = 0.02


def _frac(value: float, denom: float) -> float:
    return value / denom if denom > 0.0 else 0.0


@dataclass(frozen=True)
class FeatureMatrix:
    """Aligned, normalized behavior vectors for one trace.

    ``rows[i]`` is the vector of ``keys[i]`` (a rank, or a
    ``rank.thread`` location for single-rank traces), aligned to
    ``names``.  Raw per-row seconds (``comm``/``comp``/``wait``) and
    per-path overhead seconds survive alongside the normalized vectors
    so detectors can convert a statistical deviation back into wall
    seconds -- the unit a :class:`~repro.analysis.Finding` carries.
    """

    kind: str  # "rank" | "location"
    names: Tuple[str, ...]
    keys: Tuple[str, ...]
    locs: Tuple[Location, ...]
    rows: Tuple[Tuple[float, ...], ...]
    comm: Tuple[float, ...]
    comp: Tuple[float, ...]
    wait: Tuple[float, ...]
    paths: Tuple[CallPath, ...]
    #: rows x paths: raw comm+wait seconds spent under each path
    path_overhead: Tuple[Tuple[float, ...], ...]
    total_time: float

    def __len__(self) -> int:
        return len(self.rows)

    def busy(self, i: int) -> float:
        return self.comm[i] + self.comp[i] + self.wait[i]

    def overhead(self, i: int) -> float:
        """Raw non-computation seconds of row ``i`` (comm + wait)."""
        return self.comm[i] + self.wait[i]

    def dominant_path(self, i: int) -> CallPath:
        """The call path charging row ``i`` with the most overhead."""
        best: CallPath = ()
        best_value = 0.0
        for j, path in enumerate(self.paths):
            value = self.path_overhead[i][j]
            if value > best_value:
                best_value = value
                best = path
        return best

    def feature(self, i: int, name: str) -> float:
        return self.rows[i][self.names.index(name)]

    # ------------------------------------------------------------------
    # (de)serialization -- the archive's feature-cell blob format
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": FEATURE_VERSION,
            "kind": self.kind,
            "names": list(self.names),
            "keys": list(self.keys),
            "locs": [str(loc) for loc in self.locs],
            "rows": [list(row) for row in self.rows],
            "comm": list(self.comm),
            "comp": list(self.comp),
            "wait": list(self.wait),
            "paths": [list(path) for path in self.paths],
            "path_overhead": [list(row) for row in self.path_overhead],
            "total_time": self.total_time,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FeatureMatrix":
        return cls(
            kind=d["kind"],
            names=tuple(d["names"]),
            keys=tuple(d["keys"]),
            locs=tuple(Location.parse(text) for text in d["locs"]),
            rows=tuple(tuple(row) for row in d["rows"]),
            comm=tuple(d["comm"]),
            comp=tuple(d["comp"]),
            wait=tuple(d["wait"]),
            paths=tuple(tuple(p) for p in d["paths"]),
            path_overhead=tuple(
                tuple(row) for row in d["path_overhead"]
            ),
            total_time=d["total_time"],
        )


def _coll_excess_by_group(index: TraceIndex, by_rank: bool) -> Dict:
    """Group key -> seconds spent in collectives beyond the fastest
    participant of each instance (the barrier-wait share)."""
    excess: Dict = {}
    for key in sorted(index.collectives):
        parts = index.collectives[key]
        fastest = min(e.time - e.enter_time for e in parts)
        for event in parts:
            group = event.loc.rank if by_rank else event.loc
            excess[group] = excess.get(group, 0.0) + (
                (event.time - event.enter_time) - fastest
            )
    return excess


def behavior_matrix(
    events: Union[Sequence[Event], TraceIndex],
    total_time: Optional[float] = None,
    group: str = "auto",
    path_floor: float = DEFAULT_PATH_FLOOR,
) -> FeatureMatrix:
    """Build the normalized per-rank behavior vectors of one trace.

    ``group`` selects the row granularity: ``"rank"`` (threads of a
    rank aggregate into one row), ``"location"`` (one row per
    ``(rank, thread)``), or ``"auto"`` -- rank rows when the trace has
    more than one rank, location rows otherwise (so single-rank OpenMP
    traces still cluster over threads).
    """
    index = (
        events
        if isinstance(events, TraceIndex)
        else TraceIndex(list(events))
    )
    if total_time is None:
        total_time = max((e.time for e in index.events), default=0.0)

    ranks = sorted({loc.rank for loc in index.locations})
    if group == "auto":
        group = "rank" if len(ranks) > 1 else "location"
    if group not in ("rank", "location"):
        raise ValueError(f"unknown feature grouping {group!r}")
    by_rank = group == "rank"

    if by_rank:
        groups: List = ranks
        locs = tuple(Location(rank, 0) for rank in ranks)
        keys = tuple(str(rank) for rank in ranks)
        seconds = index.per_rank_region_seconds()
    else:
        groups = list(index.locations)
        locs = tuple(groups)
        keys = tuple(str(loc) for loc in groups)
        seconds = index.per_location_region_seconds()

    # -- time buckets, total and per call path --------------------------
    comm = []
    comp = []
    wait = []
    path_totals: Dict[CallPath, float] = {}
    for g in groups:
        per_path = seconds.get(g, {})
        c = x = w = 0.0
        for path in sorted(per_path):
            buckets = per_path[path]
            c += buckets["comm"]
            x += buckets["comp"]
            w += buckets["wait"]
            path_totals[path] = path_totals.get(path, 0.0) + (
                buckets["comm"] + buckets["comp"] + buckets["wait"]
            )
        comm.append(c)
        comp.append(x)
        wait.append(w)
    trace_busy = sum(comm) + sum(comp) + sum(wait)
    paths = tuple(
        path
        for path in sorted(path_totals)
        if path_totals[path] >= path_floor * trace_busy
    )

    # -- message traffic ------------------------------------------------
    sends: Dict = {}
    recvs: Dict = {}
    bytes_sent: Dict = {}
    bytes_recv: Dict = {}
    colls: Dict = {}

    def _key(loc: Location):
        return loc.rank if by_rank else loc

    for event in index.by_kind.get("send", ()):
        if event.internal:
            continue
        k = _key(event.loc)
        sends[k] = sends.get(k, 0) + 1
        bytes_sent[k] = bytes_sent.get(k, 0) + event.nbytes
    for event in index.by_kind.get("recv", ()):
        if event.internal:
            continue
        k = _key(event.loc)
        recvs[k] = recvs.get(k, 0) + 1
        bytes_recv[k] = bytes_recv.get(k, 0) + event.nbytes
    for event in index.by_kind.get("coll", ()):
        k = _key(event.loc)
        colls[k] = colls.get(k, 0) + 1
    coll_excess = _coll_excess_by_group(index, by_rank)

    # -- assemble normalized rows --------------------------------------
    busy = [comm[i] + comp[i] + wait[i] for i in range(len(groups))]
    max_busy = max(busy, default=0.0)
    max_sends = max((sends.get(g, 0) for g in groups), default=0)
    max_recvs = max((recvs.get(g, 0) for g in groups), default=0)
    max_bsent = max((bytes_sent.get(g, 0) for g in groups), default=0)
    max_brecv = max((bytes_recv.get(g, 0) for g in groups), default=0)
    max_colls = max((colls.get(g, 0) for g in groups), default=0)

    names = BASE_FEATURES + tuple(
        f"path:{'/'.join(path)}:{bucket}"
        for path in paths
        for bucket in ("comm", "comp", "wait")
    )

    rows = []
    path_overhead = []
    for i, g in enumerate(groups):
        b = busy[i]
        row = [
            _frac(comm[i], b),
            _frac(comp[i], b),
            _frac(wait[i], b),
            _frac(b, max_busy),
            _frac(sends.get(g, 0), max_sends),
            _frac(recvs.get(g, 0), max_recvs),
            _frac(bytes_sent.get(g, 0), max_bsent),
            _frac(bytes_recv.get(g, 0), max_brecv),
            _frac(colls.get(g, 0), max_colls),
            _frac(coll_excess.get(g, 0.0), b),
        ]
        per_path = seconds.get(g, {})
        overhead_row = []
        for path in paths:
            buckets = per_path.get(
                path, {"comm": 0.0, "comp": 0.0, "wait": 0.0}
            )
            row.append(_frac(buckets["comm"], b))
            row.append(_frac(buckets["comp"], b))
            row.append(_frac(buckets["wait"], b))
            overhead_row.append(buckets["comm"] + buckets["wait"])
        rows.append(tuple(row))
        path_overhead.append(tuple(overhead_row))

    return FeatureMatrix(
        kind=group,
        names=names,
        keys=keys,
        locs=locs,
        rows=tuple(rows),
        comm=tuple(comm),
        comp=tuple(comp),
        wait=tuple(wait),
        paths=paths,
        path_overhead=tuple(path_overhead),
        total_time=total_time,
    )
