"""Unit tests for kernel synchronization primitives."""

import pytest

from repro.simkernel import (
    Mailbox,
    SimBarrier,
    SimCondition,
    SimError,
    SimEvent,
    SimMutex,
    SimSemaphore,
    SimulationCrashed,
    Simulator,
    hold,
    now,
)


def test_event_wait_blocks_until_set():
    sim = Simulator()
    evt = SimEvent()
    log = []

    def waiter(tag):
        value = evt.wait()
        log.append((tag, value, now()))

    def setter():
        hold(2.0)
        evt.set("payload")

    sim.spawn(waiter, "w1")
    sim.spawn(waiter, "w2")
    sim.spawn(setter)
    sim.run()
    assert log == [("w1", "payload", 2.0), ("w2", "payload", 2.0)]


def test_event_already_set_does_not_block():
    sim = Simulator()
    evt = SimEvent()
    evt.set(99)
    log = []

    def waiter():
        log.append((evt.wait(), now()))

    sim.spawn(waiter)
    sim.run()
    assert log == [(99, 0.0)]


def test_event_clear_makes_wait_block_again():
    sim = Simulator()
    evt = SimEvent()
    log = []

    def waiter():
        evt.wait()
        log.append(now())

    def driver():
        evt.set()
        evt.clear()
        hold(1.0)
        sim.spawn(waiter)
        hold(1.0)
        evt.set()

    sim.spawn(driver)
    sim.run()
    assert log == [2.0]


def test_semaphore_serializes_by_count():
    sim = Simulator()
    sem = SimSemaphore(2)
    active = []
    peaks = []

    def worker(i):
        sem.acquire()
        active.append(i)
        peaks.append(len(active))
        hold(1.0)
        active.remove(i)
        sem.release()

    for i in range(5):
        sim.spawn(worker, i)
    sim.run()
    assert max(peaks) == 2


def test_semaphore_fifo_wakeup():
    sim = Simulator()
    sem = SimSemaphore(0)
    order = []

    def waiter(tag):
        sem.acquire()
        order.append(tag)

    def releaser():
        hold(1.0)
        sem.release(3)

    for tag in ("a", "b", "c"):
        sim.spawn(waiter, tag)
    sim.spawn(releaser)
    sim.run()
    assert order == ["a", "b", "c"]


def test_mutex_mutual_exclusion_and_fifo():
    sim = Simulator()
    mtx = SimMutex()
    order = []

    def worker(tag):
        with mtx:
            order.append((tag, now()))
            hold(1.0)

    for tag in ("a", "b", "c"):
        sim.spawn(worker, tag)
    sim.run()
    assert order == [("a", 0.0), ("b", 1.0), ("c", 2.0)]


def test_mutex_release_by_non_owner_is_error():
    sim = Simulator()
    mtx = SimMutex()

    def owner():
        mtx.acquire()
        hold(10.0)
        mtx.release()

    def thief():
        hold(1.0)
        mtx.release()

    sim.spawn(owner)
    sim.spawn(thief)
    with pytest.raises(SimulationCrashed) as info:
        sim.run()
    assert isinstance(info.value.original, SimError)


def test_mutex_not_reentrant():
    sim = Simulator()
    mtx = SimMutex()

    def body():
        mtx.acquire()
        mtx.acquire()

    sim.spawn(body)
    with pytest.raises(SimulationCrashed):
        sim.run()


def test_condition_wait_notify():
    sim = Simulator()
    mtx = SimMutex()
    cond = SimCondition(mtx)
    state = {"ready": False}
    log = []

    def consumer():
        with mtx:
            while not state["ready"]:
                cond.wait()
            log.append(("consumed", now()))

    def producer():
        hold(3.0)
        with mtx:
            state["ready"] = True
            cond.notify()

    sim.spawn(consumer)
    sim.spawn(producer)
    sim.run()
    assert log == [("consumed", 3.0)]


def test_condition_wait_requires_mutex():
    sim = Simulator()
    mtx = SimMutex()
    cond = SimCondition(mtx)

    def body():
        cond.wait()

    sim.spawn(body)
    with pytest.raises(SimulationCrashed):
        sim.run()


def test_barrier_releases_all_at_last_arrival():
    sim = Simulator()
    bar = SimBarrier(3)
    log = []

    def worker(dt):
        hold(dt)
        bar.wait()
        log.append((dt, now()))

    for dt in (1.0, 5.0, 3.0):
        sim.spawn(worker, dt)
    sim.run()
    assert sorted(log) == [(1.0, 5.0), (3.0, 5.0), (5.0, 5.0)]


def test_barrier_is_reusable():
    sim = Simulator()
    bar = SimBarrier(2)
    log = []

    def worker(tag, dts):
        for dt in dts:
            hold(dt)
            bar.wait()
            log.append((tag, now()))

    sim.spawn(worker, "a", [1.0, 1.0])
    sim.spawn(worker, "b", [2.0, 2.0])
    sim.run()
    assert log == [("a", 2.0), ("b", 2.0), ("b", 4.0), ("a", 4.0)] or sorted(
        log
    ) == [("a", 2.0), ("a", 4.0), ("b", 2.0), ("b", 4.0)]


def test_barrier_single_party_never_blocks():
    sim = Simulator()
    bar = SimBarrier(1)

    def body():
        for _ in range(3):
            bar.wait()

    sim.spawn(body)
    sim.run()  # must not deadlock


def test_barrier_rejects_zero_parties():
    with pytest.raises(ValueError):
        SimBarrier(0)


def test_mailbox_fifo_and_blocking_get():
    sim = Simulator()
    box = Mailbox()
    got = []

    def consumer():
        for _ in range(3):
            got.append((box.get(), now()))

    def producer():
        hold(1.0)
        box.put("x")
        box.put("y")
        hold(1.0)
        box.put("z")

    sim.spawn(consumer)
    sim.spawn(producer)
    sim.run()
    assert got == [("x", 1.0), ("y", 1.0), ("z", 2.0)]
