"""Experiment management: parameter sweeps over property programs.

Paper section 3.2: "More extensive experiments based on these synthetic
test programs can then be executed through scripting languages or
through automatic experiment management systems, such as ZENTURIO."
This module is that layer: declarative sweeps over severity factors,
world sizes or arbitrary parameter grids, producing structured records
and CSV-able tables.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..analysis import analyze_run
from ..core.registry import PropertySpec, get_property


@dataclass(frozen=True)
class SweepPoint:
    """One experiment: configuration plus measured outcomes."""

    property_name: str
    config: Dict[str, Any]
    final_time: float
    severities: Dict[str, float]
    detected: tuple

    def severity_of(self, prop: str) -> float:
        return self.severities.get(prop, 0.0)


@dataclass
class SweepResult:
    """All points of one sweep, with tabulation helpers."""

    points: List[SweepPoint] = field(default_factory=list)

    def series(self, axis: str, prop: str) -> list[tuple[Any, float]]:
        """(axis value, severity of prop) pairs in run order."""
        return [
            (p.config.get(axis), p.severity_of(prop))
            for p in self.points
        ]

    def to_rows(self) -> list[dict]:
        """Flat records (config columns + outcome columns)."""
        rows = []
        for p in self.points:
            row = {"property": p.property_name, **p.config}
            row["final_time"] = p.final_time
            for prop, sev in p.severities.items():
                row[f"sev:{prop}"] = sev
            rows.append(row)
        return rows

    def to_csv(self) -> str:
        """Render as CSV (union of all columns, stable order)."""
        rows = self.to_rows()
        if not rows:
            return ""
        columns: list[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        lines = [",".join(columns)]
        for row in rows:
            lines.append(
                ",".join(str(row.get(c, "")) for c in columns)
            )
        return "\n".join(lines) + "\n"


def run_sweep(
    property_name: str,
    severity_factors: Optional[Sequence[float]] = None,
    sizes: Optional[Sequence[int]] = None,
    param_grid: Optional[Dict[str, Sequence[Any]]] = None,
    num_threads: int = 4,
    seed: int = 0,
) -> SweepResult:
    """Run a property program over a configuration grid.

    Exactly one of the axes may be combined freely:

    * ``severity_factors`` scales the spec's severity parameters,
    * ``sizes`` varies the world size,
    * ``param_grid`` takes a cartesian product over explicit parameter
      values.

    All combinations of whatever is provided are executed.
    """
    spec = get_property(property_name)
    factors = list(severity_factors or [1.0])
    size_list = list(sizes or [8])
    grid_keys = sorted(param_grid) if param_grid else []
    grid_values = (
        itertools.product(*(param_grid[k] for k in grid_keys))
        if param_grid
        else [()]
    )
    result = SweepResult()
    for combo in grid_values:
        for factor in factors:
            for size in size_list:
                params = spec.scaled_params(factor)
                params.update(dict(zip(grid_keys, combo)))
                run = spec.run(
                    size=size,
                    num_threads=num_threads,
                    params=params,
                    seed=seed,
                )
                analysis = analyze_run(run)
                config: Dict[str, Any] = {
                    "factor": factor,
                    "size": size,
                }
                config.update(dict(zip(grid_keys, combo)))
                result.points.append(
                    SweepPoint(
                        property_name=property_name,
                        config=config,
                        final_time=run.final_time,
                        severities=analysis.severities_by_property(),
                        detected=analysis.detected(),
                    )
                )
    return result
