"""Status rendering: the ``ats watch`` terminal view and the HTML page.

Both views render the same ``/status`` JSON snapshot
(:meth:`AnalysisService.status`): queue depth and in-flight jobs,
cumulative job counters, per-endpoint latency quantiles (when obs
metrics are enabled), the archive cache hit ratio, and a live block
per campaign fed by :class:`repro.resilience.Supervisor` progress
events.  The HTML page self-refreshes with a plain ``<meta>`` refresh
-- no JavaScript, so it renders anywhere -- and the terminal view is
redrawn by ``ats watch`` on its poll interval.
"""

from __future__ import annotations

import html as _html
from typing import Optional

__all__ = ["render_watch", "render_html"]


def _fmt_ms(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    return f"{seconds * 1e3:.2f}ms"


def _fmt_ratio(ratio: Optional[float]) -> str:
    return "-" if ratio is None else f"{ratio:.0%}"


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "eta -"
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"eta {seconds:.0f}s"
    if seconds < 3600:
        return f"eta {seconds / 60:.1f}m"
    return f"eta {seconds / 3600:.1f}h"


def _campaign_bar(snap: dict, width: int = 30) -> str:
    total = snap.get("total") or 0
    resolved = snap.get("done", 0) + snap.get("failed", 0)
    if total <= 0:
        return "[" + "?" * width + "]"
    filled = int(width * min(1.0, resolved / total))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def render_watch(status: dict) -> str:
    """One frame of the terminal dashboard (``ats serve --watch``)."""
    counts = status.get("counts", {})
    lines = [
        "ats analysis service"
        + ("" if status.get("accepting", True) else "  [DRAINING]"),
        f"  uptime {status.get('uptime', 0.0):8.1f}s"
        f"   queue {status.get('queue_depth', 0):>4}"
        f"   inflight {status.get('inflight', 0)}/"
        f"{status.get('max_workers', 0)}",
        f"  jobs: {counts.get('submitted', 0)} submitted, "
        f"{counts.get('executed', 0)} executed, "
        f"{counts.get('coalesced', 0)} coalesced, "
        f"{counts.get('failed', 0)} failed, "
        f"{counts.get('rate_limited', 0)} rate-limited",
        f"  cache: {counts.get('cache_hits', 0)} hits / "
        f"{counts.get('cache_misses', 0)} misses "
        f"({_fmt_ratio(status.get('cache_hit_ratio'))})",
    ]
    if status.get("durable"):
        lines.append(
            f"  durable: journal at {status.get('state_dir', '?')}"
            f"  ({counts.get('recovered', 0)} recovered, "
            f"{counts.get('requeued', 0)} requeued, "
            f"{counts.get('orphaned', 0)} orphaned, "
            f"{counts.get('expired', 0)} expired)"
        )
    breakers = status.get("breakers") or []
    for cell in breakers:
        lines.append(
            f"  breaker {cell.get('state', '?'):<9} "
            f"{cell.get('cell', '?')}  "
            f"({cell.get('failures', 0)} failures, "
            f"retry in {cell.get('retry_after', 0.0):.0f}s)"
        )
    latency = status.get("latency")
    if latency:
        lines.append("  latency (p50 / p99):")
        for endpoint in sorted(latency):
            sample = latency[endpoint]
            lines.append(
                f"    {endpoint:<12} {_fmt_ms(sample.get('p50')):>10} "
                f"/ {_fmt_ms(sample.get('p99')):>10}  "
                f"({sample.get('count', 0)} reqs)"
            )
    campaigns = status.get("campaigns") or []
    for snap in campaigns:
        resolved = snap.get("done", 0) + snap.get("failed", 0)
        lines.append(
            f"  campaign {snap.get('job_id', '?')}: "
            f"{_campaign_bar(snap)} {resolved}/{snap.get('total', 0)}"
            f"  (retried {snap.get('retried', 0)}, "
            f"failed {snap.get('failed', 0)}, "
            f"{_fmt_eta(snap.get('eta_seconds'))})"
        )
        for event in list(snap.get("recent", []))[-3:]:
            lines.append(
                f"      {event.get('event', '?'):<16} "
                f"{event.get('key', '')}"
            )
    if not campaigns:
        lines.append("  no campaigns")
    return "\n".join(lines) + "\n"


_PAGE = """<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="2">
<title>ats analysis service</title>
<style>
body {{ font-family: monospace; margin: 2em; background: #111;
       color: #dcdcdc; }}
h1 {{ font-size: 1.2em; }}
table {{ border-collapse: collapse; margin: 0.8em 0; }}
td, th {{ border: 1px solid #444; padding: 0.25em 0.8em;
          text-align: right; }}
th {{ background: #222; }}
.bar {{ background: #333; width: 240px; height: 0.9em;
        display: inline-block; }}
.bar > div {{ background: #4c8; height: 100%; }}
.drain {{ color: #e66; }}
</style>
</head>
<body>
<h1>ats analysis service{drain}</h1>
<p>uptime {uptime:.1f}s &mdash; queue {queue} &mdash;
inflight {inflight}/{workers} &mdash;
cache hit ratio {cache}</p>
<table>
<tr><th>submitted</th><th>executed</th><th>coalesced</th>
<th>failed</th><th>rate-limited</th></tr>
<tr><td>{submitted}</td><td>{executed}</td><td>{coalesced}</td>
<td>{failed}</td><td>{rate_limited}</td></tr>
</table>
{durable}
{breakers}
{latency}
{campaigns}
<p>endpoints: <a href="/status">/status</a> &middot;
<a href="/metrics">/metrics</a> &middot;
<a href="/metrics.json">/metrics.json</a></p>
</body>
</html>
"""


def _latency_table(latency: Optional[dict]) -> str:
    if not latency:
        return "<p>per-endpoint latency: obs metrics disabled</p>"
    rows = [
        "<table><tr><th>endpoint</th><th>p50</th><th>p99</th>"
        "<th>requests</th></tr>"
    ]
    for endpoint in sorted(latency):
        sample = latency[endpoint]
        rows.append(
            "<tr><td>{0}</td><td>{1}</td><td>{2}</td><td>{3}</td></tr>"
            .format(
                _html.escape(endpoint),
                _fmt_ms(sample.get("p50")),
                _fmt_ms(sample.get("p99")),
                sample.get("count", 0),
            )
        )
    rows.append("</table>")
    return "".join(rows)


def _campaign_blocks(campaigns) -> str:
    if not campaigns:
        return "<p>no campaigns</p>"
    blocks = []
    for snap in campaigns:
        total = snap.get("total") or 0
        resolved = snap.get("done", 0) + snap.get("failed", 0)
        pct = int(100 * min(1.0, resolved / total)) if total else 0
        blocks.append(
            "<p>campaign {0}: <span class=\"bar\">"
            "<div style=\"width:{1}%\"></div></span> "
            "{2}/{3} (retried {4}, failed {5}, {6})</p>".format(
                _html.escape(str(snap.get("job_id", "?"))),
                pct,
                resolved,
                total,
                snap.get("retried", 0),
                snap.get("failed", 0),
                _html.escape(_fmt_eta(snap.get("eta_seconds"))),
            )
        )
    return "".join(blocks)


def _durable_block(status: dict) -> str:
    if not status.get("durable"):
        return ""
    counts = status.get("counts", {})
    return (
        "<p>durable: journal at {0} ({1} recovered, {2} requeued, "
        "{3} orphaned, {4} expired)</p>".format(
            _html.escape(str(status.get("state_dir", "?"))),
            counts.get("recovered", 0),
            counts.get("requeued", 0),
            counts.get("orphaned", 0),
            counts.get("expired", 0),
        )
    )


def _breaker_table(breakers) -> str:
    if not breakers:
        return ""
    rows = [
        "<table><tr><th>evicted cell</th><th>state</th>"
        "<th>failures</th><th>retry in</th></tr>"
    ]
    for cell in breakers:
        rows.append(
            "<tr><td>{0}</td><td>{1}</td><td>{2}</td>"
            "<td>{3:.0f}s</td></tr>".format(
                _html.escape(str(cell.get("cell", "?"))),
                _html.escape(str(cell.get("state", "?"))),
                cell.get("failures", 0),
                cell.get("retry_after", 0.0),
            )
        )
    rows.append("</table>")
    return "".join(rows)


def render_html(status: dict) -> str:
    """The self-refreshing ``/dashboard`` page for one snapshot."""
    counts = status.get("counts", {})
    return _PAGE.format(
        drain=(
            "" if status.get("accepting", True)
            else " <span class=\"drain\">[draining]</span>"
        ),
        uptime=status.get("uptime", 0.0),
        queue=status.get("queue_depth", 0),
        inflight=status.get("inflight", 0),
        workers=status.get("max_workers", 0),
        cache=_fmt_ratio(status.get("cache_hit_ratio")),
        submitted=counts.get("submitted", 0),
        executed=counts.get("executed", 0),
        coalesced=counts.get("coalesced", 0),
        failed=counts.get("failed", 0),
        rate_limited=counts.get("rate_limited", 0),
        durable=_durable_block(status),
        breakers=_breaker_table(status.get("breakers")),
        latency=_latency_table(status.get("latency")),
        campaigns=_campaign_blocks(status.get("campaigns")),
    )
