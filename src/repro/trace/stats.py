"""Trace statistics: per-region and per-location time profiles.

A lightweight "profile view" over a trace, used by the overhead
benchmarks and handy for quick inspection.  Exclusive time of a region
is its inclusive time minus the inclusive time of its direct children.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Sequence

from .events import Enter, Event, Exit, Location


@dataclass
class RegionProfile:
    """Aggregated timing of one region name at one location."""

    region: str
    loc: Location
    visits: int = 0
    inclusive: float = 0.0
    exclusive: float = 0.0


@dataclass
class TraceProfile:
    """Profile of a whole trace."""

    per_region: Dict[tuple[str, Location], RegionProfile] = field(
        default_factory=dict
    )
    total_time: float = 0.0
    locations: list[Location] = field(default_factory=list)

    def region_total(self, region: str) -> float:
        """Inclusive time of ``region`` summed over all locations."""
        return sum(
            p.inclusive
            for (name, _), p in self.per_region.items()
            if name == region
        )

    def exclusive_total(self, region: str) -> float:
        return sum(
            p.exclusive
            for (name, _), p in self.per_region.items()
            if name == region
        )

    def regions(self) -> list[str]:
        return sorted({name for name, _ in self.per_region})


def profile_trace(events: Sequence[Event]) -> TraceProfile:
    """Compute inclusive/exclusive region times from enter/exit events."""
    profile = TraceProfile()
    stacks: dict[Location, list[tuple[str, float, float]]] = defaultdict(list)
    # stack entries: (region, enter_time, child_inclusive_accumulated)
    max_time = 0.0
    for event in sorted(events, key=lambda e: e.time):
        max_time = max(max_time, event.time)
        if isinstance(event, Enter):
            stacks[event.loc].append((event.region, event.time, 0.0))
        elif isinstance(event, Exit):
            stack = stacks[event.loc]
            if not stack or stack[-1][0] != event.region:
                continue  # tolerate truncated traces
            region, start, child_incl = stack.pop()
            inclusive = event.time - start
            key = (region, event.loc)
            rp = profile.per_region.setdefault(
                key, RegionProfile(region, event.loc)
            )
            rp.visits += 1
            rp.inclusive += inclusive
            rp.exclusive += inclusive - child_incl
            if stack:
                parent_region, parent_start, parent_child = stack[-1]
                stack[-1] = (
                    parent_region,
                    parent_start,
                    parent_child + inclusive,
                )
    profile.total_time = max_time
    profile.locations = sorted({e.loc for e in events})
    return profile


def format_profile(profile: TraceProfile, top: int = 20) -> str:
    """Human-readable profile table (aggregated over locations)."""
    agg: dict[str, list[float]] = defaultdict(lambda: [0, 0.0, 0.0])
    for (region, _), rp in profile.per_region.items():
        agg[region][0] += rp.visits
        agg[region][1] += rp.inclusive
        agg[region][2] += rp.exclusive
    rows = sorted(agg.items(), key=lambda kv: -kv[1][2])[:top]
    lines = [f"{'region':<28}{'visits':>8}{'incl(s)':>12}{'excl(s)':>12}"]
    for region, (visits, incl, excl) in rows:
        lines.append(f"{region:<28}{visits:>8}{incl:>12.6f}{excl:>12.6f}")
    return "\n".join(lines) + "\n"
