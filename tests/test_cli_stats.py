"""CLI tests for ``ats stats``, ``ats export dataset``, ``--families``."""

import json

import pytest

from repro.cli import main


def test_stats_on_property_run(capsys):
    assert main(
        ["stats", "late_sender", "--size", "8", "--seed", "0"]
    ) == 0
    out = capsys.readouterr().out
    assert "behavior matrix" in out
    assert "silhouette" in out
    assert "overhead excess" in out


def test_stats_json_artifact(tmp_path, capsys):
    dest = tmp_path / "stats.json"
    assert main(
        [
            "stats", "late_sender", "--size", "8",
            "--json", str(dest),
        ]
    ) == 0
    payload = json.loads(dest.read_text())
    assert payload["format"] == "ats-stats"
    assert payload["matrix"]["rows"]
    assert payload["outliers"]


def test_stats_balanced_program_reports_no_outliers(capsys):
    assert main(["stats", "balanced_sendrecv", "--size", "8"]) == 0
    out = capsys.readouterr().out
    assert "overhead excess" not in out


def test_stats_unknown_property_fails(capsys):
    assert main(["stats", "not_a_property"]) != 0


def test_stats_on_trace_file(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    assert main(
        [
            "run", "late_sender", "--size", "6",
            "--trace-out", str(trace),
        ]
    ) == 0
    capsys.readouterr()
    assert main(["stats", "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "behavior matrix" in out


def test_export_dataset_roundtrip(tmp_path, capsys):
    arch = tmp_path / "arch"
    assert main(
        [
            "synth", "campaign", "cli-ds",
            "--scenarios", "5", "--sizes", "4", "--threads", "2",
            "--seed", "3", "--archive", str(arch),
        ]
    ) == 0
    capsys.readouterr()
    jsonl = tmp_path / "ds.jsonl"
    csv_path = tmp_path / "ds.csv"
    assert main(
        [
            "export", "dataset", "--archive", str(arch),
            "--jsonl", str(jsonl), "--csv", str(csv_path),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "sample(s)" in out
    from repro.stats import validate_row

    lines = jsonl.read_text().splitlines()
    assert lines
    for line in lines:
        validate_row(json.loads(line))
    assert len(csv_path.read_text().splitlines()) == len(lines) + 1


def test_export_dataset_requires_destination(tmp_path, capsys):
    assert main(
        ["export", "dataset", "--archive", str(tmp_path / "a")]
    ) != 0


def test_export_dataset_empty_archive_fails(tmp_path, capsys):
    assert main(
        [
            "export", "dataset",
            "--archive", str(tmp_path / "empty"),
            "--jsonl", str(tmp_path / "ds.jsonl"),
        ]
    ) != 0


def test_robustness_families_flag(tmp_path, capsys):
    out_json = tmp_path / "rob.json"
    assert main(
        [
            "robustness", "--program", "late_sender",
            "--magnitudes", "0,0.5", "--seeds", "1",
            "--size", "6", "--threads", "2",
            "--families", "rule,similarity",
            "--json", str(out_json),
        ]
    ) == 0
    capsys.readouterr()
    data = json.loads(out_json.read_text())
    assert data["families"] == ["rule", "similarity"]


def test_families_flag_rejects_unknown(capsys):
    assert main(
        [
            "robustness", "--program", "late_sender",
            "--families", "rule,bogus",
        ]
    ) != 0
