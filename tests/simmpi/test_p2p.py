"""Point-to-point semantics: protocols, matching, waiting times."""

import numpy as np
import pytest

from repro.simkernel import DeadlockError, SimulationCrashed
from repro.simmpi import (
    ANY_SOURCE,
    ANY_TAG,
    MPI_DOUBLE,
    MPI_INT,
    InvalidRankError,
    InvalidTagError,
    MpiError,
    TransportParams,
    TruncationError,
    alloc_mpi_buf,
    run_mpi,
)
from repro.work import do_work

FAST = dict(model_init_overhead=False)
T = TransportParams()


def test_blocking_send_recv_delivers_data():
    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 8)
        if comm.rank() == 0:
            buf.data[:] = np.arange(8)
            comm.send(buf, 1, tag=3)
        elif comm.rank() == 1:
            status = comm.recv(buf, 0, 3)
            assert list(buf.data) == list(range(8))
            assert status.source == 0
            assert status.tag == 3
            assert status.count == 8

    run_mpi(main, 2, **FAST)


def test_late_sender_makes_receiver_wait():
    waits = {}

    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 4)
        if comm.rank() == 0:
            do_work(0.1)  # sender is late
            comm.send(buf, 1)
        else:
            t0 = comm.world.sim.now
            comm.recv(buf, 0)
            waits[1] = comm.world.sim.now - t0

    run_mpi(main, 2, **FAST)
    # Receiver blocked ~0.1s (plus transfer costs).
    assert waits[1] == pytest.approx(0.1, rel=0.01)


def test_late_receiver_blocks_rendezvous_sender_only():
    elapsed = {}

    def main(comm):
        big = alloc_mpi_buf(MPI_DOUBLE, 4096)  # 32 KiB > eager threshold
        small = alloc_mpi_buf(MPI_DOUBLE, 8)
        me = comm.rank()
        if me == 0:
            t0 = comm.world.sim.now
            comm.send(big, 1)
            elapsed["rendezvous"] = comm.world.sim.now - t0
            t0 = comm.world.sim.now
            comm.send(small, 1)
            elapsed["eager"] = comm.world.sim.now - t0
        else:
            do_work(0.2)  # receiver is late
            comm.recv(big, 0)
            do_work(0.2)
            comm.recv(small, 0)

    run_mpi(main, 2, **FAST)
    # Rendezvous send blocked until the receiver arrived.
    assert elapsed["rendezvous"] == pytest.approx(0.2, rel=0.05)
    # Eager send completed locally, long before the receive.
    assert elapsed["eager"] < 0.001


def test_eager_threshold_boundary():
    params = TransportParams(eager_threshold=1024)
    elapsed = {}

    def main(comm):
        at_threshold = alloc_mpi_buf(MPI_INT, 256)    # exactly 1024 B
        over = alloc_mpi_buf(MPI_INT, 257)            # 1028 B
        me = comm.rank()
        if me == 0:
            t0 = comm.world.sim.now
            comm.send(at_threshold, 1)
            elapsed["at"] = comm.world.sim.now - t0
            t0 = comm.world.sim.now
            comm.send(over, 1)
            elapsed["over"] = comm.world.sim.now - t0
        else:
            do_work(0.05)
            comm.recv(at_threshold, 0)
            do_work(0.05)
            comm.recv(over, 0)

    run_mpi(main, 2, transport=params, **FAST)
    assert elapsed["at"] < 0.001      # eager: local completion
    assert elapsed["over"] > 0.04     # rendezvous: blocked on receiver


def test_wildcard_source_and_tag():
    def main(comm):
        me = comm.rank()
        buf = alloc_mpi_buf(MPI_INT, 1)
        if me == 0:
            seen = set()
            for _ in range(2):
                status = comm.recv(buf, ANY_SOURCE, ANY_TAG)
                seen.add((status.source, status.tag, int(buf.data[0])))
            assert seen == {(1, 11, 1), (2, 22, 2)}
        elif me in (1, 2):
            buf.data[0] = me
            do_work(0.001 * me)  # deterministic arrival order
            comm.send(buf, 0, tag=11 * me)

    run_mpi(main, 3, **FAST)


def test_messages_non_overtaking_same_envelope():
    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 1)
        if comm.rank() == 0:
            for v in (10, 20, 30):
                buf.data[0] = v
                comm.send(buf, 1, tag=5)
        else:
            got = []
            for _ in range(3):
                comm.recv(buf, 0, 5)
                got.append(int(buf.data[0]))
            assert got == [10, 20, 30]

    run_mpi(main, 2, **FAST)


def test_tag_selectivity_out_of_order_retrieval():
    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 1)
        if comm.rank() == 0:
            buf.data[0] = 1
            comm.send(buf, 1, tag=1)
            buf.data[0] = 2
            comm.send(buf, 1, tag=2)
        else:
            comm.recv(buf, 0, tag=2)
            assert buf.data[0] == 2
            comm.recv(buf, 0, tag=1)
            assert buf.data[0] == 1

    run_mpi(main, 2, **FAST)


def test_isend_irecv_wait():
    def main(comm):
        me = comm.rank()
        sb = alloc_mpi_buf(MPI_INT, 4)
        rb = alloc_mpi_buf(MPI_INT, 4)
        sb.fill(me + 1)
        peer = 1 - me
        rreq = comm.irecv(rb, peer, 9)
        sreq = comm.isend(sb, peer, 9)
        comm.wait(sreq)
        status = comm.wait(rreq)
        assert status.source == peer
        assert np.all(rb.data == peer + 1)

    run_mpi(main, 2, **FAST)


def test_request_test_polls_without_blocking():
    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 1)
        if comm.rank() == 0:
            do_work(0.05)
            comm.send(buf, 1)
        else:
            req = comm.irecv(buf, 0)
            assert req.test() is False
            do_work(0.1)
            assert req.test() is True

    run_mpi(main, 2, **FAST)


def test_waitall_completes_everything():
    def main(comm):
        me, sz = comm.rank(), comm.size()
        bufs = [alloc_mpi_buf(MPI_INT, 1) for _ in range(sz)]
        reqs = []
        for r in range(sz):
            if r == me:
                continue
            sb = alloc_mpi_buf(MPI_INT, 1)
            sb.data[0] = me
            reqs.append(comm.isend(sb, r, tag=me))
            reqs.append(comm.irecv(bufs[r], r, tag=r))
        comm.waitall(reqs)
        for r in range(sz):
            if r != me:
                assert bufs[r].data[0] == r

    run_mpi(main, 4, **FAST)


def test_sendrecv_exchanges_without_deadlock():
    def main(comm):
        me, sz = comm.rank(), comm.size()
        sb = alloc_mpi_buf(MPI_DOUBLE, 2048)  # rendezvous-sized
        rb = alloc_mpi_buf(MPI_DOUBLE, 2048)
        sb.fill(me)
        right, left = (me + 1) % sz, (me - 1) % sz
        comm.sendrecv(sb, right, 1, rb, left, 1)
        assert np.all(rb.data == left)

    run_mpi(main, 4, **FAST)


def test_transfer_time_scales_with_message_size():
    times = {}

    def main(comm, cnt):
        buf = alloc_mpi_buf(MPI_DOUBLE, cnt)
        if comm.rank() == 0:
            comm.send(buf, 1)
        else:
            t0 = comm.world.sim.now
            comm.recv(buf, 0)
            times[cnt] = comm.world.sim.now - t0

    for cnt in (10, 100000):
        run_mpi(main, 2, cnt, **FAST)
    expected_small = T.latency + 80 / T.bandwidth
    expected_big = T.latency + 800000 / T.bandwidth
    assert times[100000] > times[10]
    assert times[100000] - times[10] == pytest.approx(
        expected_big - expected_small, rel=0.2
    )


# ----------------------------------------------------------------------
# failure injection
# ----------------------------------------------------------------------

def test_unmatched_recv_deadlocks():
    def main(comm):
        if comm.rank() == 1:
            buf = alloc_mpi_buf(MPI_INT, 1)
            comm.recv(buf, 0)  # nobody sends

    with pytest.raises(DeadlockError):
        run_mpi(main, 2, **FAST)


def test_truncation_detected():
    def main(comm):
        if comm.rank() == 0:
            comm.send(alloc_mpi_buf(MPI_INT, 100), 1)
        else:
            comm.recv(alloc_mpi_buf(MPI_INT, 10), 0)

    with pytest.raises(SimulationCrashed) as info:
        run_mpi(main, 2, **FAST)
    assert isinstance(info.value.original, TruncationError)


def test_leaked_message_fails_strict_run():
    def main(comm):
        if comm.rank() == 0:
            comm.send(alloc_mpi_buf(MPI_INT, 1), 1)  # never received

    with pytest.raises(MpiError, match="unmatched"):
        run_mpi(main, 2, **FAST)


def test_leaked_message_tolerated_when_not_strict():
    def main(comm):
        if comm.rank() == 0:
            comm.send(alloc_mpi_buf(MPI_INT, 1), 1)

    result = run_mpi(main, 2, strict=False, **FAST)
    assert result.world.engine.unmatched()["sends"] == 1


def test_invalid_rank_rejected():
    def main(comm):
        comm.send(alloc_mpi_buf(MPI_INT, 1), 99)

    with pytest.raises(SimulationCrashed) as info:
        run_mpi(main, 2, **FAST)
    assert isinstance(info.value.original, InvalidRankError)


def test_negative_user_tag_rejected():
    def main(comm):
        if comm.rank() == 0:
            comm.send(alloc_mpi_buf(MPI_INT, 1), 1, tag=-5)

    with pytest.raises(SimulationCrashed) as info:
        run_mpi(main, 2, **FAST)
    assert isinstance(info.value.original, InvalidTagError)


def test_use_of_freed_buffer_rejected():
    from repro.simmpi import free_mpi_buf

    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 1)
        free_mpi_buf(buf)
        if comm.rank() == 0:
            comm.send(buf, 1)

    with pytest.raises(SimulationCrashed) as info:
        run_mpi(main, 2, **FAST)
    assert isinstance(info.value.original, MpiError)


def test_datatype_mismatch_detected():
    def main(comm):
        if comm.rank() == 0:
            comm.send(alloc_mpi_buf(MPI_INT, 4), 1)
        else:
            comm.recv(alloc_mpi_buf(MPI_DOUBLE, 4), 0)

    with pytest.raises(SimulationCrashed) as info:
        run_mpi(main, 2, **FAST)
    assert isinstance(info.value.original, MpiError)
