"""Composite performance property test programs (paper section 3.3).

Three canonical composition forms:

* **Sequential chains** -- call several property functions one after
  another in the same program (figure 3.3: "an MPI test program which
  simply calls all currently defined MPI property functions").
* **Communicator-split parallel composition** -- the lower and upper
  halves of the ranks form different communicators and run *different*
  property sets concurrently (figures 3.4/3.5).
* **Hybrid composition** -- MPI property functions interleaved with
  OpenMP property functions inside the ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from ..simmpi.communicator import Communicator
from ..simmpi.runtime import RunResult, run_mpi
from ..simmpi.transport import TransportParams
from .registry import PropertySpec, get_property


@dataclass(frozen=True)
class Step:
    """One property-function invocation inside a composite program."""

    property_name: str
    params: Dict[str, Any] = field(default_factory=dict)

    def spec(self) -> PropertySpec:
        return get_property(self.property_name)

    def execute(self, comm: Communicator, num_threads: int = 4) -> None:
        # Executed once per rank per step: resolve the spec and the
        # parameter template once and reuse (descriptors are frozen, so
        # sharing resolved df/dd across ranks is safe).
        cached = self.__dict__.get("_resolved")
        if cached is None:
            spec = self.spec()
            cached = (
                spec,
                spec.materialize(self.params),
                spec.accepts_num_threads(),
            )
            object.__setattr__(self, "_resolved", cached)
        spec, template, accepts_threads = cached
        kwargs = dict(template)
        if accepts_threads:
            kwargs.setdefault("num_threads", num_threads)
        if spec.paradigm == "omp":
            # OpenMP property inside an MPI rank: runs on every rank.
            spec.func(**kwargs)
            return
        spec.func(**kwargs, comm=comm)


def _as_steps(items: Sequence[Any]) -> Tuple[Step, ...]:
    steps = []
    for item in items:
        if isinstance(item, Step):
            steps.append(item)
        elif isinstance(item, str):
            steps.append(Step(item))
        else:
            raise TypeError(f"expected Step or property name, got {item!r}")
    return tuple(steps)


ALL_MPI_PROPERTY_CHAIN: Tuple[str, ...] = (
    "late_sender",
    "late_receiver",
    "imbalance_at_mpi_barrier",
    "imbalance_at_mpi_alltoall",
    "late_broadcast",
    "late_scatter",
    "late_scatterv",
    "early_reduce",
    "early_gather",
    "early_gatherv",
)


def run_chain(
    steps: Sequence[Any],
    size: int = 8,
    num_threads: int = 4,
    transport: Optional[TransportParams] = None,
    seed: int = 0,
    trace: bool = True,
    model_init_overhead: bool = True,
) -> RunResult:
    """Run a sequential chain of property functions (figure 3.3 shape)."""
    resolved = _as_steps(steps)

    def main(comm: Communicator) -> None:
        for step in resolved:
            step.execute(comm, num_threads=num_threads)

    return run_mpi(
        main,
        size,
        transport=transport,
        seed=seed,
        trace=trace,
        model_init_overhead=model_init_overhead,
    )


def run_all_mpi_properties(
    size: int = 8,
    transport: Optional[TransportParams] = None,
    seed: int = 0,
    model_init_overhead: bool = True,
) -> RunResult:
    """The figure 3.3 program: every MPI property function in sequence.

    "This program can be used to quickly determine how many different
    performance properties can be detected by a performance tool."
    """
    return run_chain(
        ALL_MPI_PROPERTY_CHAIN,
        size=size,
        transport=transport,
        seed=seed,
        model_init_overhead=model_init_overhead,
    )


def run_split_program(
    lower: Sequence[Any],
    upper: Sequence[Any],
    size: int = 16,
    num_threads: int = 4,
    transport: Optional[TransportParams] = None,
    seed: int = 0,
    model_init_overhead: bool = True,
) -> RunResult:
    """The figure 3.4 program: two communicator halves, two property sets.

    "After initialization, the lower and the upper half of the
    participating MPI processes form different communicators.  Then,
    the group of processors in each communicator each call a different
    set of performance property functions" -- two performance
    properties active at the same time in parallel.
    """
    if size < 4 or size % 2:
        raise ValueError("split program needs an even size >= 4")
    lower_steps = _as_steps(lower)
    upper_steps = _as_steps(upper)

    def main(comm: Communicator) -> None:
        me = comm.rank()
        half = comm.split(0 if me < comm.size() // 2 else 1)
        steps = lower_steps if me < comm.size() // 2 else upper_steps
        for step in steps:
            step.execute(half, num_threads=num_threads)

    return run_mpi(
        main,
        size,
        transport=transport,
        seed=seed,
        model_init_overhead=model_init_overhead,
    )


def run_hybrid_composite(
    mpi_steps: Sequence[Any],
    omp_steps: Sequence[Any],
    size: int = 4,
    num_threads: int = 4,
    transport: Optional[TransportParams] = None,
    seed: int = 0,
    model_init_overhead: bool = True,
    faults=None,
) -> RunResult:
    """Interleave MPI-level and OpenMP-level property functions.

    Each repetition alternates one MPI step with one OpenMP step, so
    properties from both paradigms appear in the same trace (the
    hybrid-tool test the paper's section 3.3 closes with).
    """
    mpi_resolved = _as_steps(mpi_steps)
    omp_resolved = _as_steps(omp_steps)

    def main(comm: Communicator) -> None:
        n = max(len(mpi_resolved), len(omp_resolved))
        for i in range(n):
            if i < len(mpi_resolved):
                mpi_resolved[i].execute(comm, num_threads=num_threads)
            if i < len(omp_resolved):
                omp_resolved[i].execute(comm, num_threads=num_threads)

    return run_mpi(
        main,
        size,
        transport=transport,
        seed=seed,
        model_init_overhead=model_init_overhead,
        faults=faults,
    )
